"""LoopLynx reproduction: a scalable dataflow architecture simulator for
efficient LLM inference.

This package reproduces, in Python, the system described in "LoopLynx: A
Scalable Dataflow Architecture for Efficient LLM Inference" (DATE 2025):

* :mod:`repro.core` — the hybrid spatial-temporal accelerator model (macro
  dataflow kernels, temporal scheduler, multi-node ring deployment,
  functional int8 datapath, FPGA resource model);
* :mod:`repro.dataflow` — the discrete-event dataflow simulation substrate;
* :mod:`repro.memory`, :mod:`repro.network` — HBM, shared-buffer, KV-cache
  and ring-interconnect substrates;
* :mod:`repro.model`, :mod:`repro.quant` — a from-scratch NumPy GPT-2 with
  SmoothQuant W8A8 quantization;
* :mod:`repro.baselines`, :mod:`repro.energy` — the DFX temporal baseline,
  the spatial-architecture baseline, the A100 model and the power models;
* :mod:`repro.workloads`, :mod:`repro.analysis`, :mod:`repro.experiments` —
  scenario generation, result analysis and the per-table/figure experiment
  harnesses.

Quick start::

    from repro import LoopLynxSystem

    system = LoopLynxSystem.paper_configuration(num_nodes=2)
    print(system.average_token_latency_ms())        # ~3.7 ms per token
    print(system.throughput_tokens_per_second())    # ~270 tokens/s
"""

from repro.core import (
    AcceleratorNode,
    HardwareConfig,
    LoopLynxSystem,
    OptimizationConfig,
    SystemConfig,
    paper_system,
)
from repro.model import GPT2Model, ModelConfig, prefill_then_decode

__version__ = "1.0.0"

__all__ = [
    "AcceleratorNode",
    "HardwareConfig",
    "LoopLynxSystem",
    "OptimizationConfig",
    "SystemConfig",
    "paper_system",
    "GPT2Model",
    "ModelConfig",
    "prefill_then_decode",
    "__version__",
]
