"""Unit vocabulary for the simulator's priced quantities.

Every quantity the simulator prices — simulated seconds, token counts,
paged KV blocks, byte budgets, energy — is spelled ``float``/``int`` at
runtime, distinguished only by a naming convention (``arrival_s``,
``budget_bytes``, ``free_blocks``, …).  This module is the single source
of truth for that convention:

* **typed aliases** (:data:`Seconds`, :data:`Tokens`, :data:`Blocks`, …)
  annotate the hot-path surfaces.  They are plain aliases — ``Seconds``
  *is* ``float`` — so annotating with them changes no runtime behaviour
  and no mypy verdict; what it changes is that ``tools/simcheck.py`` can
  seed its dimensional-analysis dataflow from them;
* **suffix tables** map name suffixes to units (``_s`` → ``Seconds``,
  ``_tokens`` → ``Tokens``, …).  Both ``tools/repro_lint.py`` and
  ``tools/simcheck.py`` import these, so the two linters cannot drift
  apart on what a timestamp or a counter looks like.

The unit semantics themselves (what the quantities *mean*) are
documented where they live: simulated seconds come from the event loop,
KV blocks are per-node paged allocations, byte budgets are per-node,
token counts are cached positions summed over co-resident sequences.
See ``docs/development.md`` for the vocabulary table and the simcheck
rule catalogue built on top of it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "Seconds", "Milliseconds", "Tokens", "Blocks", "BlockId", "Bytes",
    "MiB", "TokensPerSecond", "RequestsPerSecond", "BytesPerSecond",
    "Joules", "Watts", "Fraction",
    "UNIT_ALIASES", "UNIT_SUFFIXES", "suffix_unit",
    "TIMESTAMP_NAME_WORDS", "TIMESTAMP_SUFFIXES", "COUNTER_PREFIXES",
]

# ---------------------------------------------------------------------------
# typed aliases (annotation currency; all plain float/int at runtime)
# ---------------------------------------------------------------------------

#: Simulated wall-clock seconds (the event loop's currency).
Seconds = float
#: Simulated milliseconds — only the paper-facing ``core`` reports use
#: these; everything the serving engine prices is in :data:`Seconds`.
Milliseconds = float
#: Token positions (prompt/generation lengths, cached KV positions).
Tokens = int
#: A *count* of paged KV blocks (per node).
Blocks = int
#: The identity of one paged KV block (an index into a pool, not a count).
BlockId = int
#: Bytes (per-node budgets and footprints unless documented otherwise).
Bytes = int
#: Mebibytes (CLI-facing budget knobs; ``bytes / 2**20``).
MiB = float
#: Generation throughput.
TokensPerSecond = float
#: Offered/served load.
RequestsPerSecond = float
#: Link/channel bandwidth.
BytesPerSecond = float
#: Energy.
Joules = float
#: Power.
Watts = float
#: A dimensionless ratio in ``[0, 1]``.
Fraction = float

#: Alias name -> the runtime type it abbreviates.  The simcheck U-pass
#: treats exactly these names as unit annotations.
UNIT_ALIASES: Dict[str, type] = {
    "Seconds": float,
    "Milliseconds": float,
    "Tokens": int,
    "Blocks": int,
    "BlockId": int,
    "Bytes": int,
    "MiB": float,
    "TokensPerSecond": float,
    "RequestsPerSecond": float,
    "BytesPerSecond": float,
    "Joules": float,
    "Watts": float,
    "Fraction": float,
}

# ---------------------------------------------------------------------------
# the suffix convention
# ---------------------------------------------------------------------------

#: Name-suffix -> unit alias, longest suffix first (``_bytes_per_s`` must
#: win over ``_s``).  ``suffix_unit`` depends on this ordering.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_tokens_per_s", "TokensPerSecond"),
    ("_requests_per_s", "RequestsPerSecond"),
    ("_rate_per_s", "RequestsPerSecond"),
    ("_bytes_per_s", "BytesPerSecond"),
    ("_joules", "Joules"),
    ("_watts", "Watts"),
    ("_tokens", "Tokens"),
    ("_blocks", "Blocks"),
    ("_bytes", "Bytes"),
    ("_mib", "MiB"),
    ("_len", "Tokens"),
    ("_ms", "Milliseconds"),
    ("_s", "Seconds"),
)

#: Bare name words that denote a simulated timestamp even without a unit
#: suffix (``now``, ``arrival`` …).  repro_lint's float-equality rule
#: R003 and simcheck's seeding both build on this list.
TIMESTAMP_NAME_WORDS: Tuple[str, ...] = (
    "time", "times", "timestamp", "arrival", "arrivals", "deadline",
    "finish", "start", "now", "makespan", "tick",
)

#: Suffixes that mark a simulated timestamp for R003 (wider than the
#: unit table: ``_ts``/``_at`` are timestamps but not annotated units).
TIMESTAMP_SUFFIXES: Tuple[str, ...] = ("_s", "_ts", "_at")

#: Prefixes that mark integer counters/indices — exempt from the float
#: timestamp-equality rule even when their names mention time words.
COUNTER_PREFIXES: Tuple[str, ...] = ("num", "n", "count", "total", "idx",
                                     "index")


def suffix_unit(name: str) -> Optional[str]:
    """The unit alias ``name``'s suffix implies, or ``None``.

    Matching is case-insensitive (module constants are upper-case) and
    longest-suffix-first, so ``bandwidth_bytes_per_s`` is
    ``BytesPerSecond``, not ``Seconds``.
    """
    lowered = name.lower()
    for suffix, unit in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return None
