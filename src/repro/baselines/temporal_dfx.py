"""DFX-like temporal (instruction overlay) architecture model.

DFX (Hong et al., MICRO 2022) is the state-of-the-art temporal FPGA
architecture the paper compares against: a multi-FPGA appliance whose
processing engines execute an instruction stream, with FP16 weights streamed
from HBM for every token.  The paper's Table II cites its single-U280 point:
200 MHz, FP16, 5.37 ms per token for the evaluated GPT-2 workload.

The model captures the two structural properties the paper attributes to
temporal architectures (Fig. 3(a)):

* **serialized execution** — every tile goes through read → compute →
  write-back phases managed by instructions, so memory access and computation
  do not overlap (the latency is their *sum*, not their maximum);
* **off-chip traffic** — FP16 weights double the streamed bytes relative to
  LoopLynx's W8A8, and intermediate results are written back to HBM between
  operators, adding write traffic.

Parameter defaults are calibrated so the GPT-2 345M point lands close to the
published 5.37 ms; the structure (not the constants) is what the comparison
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.base import BaselineAccelerator, XILINX_ALVEO_U280
from repro.model.config import ModelConfig, layer_linear_specs

GB = 1_000_000_000


@dataclass(frozen=True)
class DfxConfig:
    """Calibration of the temporal-architecture model."""

    clock_hz: float = 200.0e6
    bytes_per_weight: int = 2                 # FP16
    hbm_bandwidth_bytes_per_s: float = 460 * GB
    #: fraction of the peak HBM bandwidth the instruction-driven DMA sustains
    #: (no burst overlap with compute, address generation in the overlay)
    memory_efficiency: float = 0.75
    #: MAC units usable per cycle by the overlay's processing engines
    macs_per_cycle: int = 1024
    #: instruction issue / decode overhead per operator invocation (cycles)
    instruction_overhead_cycles: float = 1000.0
    #: fraction of activations written back to HBM between operators
    writeback_fraction: float = 1.0
    #: vector lanes of the overlay's special-function units (softmax, LN)
    vector_lanes: int = 2
    #: lanes of the softmax/exponent unit
    softmax_lanes: int = 8


class DfxTemporalModel(BaselineAccelerator):
    """Per-token latency model of the DFX-like temporal architecture."""

    name = "DFX (temporal, U280)"
    platform = XILINX_ALVEO_U280

    def __init__(self, model: ModelConfig, config: DfxConfig | None = None) -> None:
        super().__init__(model)
        self.config = config or DfxConfig()

    # ------------------------------------------------------------------
    def _cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * cycles / self.config.clock_hz

    def _bytes_per_cycle(self) -> float:
        return (self.config.hbm_bandwidth_bytes_per_s * self.config.memory_efficiency
                / self.config.clock_hz)

    def _linear_cycles(self, in_features: int, out_features: int,
                       batch_tokens: int = 1) -> float:
        """Serialized read + compute + write-back of one linear layer."""
        cfg = self.config
        weight_bytes = in_features * out_features * cfg.bytes_per_weight
        read = weight_bytes / self._bytes_per_cycle()
        compute = in_features * out_features * batch_tokens / cfg.macs_per_cycle
        writeback = (out_features * batch_tokens * cfg.bytes_per_weight
                     * cfg.writeback_fraction) / self._bytes_per_cycle()
        return read + compute + writeback + cfg.instruction_overhead_cycles

    def _attention_cycles(self, context_len: int, batch_tokens: int = 1) -> float:
        cfg = self.config
        model = self.model
        context_len = max(context_len, 1)
        kv_bytes = 2 * context_len * model.d_model * cfg.bytes_per_weight * batch_tokens
        read = kv_bytes / self._bytes_per_cycle()
        compute = 2 * context_len * model.d_model * batch_tokens / cfg.macs_per_cycle
        softmax = model.num_heads * 2 * context_len * batch_tokens / cfg.softmax_lanes
        return read + compute + softmax + cfg.instruction_overhead_cycles

    def _critical_path_cycles(self, batch_tokens: int = 1) -> float:
        """LayerNorm / residual / GELU executed on the overlay's vector unit."""
        model = self.model
        per_token = (2 * 3 * model.d_model + 2 * model.d_model
                     + model.d_ff) / self.config.vector_lanes
        return per_token * batch_tokens + 2 * self.config.instruction_overhead_cycles

    # ------------------------------------------------------------------
    def decode_token_latency_ms(self, context_len: int) -> float:
        cycles = 0.0
        for spec in layer_linear_specs(self.model):
            cycles += self._linear_cycles(spec.in_features, spec.out_features)
        cycles += self._attention_cycles(context_len)
        cycles += self._critical_path_cycles()
        return self._cycles_to_ms(cycles * self.model.num_layers)

    def prefill_latency_ms(self, prompt_len: int) -> float:
        """Prompt tokens processed sequentially through the overlay."""
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        total = 0.0
        for position in range(prompt_len):
            total += self.decode_token_latency_ms(position)
        return total

    def latency_breakdown_ms(self, context_len: int = 512) -> Dict[str, float]:
        """Where the per-token cycles go — used by the architecture-comparison
        example to contrast with LoopLynx's overlapped execution."""
        linear = sum(self._linear_cycles(s.in_features, s.out_features)
                     for s in layer_linear_specs(self.model))
        attention = self._attention_cycles(context_len)
        critical = self._critical_path_cycles()
        layers = self.model.num_layers
        return {
            "linear": self._cycles_to_ms(linear * layers),
            "attention": self._cycles_to_ms(attention * layers),
            "critical_path": self._cycles_to_ms(critical * layers),
        }
