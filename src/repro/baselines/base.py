"""Platform catalogue (Table I) and the shared baseline interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List

from repro.model.config import ModelConfig

GB = 1_000_000_000


@dataclass(frozen=True)
class PlatformSpec:
    """One row of the paper's Table I (GPU vs. FPGA platform comparison)."""

    name: str
    process_nm: int
    frequency_mhz: float
    compute_units: str
    memory_bandwidth_gb_s: float
    tdp_watts: float

    def as_row(self) -> Dict[str, object]:
        return {
            "Platform": self.name,
            "Process": f"{self.process_nm}nm",
            "Frequency": f"{self.frequency_mhz:.0f}MHz",
            "Computing Units": self.compute_units,
            "Bandwidth": f"{self.memory_bandwidth_gb_s:.0f} GB/s",
            "TDP": f"{self.tdp_watts:.0f}W",
        }


NVIDIA_A100 = PlatformSpec(
    name="Nvidia A100", process_nm=7, frequency_mhz=1065,
    compute_units="432 Tensor Cores", memory_bandwidth_gb_s=1935, tdp_watts=300)

XILINX_ALVEO_U280 = PlatformSpec(
    name="Xilinx Alveo U280", process_nm=16, frequency_mhz=250,
    compute_units="9024 DSPs", memory_bandwidth_gb_s=460, tdp_watts=215)

XILINX_ALVEO_U50 = PlatformSpec(
    name="Xilinx Alveo U50", process_nm=16, frequency_mhz=250,
    compute_units="5952 DSPs", memory_bandwidth_gb_s=201, tdp_watts=75)

PLATFORM_CATALOGUE: List[PlatformSpec] = [NVIDIA_A100, XILINX_ALVEO_U280,
                                          XILINX_ALVEO_U50]


class BaselineAccelerator(ABC):
    """Common interface of the comparison systems.

    Every baseline answers the same questions LoopLynx answers: per-token
    decode latency at a context length, prefill latency for a prompt, and the
    total latency of a ``[prefill : decode]`` scenario.
    """

    name: str = "baseline"

    def __init__(self, model: ModelConfig) -> None:
        self.model = model

    @abstractmethod
    def decode_token_latency_ms(self, context_len: int) -> float:
        """Per-token latency of one decode step."""

    @abstractmethod
    def prefill_latency_ms(self, prompt_len: int) -> float:
        """Latency of processing the whole prompt."""

    def decode_latency_ms(self, prompt_len: int, decode_len: int) -> float:
        """Latency of generating ``decode_len`` tokens after the prompt."""
        if decode_len < 0:
            raise ValueError("decode_len cannot be negative")
        total = 0.0
        for step in range(decode_len):
            total += self.decode_token_latency_ms(prompt_len + step)
        return total

    def scenario_latency_ms(self, prefill_len: int, decode_len: int) -> float:
        """End-to-end latency of one request (Fig. 8 workload point)."""
        return (self.prefill_latency_ms(prefill_len)
                + self.decode_latency_ms(prefill_len, decode_len))

    def average_token_latency_ms(self, context_len: int = 512) -> float:
        """Average per-token decode latency at a reference context length."""
        return self.decode_token_latency_ms(context_len)
