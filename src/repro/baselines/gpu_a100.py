"""Nvidia A100 analytical model (GPT-2, SmoothQuant W8A8 via torch-int).

The GPU baseline in the paper runs GPT-2 345M on an A100 with the same W8A8
quantization scheme, using the torch-int kernels under PyTorch.  Two regimes
matter for the Fig. 8 comparison:

* **prefill** — the whole prompt is processed as one batched forward pass;
  GEMMs are large enough to use the tensor cores well, so the pass is fast
  and grows only mildly with the prompt length.  This is why the A100 wins
  the ``[128:32]`` setting.
* **decode** — one token per forward pass.  The GEMVs are tiny for a 345M
  model, so the latency is dominated by fixed per-kernel costs (kernel
  launches, quantize/dequantize ops inserted by torch-int, Python/framework
  dispatch) plus the weight-streaming time at an effective bandwidth well
  below peak.  Published measurements of GPT-2-class decoding on A100-class
  GPUs under eager-mode int8 inference are in the 5–10 ms/token range; the
  defaults below land the model in that range and reproduce the paper's
  average speed-up ratios.

Every constant is a named, documented parameter so the sensitivity of the
Fig. 8 conclusions to the GPU calibration can be explored (see the
``gpu_sensitivity`` ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.base import BaselineAccelerator, NVIDIA_A100
from repro.model.config import ModelConfig, layer_linear_specs

GB = 1_000_000_000
TOPS = 1e12


@dataclass(frozen=True)
class A100Config:
    """Calibration of the A100 inference model."""

    memory_bandwidth_bytes_per_s: float = 1935 * GB
    #: effective fraction of peak bandwidth achieved by small decode GEMVs
    decode_bandwidth_efficiency: float = 0.55
    #: effective INT8 tensor-core throughput for batched prefill GEMMs
    prefill_effective_tops: float = 120.0
    #: fraction of that throughput realised on 345M-scale GEMMs
    prefill_compute_efficiency: float = 0.35
    #: CUDA kernels launched per transformer layer in the torch-int W8A8 path
    #: (projections, attention ops, quant/dequant, layer norms, residuals)
    kernels_per_layer: int = 28
    #: fixed cost per kernel launch / framework dispatch (seconds)
    per_kernel_overhead_s: float = 10.5e-6
    #: fixed per-forward-pass overhead (Python driver, sampling, H2D/D2H)
    per_pass_overhead_s: float = 0.4e-3
    bytes_per_weight: int = 1                 # W8A8
    kv_bytes_per_element: int = 1


class A100Model(BaselineAccelerator):
    """Latency model of GPT-2 W8A8 inference on an Nvidia A100."""

    name = "Nvidia A100 (torch-int W8A8)"
    platform = NVIDIA_A100

    def __init__(self, model: ModelConfig, config: A100Config | None = None) -> None:
        super().__init__(model)
        self.config = config or A100Config()

    # ------------------------------------------------------------------
    # traffic / work helpers
    # ------------------------------------------------------------------
    def weight_bytes(self) -> int:
        """Linear-layer weight bytes streamed for one forward pass."""
        per_layer = sum(spec.weight_elements for spec in layer_linear_specs(self.model))
        return per_layer * self.model.num_layers * self.config.bytes_per_weight

    def kv_read_bytes(self, context_len: int) -> int:
        return (self.model.num_layers * 2 * self.model.d_model * max(context_len, 0)
                * self.config.kv_bytes_per_element)

    def linear_macs(self, tokens: int = 1) -> int:
        per_layer = sum(spec.weight_elements for spec in layer_linear_specs(self.model))
        return per_layer * self.model.num_layers * tokens

    def framework_overhead_s(self, passes: int = 1) -> float:
        cfg = self.config
        per_pass = (cfg.per_pass_overhead_s
                    + self.model.num_layers * cfg.kernels_per_layer
                    * cfg.per_kernel_overhead_s)
        return per_pass * passes

    # ------------------------------------------------------------------
    # latency model
    # ------------------------------------------------------------------
    def decode_token_latency_ms(self, context_len: int) -> float:
        """One decode step: overhead-dominated GEMV streaming."""
        cfg = self.config
        bytes_moved = self.weight_bytes() + self.kv_read_bytes(context_len)
        memory_s = bytes_moved / (cfg.memory_bandwidth_bytes_per_s
                                  * cfg.decode_bandwidth_efficiency)
        overhead_s = self.framework_overhead_s(passes=1)
        return 1e3 * (memory_s + overhead_s)

    def prefill_latency_ms(self, prompt_len: int) -> float:
        """One batched forward pass over the whole prompt."""
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        cfg = self.config
        compute_ops = 2.0 * self.linear_macs(tokens=prompt_len)
        compute_s = compute_ops / (cfg.prefill_effective_tops * TOPS
                                   * cfg.prefill_compute_efficiency)
        memory_s = self.weight_bytes() / cfg.memory_bandwidth_bytes_per_s
        # attention over the prompt (float ops; minor for these lengths)
        attn_ops = 2.0 * self.model.num_layers * prompt_len * prompt_len * self.model.d_model
        attn_s = attn_ops / (cfg.prefill_effective_tops * TOPS
                             * cfg.prefill_compute_efficiency)
        overhead_s = self.framework_overhead_s(passes=1)
        return 1e3 * (max(compute_s, memory_s) + attn_s + overhead_s)

    def latency_breakdown_ms(self, context_len: int = 512) -> Dict[str, float]:
        cfg = self.config
        bytes_moved = self.weight_bytes() + self.kv_read_bytes(context_len)
        memory_ms = 1e3 * bytes_moved / (cfg.memory_bandwidth_bytes_per_s
                                         * cfg.decode_bandwidth_efficiency)
        overhead_ms = 1e3 * self.framework_overhead_s(passes=1)
        return {"memory": memory_ms, "framework_overhead": overhead_ms}
