"""Baseline accelerator and GPU models.

The paper compares LoopLynx against three systems; each gets a model here:

* :mod:`repro.baselines.temporal_dfx` — a DFX-like temporal (instruction
  overlay) FPGA architecture on an Alveo U280 with FP16 weights;
* :mod:`repro.baselines.spatial` — the spatial dataflow architecture of
  Chen et al. (TRETS 2024) on an Alveo U280 with W8A8;
* :mod:`repro.baselines.gpu_a100` — an Nvidia A100 running GPT-2 with
  SmoothQuant W8A8 through torch-int (analytical roofline + per-layer
  framework overhead model).

:mod:`repro.baselines.base` carries the platform catalogue behind Table I and
the common baseline interface.
"""

from repro.baselines.base import (
    NVIDIA_A100,
    PLATFORM_CATALOGUE,
    XILINX_ALVEO_U280,
    XILINX_ALVEO_U50,
    BaselineAccelerator,
    PlatformSpec,
)
from repro.baselines.gpu_a100 import A100Config, A100Model
from repro.baselines.spatial import SpatialArchitectureModel
from repro.baselines.temporal_dfx import DfxTemporalModel

__all__ = [
    "NVIDIA_A100",
    "PLATFORM_CATALOGUE",
    "XILINX_ALVEO_U280",
    "XILINX_ALVEO_U50",
    "BaselineAccelerator",
    "PlatformSpec",
    "A100Config",
    "A100Model",
    "SpatialArchitectureModel",
    "DfxTemporalModel",
]
