"""Spatial dataflow architecture model (Chen et al., TRETS 2024).

The spatial baseline instantiates every neural-network operator as its own
kernel and connects them in a dataflow/task-level pipeline (paper Fig. 3(b)).
During the prefill stage the pipeline fills and throughput is excellent, but
during token-by-token decoding the connected operators are forced to execute
sequentially, so at any time only one (or a few) of the many instantiated
kernels is active — the paper's core criticism of pure spatial designs.

The model captures that structure:

* the device's resources (DSPs, HBM channels) are **divided among** the
  instantiated operator kernels, so each linear-layer kernel only owns a
  fraction of the device's bandwidth and MACs;
* during decode the operator kernels execute one after another (only
  intra-kernel pipelining), so the per-token latency is the *sum* of the
  per-operator latencies;
* during prefill the task-level pipeline is active, so throughput approaches
  the bottleneck operator's rate.

Defaults are calibrated so the GPT-2 345M decode point lands near the
published 4.17 ms weighted per-token latency on the U280.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.base import BaselineAccelerator, XILINX_ALVEO_U280
from repro.model.config import ModelConfig, layer_linear_specs

GB = 1_000_000_000


@dataclass(frozen=True)
class SpatialConfig:
    """Calibration of the spatial-architecture model."""

    clock_hz: float = 245.0e6
    bytes_per_weight: int = 1                  # W8A8
    hbm_bandwidth_bytes_per_s: float = 460 * GB
    memory_efficiency: float = 0.85
    #: number of distinct operator kernels the device's HBM channels and DSPs
    #: are partitioned across (linear systolic arrays + attention + misc)
    operator_partitions: int = 4
    #: MACs per cycle available to ONE operator kernel
    macs_per_cycle_per_kernel: int = 2048
    #: per-operator dataflow fill/drain overhead (cycles)
    kernel_fill_overhead_cycles: float = 400.0
    #: element-serial lanes for the critical-path operators
    critical_path_lanes: int = 4
    #: lanes of the softmax unit
    softmax_lanes: int = 4


class SpatialArchitectureModel(BaselineAccelerator):
    """Per-token latency model of the spatial dataflow baseline."""

    name = "Spatial dataflow (U280)"
    platform = XILINX_ALVEO_U280

    def __init__(self, model: ModelConfig, config: SpatialConfig | None = None) -> None:
        super().__init__(model)
        self.config = config or SpatialConfig()

    # ------------------------------------------------------------------
    def _cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * cycles / self.config.clock_hz

    def _kernel_bytes_per_cycle(self) -> float:
        """HBM bytes per cycle available to a single operator kernel."""
        cfg = self.config
        total = cfg.hbm_bandwidth_bytes_per_s * cfg.memory_efficiency / cfg.clock_hz
        return total / cfg.operator_partitions

    def _linear_cycles(self, in_features: int, out_features: int,
                       batch_tokens: int = 1) -> float:
        """One linear-layer kernel: intra-kernel pipelined (max of memory and
        compute), but only this kernel's share of the device is available."""
        cfg = self.config
        weight_bytes = in_features * out_features * cfg.bytes_per_weight
        memory = weight_bytes / self._kernel_bytes_per_cycle()
        compute = in_features * out_features * batch_tokens / cfg.macs_per_cycle_per_kernel
        return max(memory, compute) + cfg.kernel_fill_overhead_cycles

    def _attention_cycles(self, context_len: int, batch_tokens: int = 1) -> float:
        cfg = self.config
        model = self.model
        context_len = max(context_len, 1)
        kv_bytes = 2 * context_len * model.d_model * cfg.bytes_per_weight * batch_tokens
        memory = kv_bytes / self._kernel_bytes_per_cycle()
        compute = 2 * context_len * model.d_model * batch_tokens / cfg.macs_per_cycle_per_kernel
        softmax = model.num_heads * 2 * context_len / cfg.softmax_lanes
        return max(memory, compute) + softmax + cfg.kernel_fill_overhead_cycles

    def _critical_path_cycles(self, batch_tokens: int = 1) -> float:
        model = self.model
        lanes = self.config.critical_path_lanes
        per_token = (2 * 3 * model.d_model + 2 * model.d_model + model.d_ff) / lanes
        return per_token * batch_tokens

    # ------------------------------------------------------------------
    def decode_token_latency_ms(self, context_len: int) -> float:
        """Decode: the task-level pipeline cannot fill, operators serialize."""
        cycles = 0.0
        for spec in layer_linear_specs(self.model):
            cycles += self._linear_cycles(spec.in_features, spec.out_features)
        cycles += self._attention_cycles(context_len)
        cycles += self._critical_path_cycles()
        return self._cycles_to_ms(cycles * self.model.num_layers)

    def prefill_latency_ms(self, prompt_len: int) -> float:
        """Prefill: the task-level pipeline is active, so the pass is governed
        by the bottleneck operator processing all prompt tokens."""
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        per_operator = []
        for spec in layer_linear_specs(self.model):
            per_operator.append(self._linear_cycles(spec.in_features,
                                                    spec.out_features,
                                                    batch_tokens=prompt_len))
        per_operator.append(self._attention_cycles((prompt_len + 1) // 2,
                                                   batch_tokens=prompt_len))
        per_operator.append(self._critical_path_cycles(batch_tokens=prompt_len))
        fill = sum(per_operator)                 # pipeline fill (first token)
        steady = max(per_operator)               # bottleneck stage
        cycles = (fill / max(prompt_len, 1) + steady) * self.model.num_layers
        return self._cycles_to_ms(cycles)

    def latency_breakdown_ms(self, context_len: int = 512) -> Dict[str, float]:
        linear = sum(self._linear_cycles(s.in_features, s.out_features)
                     for s in layer_linear_specs(self.model))
        attention = self._attention_cycles(context_len)
        critical = self._critical_path_cycles()
        layers = self.model.num_layers
        return {
            "linear": self._cycles_to_ms(linear * layers),
            "attention": self._cycles_to_ms(attention * layers),
            "critical_path": self._cycles_to_ms(critical * layers),
        }
