"""Energy and power models.

The paper reports energy efficiency (tokens per joule) and total energy
relative to the A100, measured with the Xilinx power-analysis tool on the
FPGA side and ``nvidia-smi`` on the GPU side.  Both reduce to
``power x latency``; this package carries the power models and the
energy/efficiency arithmetic used by the Fig. 8(b) reproduction.
"""

from repro.energy.power import (
    EnergyReport,
    FpgaPowerModel,
    GpuPowerModel,
    energy_joules,
    tokens_per_joule,
)

__all__ = [
    "EnergyReport",
    "FpgaPowerModel",
    "GpuPowerModel",
    "energy_joules",
    "tokens_per_joule",
]
