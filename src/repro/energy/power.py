"""Power models for the FPGA nodes and the A100 baseline.

The FPGA model is compositional: every card pays a static power (shell, HBM
PHYs, clocking) and every active accelerator node adds a dynamic component
that splits into kernel logic and HBM access.  The defaults are calibrated so
the energy ratios of the paper's Fig. 8(b) are reproduced given the latency
models (2-node: ~37% of the A100's energy; 4-node: ~48%; highest tokens/J on
the 2-node configuration).  The A100 power is far below its 300 W TDP for a
345M-parameter model — ``nvidia-smi`` style board power during small-model
inference sits around 60-80 W — and is exposed as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


def energy_joules(power_watts: float, latency_ms: float) -> float:
    """Energy of a run: ``P x t``."""
    if power_watts < 0 or latency_ms < 0:
        raise ValueError("power and latency must be non-negative")
    return power_watts * latency_ms * 1e-3


def tokens_per_joule(tokens: int, power_watts: float, latency_ms: float) -> float:
    """Energy efficiency as reported in Fig. 8(b)."""
    if tokens < 0:
        raise ValueError("token count cannot be negative")
    energy = energy_joules(power_watts, latency_ms)
    if energy <= 0:
        return 0.0
    return tokens / energy


@dataclass
class EnergyReport:
    """Energy of one scenario on one platform."""

    platform: str
    latency_ms: float
    power_watts: float
    tokens: int

    @property
    def energy_joules(self) -> float:
        return energy_joules(self.power_watts, self.latency_ms)

    @property
    def tokens_per_joule(self) -> float:
        return tokens_per_joule(self.tokens, self.power_watts, self.latency_ms)


@dataclass(frozen=True)
class FpgaPowerModel:
    """Power of a LoopLynx deployment.

    Attributes
    ----------
    card_static_watts:
        Static power of one Alveo U50 card (shell, HBM PHY, regulators).
    node_logic_watts:
        Dynamic power of one accelerator node's kernel logic at 285 MHz.
    node_hbm_watts:
        Dynamic power of one node's HBM channel traffic during inference.
    """

    card_static_watts: float = 18.0
    node_logic_watts: float = 8.0
    node_hbm_watts: float = 4.0

    def __post_init__(self) -> None:
        if min(self.card_static_watts, self.node_logic_watts, self.node_hbm_watts) < 0:
            raise ValueError("power components cannot be negative")

    @property
    def node_dynamic_watts(self) -> float:
        return self.node_logic_watts + self.node_hbm_watts

    def total_power_watts(self, num_nodes: int, nodes_per_card: int = 2) -> float:
        """Board power of a deployment with ``num_nodes`` active nodes."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if nodes_per_card <= 0:
            raise ValueError("nodes_per_card must be positive")
        num_cards = -(-num_nodes // nodes_per_card)
        return (num_cards * self.card_static_watts
                + num_nodes * self.node_dynamic_watts)

    def report(self, num_nodes: int, latency_ms: float, tokens: int,
               nodes_per_card: int = 2) -> EnergyReport:
        return EnergyReport(
            platform=f"LoopLynx {num_nodes}-node",
            latency_ms=latency_ms,
            power_watts=self.total_power_watts(num_nodes, nodes_per_card),
            tokens=tokens,
        )


@dataclass(frozen=True)
class GpuPowerModel:
    """Board power of the A100 during GPT-2-scale W8A8 inference.

    ``idle_watts`` is the baseline board draw; ``active_watts`` is the extra
    draw while inference kernels execute.  Small-model decoding keeps the GPU
    far from its TDP, hence the modest default total of ~70 W.
    """

    idle_watts: float = 25.0
    active_watts: float = 45.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.active_watts < 0:
            raise ValueError("power components cannot be negative")

    @property
    def inference_power_watts(self) -> float:
        return self.idle_watts + self.active_watts

    def report(self, latency_ms: float, tokens: int) -> EnergyReport:
        return EnergyReport(
            platform="Nvidia A100",
            latency_ms=latency_ms,
            power_watts=self.inference_power_watts,
            tokens=tokens,
        )


def efficiency_ratio(fpga: EnergyReport, gpu: EnergyReport) -> float:
    """Tokens/J of the FPGA deployment normalized to the GPU (Fig. 8(b))."""
    gpu_eff = gpu.tokens_per_joule
    if gpu_eff <= 0:
        return 0.0
    return fpga.tokens_per_joule / gpu_eff


def energy_fraction(fpga: EnergyReport, gpu: EnergyReport) -> float:
    """FPGA energy as a fraction of the GPU energy for the same work
    (the paper's "consumes only 48.1% of the energy" style number)."""
    gpu_energy = gpu.energy_joules
    if gpu_energy <= 0:
        return 0.0
    return fpga.energy_joules / gpu_energy
