"""Point-to-point ring link model.

Each accelerator node's router is connected to its successor by a simplex
link.  Inside one FPGA the link is an on-chip AXI-Stream connection; across
FPGAs the paper models a network link with a peak bandwidth equal to one HBM
channel (8.49 GB/s).  The link model converts datapack counts into cycles and
adds a fixed hop latency (serialization + protocol) that matters only when the
transfer is not hidden behind computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

GB = 1_000_000_000


@dataclass(frozen=True)
class LinkConfig:
    """Static parameters of one ring link.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Peak simplex bandwidth of the link (8.49 GB/s in the paper).
    clock_hz:
        Kernel clock used to express cycles (285 MHz).
    hop_latency_cycles:
        Fixed latency per message (serialization, CDC crossing, protocol).
        On-chip node-to-node hops are short; chip-to-chip hops are longer.
    datapack_bytes:
        Size of one datapack (32 bytes).
    """

    bandwidth_bytes_per_s: float = 8.49 * GB
    clock_hz: float = 285.0e6
    hop_latency_cycles: int = 64
    datapack_bytes: int = 32

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.datapack_bytes <= 0:
            raise ValueError("datapack size must be positive")
        if self.hop_latency_cycles < 0:
            raise ValueError("hop latency cannot be negative")

    @property
    def bytes_per_cycle(self) -> float:
        """Bytes the link moves per kernel clock cycle, bounded by the
        datapack beat width."""
        return min(float(self.datapack_bytes),
                   self.bandwidth_bytes_per_s / self.clock_hz)


class RingLink:
    """Cycle accounting for one simplex ring link."""

    def __init__(self, config: LinkConfig, source: int, destination: int) -> None:
        self.config = config
        self.source = source
        self.destination = destination
        self.bytes_sent = 0
        self.messages = 0

    def transfer_cycles(self, num_bytes: int, include_hop_latency: bool = True) -> float:
        """Cycles to move ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        if num_bytes == 0:
            return 0.0
        stream = num_bytes / self.config.bytes_per_cycle
        hop = self.config.hop_latency_cycles if include_hop_latency else 0
        return stream + hop

    def send(self, num_bytes: int, include_hop_latency: bool = True) -> float:
        cycles = self.transfer_cycles(num_bytes, include_hop_latency)
        self.bytes_sent += int(num_bytes)
        self.messages += 1
        return cycles

    def datapack_cycles(self, num_datapacks: int, include_hop_latency: bool = True) -> float:
        """Cycles to move ``num_datapacks`` 32-byte datapacks."""
        if num_datapacks < 0:
            raise ValueError("negative datapack count")
        return self.transfer_cycles(num_datapacks * self.config.datapack_bytes,
                                    include_hop_latency)
