"""Ring network: routers, the all-gather synchronization, and its cycle cost.

The routing mechanism (paper Fig. 6(c)): with ``N`` nodes, synchronization of
the per-node output sub-vectors takes ``N - 1`` rounds (the paper describes
"four rounds" for four nodes including the node's own local write).  In every
round each node forwards ``n`` datapacks to its successor and receives ``n``
datapacks from its predecessor; each router maintains an offset derived from
the originating node id and writes received datapacks into the shared buffer
at that offset.  After the final round all buffers hold identical, fully
assembled vectors.

Two views are provided:

* **functional** (:class:`RingAllGather`): numpy sub-vectors are exchanged
  between per-node :class:`~repro.memory.buffer.SharedBuffer` instances and
  the result is checked for consistency — this validates the routing/offset
  mechanism;
* **performance** (:class:`RingNetwork`): cycles for one synchronization of a
  given byte volume, optionally overlapped with (hidden behind) block-matrix
  computation per the paper's transmission-latency-hiding technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dataflow.pipeline import hidden_latency
from repro.memory.buffer import SharedBuffer
from repro.network.datapack import Datapack, pack_int8_vector, unpack_int8_vector
from repro.network.link import LinkConfig, RingLink


@dataclass
class RingSyncResult:
    """Outcome of one ring synchronization (performance view)."""

    total_cycles: float
    exposed_cycles: float
    bytes_per_link: int
    rounds: int

    @property
    def hidden_cycles(self) -> float:
        return max(self.total_cycles - self.exposed_cycles, 0.0)


class RingNetwork:
    """Performance model of the ring interconnect between ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, config: Optional[LinkConfig] = None) -> None:
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.config = config or LinkConfig()
        self.links: List[RingLink] = [
            RingLink(self.config, source=i, destination=(i + 1) % num_nodes)
            for i in range(num_nodes)
        ]

    # ------------------------------------------------------------------
    def rounds(self) -> int:
        """Neighbour-exchange rounds needed for a full all-gather."""
        return max(self.num_nodes - 1, 0)

    def allgather_bytes_per_link(self, subvector_bytes: int) -> int:
        """Bytes each link carries during a full all-gather of per-node
        sub-vectors of ``subvector_bytes`` bytes: every node's contribution
        traverses each link at most once, so a link carries
        ``(N - 1) * subvector_bytes``."""
        if subvector_bytes < 0:
            raise ValueError("negative sub-vector size")
        return self.rounds() * subvector_bytes

    def allgather_cycles(self, subvector_bytes: int) -> float:
        """Un-hidden cycles of a full ring all-gather.  Rounds proceed in
        lock-step: per round every link moves one sub-vector concurrently, so
        the round time is one link transfer and rounds are serialized."""
        if self.num_nodes == 1:
            return 0.0
        per_round = self.links[0].transfer_cycles(subvector_bytes)
        return per_round * self.rounds()

    def synchronize(self, subvector_bytes: int, compute_cycles: float = 0.0,
                    blocks: int = 1, hide_transfers: bool = True) -> RingSyncResult:
        """Cycle cost of synchronizing per-node sub-vectors, optionally hidden
        behind block-matrix computation (paper Fig. 4(c)).

        Parameters
        ----------
        subvector_bytes:
            Size of the sub-vector each node contributes.
        compute_cycles:
            Computation cycles available to hide the transfer behind.
        blocks:
            Number of matrix blocks the computation is split into; the
            transfer of block ``i`` hides behind the computation of block
            ``i+1``, exposing only the last block's transfer.
        hide_transfers:
            If False, the transfer is fully exposed (ablation switch).
        """
        transfer = self.allgather_cycles(subvector_bytes)
        bytes_per_link = self.allgather_bytes_per_link(subvector_bytes)
        if self.num_nodes == 1 or transfer == 0.0:
            return RingSyncResult(total_cycles=compute_cycles, exposed_cycles=0.0,
                                  bytes_per_link=0, rounds=0)
        for link in self.links:
            link.bytes_sent += bytes_per_link
            link.messages += self.rounds()
        if not hide_transfers or compute_cycles <= 0.0:
            return RingSyncResult(total_cycles=compute_cycles + transfer,
                                  exposed_cycles=transfer,
                                  bytes_per_link=bytes_per_link,
                                  rounds=self.rounds())
        total, exposed = hidden_latency(int(round(compute_cycles)),
                                        int(round(transfer)), blocks=max(blocks, 1))
        return RingSyncResult(total_cycles=float(total), exposed_cycles=float(exposed),
                              bytes_per_link=bytes_per_link, rounds=self.rounds())

    def traffic_summary(self) -> Dict[str, float]:
        return {
            "bytes_per_link": float(max((l.bytes_sent for l in self.links), default=0)),
            "total_bytes": float(sum(l.bytes_sent for l in self.links)),
            "messages": float(sum(l.messages for l in self.links)),
        }


class RingAllGather:
    """Functional model of the router's offset-based all-gather.

    Each node owns a sub-vector (int8).  The all-gather runs ``N - 1``
    neighbour-exchange rounds; in round ``r`` node ``i`` forwards the
    sub-vector that originated at node ``(i - r) mod N`` to node
    ``(i + 1) mod N``, and writes what it receives into its shared buffer at
    ``origin * subvector_len`` — exactly the node-id derived offset described
    in the paper.  After the rounds complete, every node's buffer holds the
    concatenation of all sub-vectors in node order.
    """

    def __init__(self, num_nodes: int, subvector_len: int,
                 datapack_bytes: int = 32) -> None:
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        if subvector_len <= 0:
            raise ValueError("sub-vector length must be positive")
        self.num_nodes = num_nodes
        self.subvector_len = subvector_len
        self.datapack_bytes = datapack_bytes
        self.buffers: List[SharedBuffer] = []
        for node in range(num_nodes):
            buffer = SharedBuffer(capacity_words=num_nodes * subvector_len,
                                  name=f"node{node}_buffer")
            buffer.allocate("gathered", num_nodes * subvector_len)
            self.buffers.append(buffer)
        self.datapacks_forwarded = 0

    def run(self, subvectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Execute the all-gather.  ``subvectors[i]`` is node ``i``'s int8
        contribution.  Returns the gathered vector held by each node (all
        identical if the routing is correct)."""
        if len(subvectors) != self.num_nodes:
            raise ValueError(
                f"expected {self.num_nodes} sub-vectors, got {len(subvectors)}")
        arrays = [np.asarray(v).astype(np.int8) for v in subvectors]
        for array in arrays:
            if array.shape != (self.subvector_len,):
                raise ValueError(
                    f"sub-vectors must have shape ({self.subvector_len},), got {array.shape}")
        # local write: each node writes its own sub-vector at its own offset
        for node, array in enumerate(arrays):
            self.buffers[node].write("gathered", array.astype(np.int32),
                                     offset=node * self.subvector_len)
        # holding[i] is the sub-vector node i will forward next round,
        # tagged with its originating node
        holding = [(node, arrays[node]) for node in range(self.num_nodes)]
        for _round in range(self.num_nodes - 1):
            incoming: List[Optional[tuple]] = [None] * self.num_nodes
            for node in range(self.num_nodes):
                successor = (node + 1) % self.num_nodes
                origin, payload = holding[node]
                packs = pack_int8_vector(payload, source_node=origin,
                                         lanes=self.datapack_bytes)
                self.datapacks_forwarded += len(packs)
                received = unpack_int8_vector(packs, self.subvector_len)
                incoming[successor] = (origin, received)
            for node in range(self.num_nodes):
                origin, payload = incoming[node]
                self.buffers[node].write("gathered", payload.astype(np.int32),
                                         offset=origin * self.subvector_len)
                holding[node] = (origin, payload)
        return [buffer.read("gathered").astype(np.int8) for buffer in self.buffers]

    def buffers_consistent(self) -> bool:
        """True when every node's gathered buffer holds identical contents."""
        snapshots = [buffer.read("gathered") for buffer in self.buffers]
        return all(np.array_equal(snapshots[0], snap) for snap in snapshots[1:])
