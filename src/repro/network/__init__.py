"""Network substrate: ring interconnect between accelerator nodes.

LoopLynx scales across multiple accelerator nodes (and multiple FPGAs) by
connecting routers in a ring (AXI-Stream links, peak 8.49 GB/s in the paper's
evaluation).  Synchronization of the per-node output sub-vectors is performed
as ``n_nodes - 1`` rounds of neighbour exchange (each node writes ``n``
datapacks to its successor and reads ``n`` from its predecessor per round),
with received datapacks written into the shared buffer at a node-id derived
offset so that all nodes converge to identical buffer contents.

* :mod:`repro.network.datapack` — the 32-byte datapack unit moved by routers;
* :mod:`repro.network.link` — point-to-point link bandwidth/latency model;
* :mod:`repro.network.ring` — the ring all-gather, both functional (numpy
  sub-vector exchange into shared buffers) and cycle-level (transfer cycles,
  with or without overlap behind computation).
"""

from repro.network.datapack import Datapack, pack_int8_vector, unpack_int8_vector
from repro.network.link import LinkConfig, RingLink
from repro.network.ring import RingAllGather, RingNetwork, RingSyncResult

__all__ = [
    "Datapack",
    "pack_int8_vector",
    "unpack_int8_vector",
    "LinkConfig",
    "RingLink",
    "RingAllGather",
    "RingNetwork",
    "RingSyncResult",
]
