"""Datapack unit used by the DMA engines and the ring routers.

The paper's DMA engine loads concatenated ``n_group x 8-bit`` datapacks (with
``n_group = 32``, a 32-byte beat), and the router forwards the same-sized
datapacks around the ring.  The functional model packs int8 vectors into
datapacks so the router / shared-buffer data movement can be checked for
bit-exact consistency across nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

DEFAULT_DATAPACK_BYTES = 32


@dataclass(frozen=True)
class Datapack:
    """A fixed-size bundle of int8 lanes plus routing metadata.

    Attributes
    ----------
    payload:
        Tuple of int8 lane values (length = datapack byte width).
    source_node:
        Node id that produced the datapack (used for the buffer offset).
    sequence:
        Index of the datapack within its message.
    """

    payload: Tuple[int, ...]
    source_node: int = 0
    sequence: int = 0

    def __post_init__(self) -> None:
        for value in self.payload:
            if not (-128 <= value <= 127):
                raise ValueError(f"datapack lane value {value} is not int8")

    @property
    def num_lanes(self) -> int:
        return len(self.payload)

    @property
    def num_bytes(self) -> int:
        return len(self.payload)

    def as_array(self) -> np.ndarray:
        return np.array(self.payload, dtype=np.int8)


def pack_int8_vector(vector: np.ndarray, source_node: int = 0,
                     lanes: int = DEFAULT_DATAPACK_BYTES) -> List[Datapack]:
    """Pack an int8 vector into datapacks of ``lanes`` bytes.

    The last datapack is zero-padded, mirroring the hardware's aligned burst
    transfers.  ``unpack_int8_vector`` with the original length round-trips.
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    data = np.asarray(vector)
    if data.ndim != 1:
        raise ValueError("expected a 1-D vector")
    clipped = np.clip(np.rint(data), -128, 127).astype(np.int8)
    count = math.ceil(clipped.size / lanes) if clipped.size else 0
    packs: List[Datapack] = []
    for index in range(count):
        chunk = clipped[index * lanes:(index + 1) * lanes]
        if chunk.size < lanes:
            chunk = np.concatenate([chunk, np.zeros(lanes - chunk.size, dtype=np.int8)])
        packs.append(Datapack(payload=tuple(int(v) for v in chunk),
                              source_node=source_node, sequence=index))
    return packs


def unpack_int8_vector(packs: Sequence[Datapack], length: int) -> np.ndarray:
    """Reassemble an int8 vector of ``length`` elements from datapacks,
    honouring their sequence order."""
    if length < 0:
        raise ValueError("negative length")
    ordered = sorted(packs, key=lambda p: p.sequence)
    if ordered:
        lanes = ordered[0].num_lanes
        if any(p.num_lanes != lanes for p in ordered):
            raise ValueError("datapacks have inconsistent lane counts")
    flat: List[int] = []
    for pack in ordered:
        flat.extend(pack.payload)
    if length > len(flat):
        raise ValueError(f"datapacks carry {len(flat)} bytes, need {length}")
    return np.array(flat[:length], dtype=np.int8)
