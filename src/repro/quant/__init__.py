"""Quantization substrate: SmoothQuant-style W8A8 post-training quantization.

The paper evaluates GPT-2 under the SmoothQuant W8A8 scheme on both the
accelerator and the A100 baseline (via torch-int).  This package provides the
same scheme from scratch:

* :mod:`repro.quant.int8` — symmetric int8 quantization/dequantization,
  per-tensor and per-channel scales, and the requantization step performed by
  the accelerator's quantization unit;
* :mod:`repro.quant.smoothquant` — activation-outlier smoothing that migrates
  quantization difficulty from activations to weights (the ``s_j =
  max|X_j|^alpha / max|W_j|^(1-alpha)`` per-channel factors of the
  SmoothQuant paper);
* :mod:`repro.quant.gemm` — int8 GEMM/GEMV with int32 accumulation exactly as
  the MAC hardware computes it, plus error metrics against the float
  reference.
"""

from repro.quant.int8 import (
    QuantizedTensor,
    dequantize,
    quantize_per_channel,
    quantize_per_tensor,
    requantize_int32,
    symmetric_scale,
)
from repro.quant.smoothquant import SmoothQuantCalibration, smooth_weights_activations
from repro.quant.gemm import int8_gemv, int8_gemm, quantization_error

__all__ = [
    "QuantizedTensor",
    "dequantize",
    "quantize_per_channel",
    "quantize_per_tensor",
    "requantize_int32",
    "symmetric_scale",
    "SmoothQuantCalibration",
    "smooth_weights_activations",
    "int8_gemv",
    "int8_gemm",
    "quantization_error",
]
