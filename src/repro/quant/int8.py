"""Symmetric int8 quantization primitives (W8A8).

The accelerator keeps weights, activations and the KV cache in int8; MAC
hardware accumulates in int32 and the quantization unit performs bias addition
and requantization back to int8 before results enter the shared buffer or the
router.  These functions implement that arithmetic in numpy with the exact
rounding/saturation behaviour the functional datapath tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

INT8_MIN = -128
INT8_MAX = 127


@dataclass
class QuantizedTensor:
    """An int8 tensor together with its (per-tensor or per-channel) scale.

    ``dequantize(q) == q.data * q.scale`` (broadcast over the channel axis for
    per-channel scales).
    """

    data: np.ndarray
    scale: np.ndarray
    axis: Optional[int] = None  # None = per-tensor, else the channel axis

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.int8)
        self.scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        if np.any(self.scale <= 0):
            raise ValueError("quantization scales must be positive")
        if self.axis is not None:
            if not (0 <= self.axis < self.data.ndim):
                raise ValueError(f"axis {self.axis} out of range for shape {self.data.shape}")
            if self.scale.size != self.data.shape[self.axis]:
                raise ValueError(
                    f"per-channel scale of size {self.scale.size} does not match "
                    f"axis {self.axis} of shape {self.data.shape}")
        elif self.scale.size != 1:
            raise ValueError("per-tensor quantization needs a scalar scale")

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def dequantized(self) -> np.ndarray:
        return dequantize(self)


def symmetric_scale(tensor: np.ndarray, axis: Optional[int] = None,
                    eps: float = 1e-8) -> np.ndarray:
    """Scale mapping the tensor's max absolute value onto the int8 range.

    With ``axis`` given, a separate scale is computed per channel along that
    axis (per-output-channel weight quantization); otherwise a single scalar
    scale is returned.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if axis is None:
        max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
        return np.array([max(max_abs, eps) / INT8_MAX])
    reduce_axes = tuple(i for i in range(tensor.ndim) if i != axis)
    max_abs = np.max(np.abs(tensor), axis=reduce_axes) if tensor.size else np.zeros(
        tensor.shape[axis])
    return np.maximum(max_abs, eps) / INT8_MAX


def _saturate(values: np.ndarray) -> np.ndarray:
    return np.clip(values, INT8_MIN, INT8_MAX)


def quantize_per_tensor(tensor: np.ndarray, scale: Optional[float] = None) -> QuantizedTensor:
    """Quantize with a single symmetric scale (used for activations)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    scale_arr = (np.array([float(scale)]) if scale is not None
                 else symmetric_scale(tensor, axis=None))
    quantized = _saturate(np.rint(tensor / scale_arr[0])).astype(np.int8)
    return QuantizedTensor(data=quantized, scale=scale_arr, axis=None)


def quantize_per_channel(tensor: np.ndarray, axis: int = 0,
                         scale: Optional[np.ndarray] = None) -> QuantizedTensor:
    """Quantize with one symmetric scale per channel along ``axis``
    (used for weight matrices, per output channel)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    scales = (np.asarray(scale, dtype=np.float64) if scale is not None
              else symmetric_scale(tensor, axis=axis))
    shape = [1] * tensor.ndim
    shape[axis] = scales.size
    quantized = _saturate(np.rint(tensor / scales.reshape(shape))).astype(np.int8)
    return QuantizedTensor(data=quantized, scale=scales, axis=axis)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Map an int8 tensor back to floats using its scale."""
    data = quantized.data.astype(np.float64)
    if quantized.axis is None:
        return data * quantized.scale[0]
    shape = [1] * data.ndim
    shape[quantized.axis] = quantized.scale.size
    return data * quantized.scale.reshape(shape)


def requantize_int32(accumulator: np.ndarray, input_scale: float,
                     weight_scale: Union[float, np.ndarray],
                     output_scale: float,
                     bias: Optional[np.ndarray] = None) -> np.ndarray:
    """The quantization unit: int32 accumulator -> int8 output.

    ``accumulator`` holds ``sum(x_q * w_q)`` per output channel; its real
    value is ``accumulator * input_scale * weight_scale``.  The unit adds the
    (float) bias and rescales to the next stage's ``output_scale``, rounding
    to nearest and saturating to int8 — matching the hardware's bias-addition
    + quantization step after the MPU.
    """
    accumulator = np.asarray(accumulator, dtype=np.int64)
    weight_scale = np.asarray(weight_scale, dtype=np.float64)
    if output_scale <= 0 or input_scale <= 0 or np.any(weight_scale <= 0):
        raise ValueError("scales must be positive")
    real = accumulator.astype(np.float64) * input_scale * weight_scale
    if bias is not None:
        real = real + np.asarray(bias, dtype=np.float64)
    return _saturate(np.rint(real / output_scale)).astype(np.int8)
