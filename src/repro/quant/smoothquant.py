"""SmoothQuant activation smoothing (Xiao et al., ICML 2023).

W8A8 quantization of transformer linear layers suffers from activation
outliers concentrated in a few channels.  SmoothQuant migrates that difficulty
to the weights with a per-input-channel factor

    s_j = max|X_j|^alpha / max|W_j|^(1 - alpha)

so the smoothed activations ``X / s`` and weights ``W * s`` are both easy to
quantize while the layer's output is mathematically unchanged:
``(X / s) @ (diag(s) W^T)^T == X @ W^T``.

Both the LoopLynx accelerator and the A100/torch-int baseline in the paper use
this scheme; the calibration here is what produces the int8 weights the
functional accelerator datapath consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.quant.int8 import QuantizedTensor, quantize_per_channel, quantize_per_tensor, symmetric_scale


def smooth_weights_activations(activations: np.ndarray, weight: np.ndarray,
                               alpha: float = 0.5, eps: float = 1e-8
                               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute smoothing factors and return smoothed (activations, weight, s).

    Parameters
    ----------
    activations:
        Calibration activations of shape ``[tokens, in_features]``.
    weight:
        Layer weight of shape ``[out_features, in_features]``.
    alpha:
        Migration strength; 0.5 is SmoothQuant's default and the usual choice
        for GPT-2-class models.
    """
    if not (0.0 <= alpha <= 1.0):
        raise ValueError(f"alpha must be within [0, 1], got {alpha}")
    activations = np.asarray(activations, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if activations.ndim != 2 or weight.ndim != 2:
        raise ValueError("activations must be [tokens, in], weight must be [out, in]")
    if activations.shape[1] != weight.shape[1]:
        raise ValueError(
            f"in_features mismatch: activations {activations.shape[1]} vs weight {weight.shape[1]}")
    act_max = np.maximum(np.max(np.abs(activations), axis=0), eps)
    weight_max = np.maximum(np.max(np.abs(weight), axis=0), eps)
    scales = np.power(act_max, alpha) / np.power(weight_max, 1.0 - alpha)
    scales = np.maximum(scales, eps)
    smoothed_acts = activations / scales[None, :]
    smoothed_weight = weight * scales[None, :]
    return smoothed_acts, smoothed_weight, scales


@dataclass
class SmoothQuantCalibration:
    """Per-layer calibration state collected over sample activations.

    The calibration records, per named linear layer, the running max-abs of
    each input channel.  :meth:`quantize_layer` then applies smoothing and
    produces the per-channel int8 weight plus the static activation scale the
    accelerator uses at run time (static per-tensor activation quantization,
    as in the paper's W8A8 setting).
    """

    alpha: float = 0.5
    eps: float = 1e-8
    activation_max: Dict[str, np.ndarray] = field(default_factory=dict)
    activation_absmax: Dict[str, float] = field(default_factory=dict)

    def observe(self, layer_name: str, activations: np.ndarray) -> None:
        """Accumulate calibration statistics for one layer's input."""
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim == 1:
            activations = activations[None, :]
        channel_max = np.max(np.abs(activations), axis=0)
        if layer_name in self.activation_max:
            self.activation_max[layer_name] = np.maximum(
                self.activation_max[layer_name], channel_max)
        else:
            self.activation_max[layer_name] = channel_max
        absmax = float(np.max(np.abs(activations))) if activations.size else 0.0
        self.activation_absmax[layer_name] = max(
            self.activation_absmax.get(layer_name, 0.0), absmax)

    def smoothing_factors(self, layer_name: str, weight: np.ndarray) -> np.ndarray:
        """Per-input-channel smoothing factors for a calibrated layer."""
        if layer_name not in self.activation_max:
            raise KeyError(f"layer {layer_name!r} has no calibration data")
        weight = np.asarray(weight, dtype=np.float64)
        act_max = np.maximum(self.activation_max[layer_name], self.eps)
        weight_max = np.maximum(np.max(np.abs(weight), axis=0), self.eps)
        scales = np.power(act_max, self.alpha) / np.power(weight_max, 1.0 - self.alpha)
        return np.maximum(scales, self.eps)

    def quantize_layer(self, layer_name: str, weight: np.ndarray
                       ) -> Tuple[QuantizedTensor, float, np.ndarray]:
        """Smooth + quantize one layer.

        Returns ``(quantized_weight, activation_scale, smoothing_factors)``:
        the per-output-channel int8 weight of the *smoothed* weight matrix,
        the static per-tensor scale for the smoothed activations, and the
        smoothing factors to fold into the preceding operator.
        """
        factors = self.smoothing_factors(layer_name, weight)
        smoothed_weight = np.asarray(weight, dtype=np.float64) * factors[None, :]
        quantized_weight = quantize_per_channel(smoothed_weight, axis=0)
        smoothed_act_max = np.max(
            np.maximum(self.activation_max[layer_name], self.eps) / factors)
        activation_scale = float(max(smoothed_act_max, self.eps) / 127.0)
        return quantized_weight, activation_scale, factors
