"""Int8 GEMM/GEMV with int32 accumulation — the MAC hardware's arithmetic.

The MPU of the Fused MP kernel multiplies an int8 weight tile against the
int8 embedding vector and accumulates in int32/int64; the quantization unit
then requantizes.  These helpers implement that exact arithmetic in numpy so
the functional accelerator datapath and the property-based tests can compare
against a float reference and bound the quantization error.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np


def int8_gemv(weight_q: np.ndarray, vector_q: np.ndarray) -> np.ndarray:
    """``weight_q @ vector_q`` with int8 inputs and int64 accumulation.

    Parameters
    ----------
    weight_q:
        Int8 weight matrix of shape ``[out_features, in_features]``.
    vector_q:
        Int8 vector of shape ``[in_features]``.

    Returns
    -------
    Int64 accumulator vector of shape ``[out_features]`` (the hardware uses a
    wide accumulator; int64 here avoids any possibility of numpy overflow for
    the dimensions involved).
    """
    weight_q = np.asarray(weight_q)
    vector_q = np.asarray(vector_q)
    if weight_q.dtype != np.int8 or vector_q.dtype != np.int8:
        raise TypeError("int8_gemv expects int8 inputs")
    if weight_q.ndim != 2 or vector_q.ndim != 1:
        raise ValueError("weight must be 2-D and vector 1-D")
    if weight_q.shape[1] != vector_q.shape[0]:
        raise ValueError(
            f"dimension mismatch: weight {weight_q.shape} vs vector {vector_q.shape}")
    return weight_q.astype(np.int64) @ vector_q.astype(np.int64)


def int8_gemm(a_q: np.ndarray, b_q: np.ndarray) -> np.ndarray:
    """``a_q @ b_q`` with int8 inputs and int64 accumulation (prefill path)."""
    a_q = np.asarray(a_q)
    b_q = np.asarray(b_q)
    if a_q.dtype != np.int8 or b_q.dtype != np.int8:
        raise TypeError("int8_gemm expects int8 inputs")
    if a_q.ndim != 2 or b_q.ndim != 2:
        raise ValueError("int8_gemm expects 2-D inputs")
    if a_q.shape[1] != b_q.shape[0]:
        raise ValueError(f"dimension mismatch: {a_q.shape} @ {b_q.shape}")
    return a_q.astype(np.int64) @ b_q.astype(np.int64)


def tiled_int8_gemv(weight_q: np.ndarray, vector_q: np.ndarray,
                    tile_rows: int) -> np.ndarray:
    """GEMV computed tile-by-tile along the output dimension, mirroring the
    block matrix-vector multiplication of the MPU (``W in Z^{l/n x l}``).

    The result is bit-identical to :func:`int8_gemv`; the tiling exists so
    tests can confirm that the hardware's blocked schedule does not change the
    arithmetic.
    """
    if tile_rows <= 0:
        raise ValueError("tile_rows must be positive")
    weight_q = np.asarray(weight_q)
    vector_q = np.asarray(vector_q)
    out = np.zeros(weight_q.shape[0], dtype=np.int64)
    for start in range(0, weight_q.shape[0], tile_rows):
        stop = min(start + tile_rows, weight_q.shape[0])
        out[start:stop] = int8_gemv(weight_q[start:stop], vector_q)
    return out


def quantization_error(reference: np.ndarray, quantized_result: np.ndarray
                       ) -> Dict[str, float]:
    """Error metrics of a dequantized result against the float reference.

    Returns max absolute error, mean absolute error, and relative L2 error —
    used by the accuracy tests to assert W8A8 stays within the tolerance that
    makes the paper's "same quantization strategy" comparison meaningful.
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    quantized_result = np.asarray(quantized_result, dtype=np.float64).ravel()
    if reference.shape != quantized_result.shape:
        raise ValueError("shape mismatch between reference and quantized result")
    diff = reference - quantized_result
    ref_norm = float(np.linalg.norm(reference))
    return {
        "max_abs_error": float(np.max(np.abs(diff))) if diff.size else 0.0,
        "mean_abs_error": float(np.mean(np.abs(diff))) if diff.size else 0.0,
        "relative_l2_error": (float(np.linalg.norm(diff)) / ref_norm
                              if ref_norm > 0 else 0.0),
    }
