"""On-chip shared buffer model.

LoopLynx's macro dataflow kernels exchange activations through a shared
on-chip buffer managed by the scheduler; the ring-network router also writes
datapacks received from neighbouring nodes into this buffer at a node-id
derived offset so that, after a full round of synchronization, every node
holds an identical copy of the full embedding vector.

The functional model below is a named, bounds-checked byte/word store with
region allocation.  It is used by the functional accelerator datapath (to hold
intermediate int8/int32 vectors) and by the router model (offset writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class BufferRegion:
    """A named allocation inside the shared buffer."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class SharedBuffer:
    """A fixed-capacity on-chip buffer with named regions.

    Capacity is expressed in 32-bit words because the quantization unit packs
    accumulated int32 results before requantization; int8 vectors simply use
    one word per element (the functional model is about correctness of data
    movement, not bit-packing).
    """

    def __init__(self, capacity_words: int, name: str = "shared_buffer") -> None:
        if capacity_words <= 0:
            raise ValueError("buffer capacity must be positive")
        self.name = name
        self.capacity_words = int(capacity_words)
        self._data = np.zeros(self.capacity_words, dtype=np.int32)
        self._regions: Dict[str, BufferRegion] = {}
        self._next_free = 0
        self.total_writes = 0
        self.total_reads = 0

    # ------------------------------------------------------------------
    # region management
    # ------------------------------------------------------------------
    def allocate(self, name: str, size: int) -> BufferRegion:
        """Allocate a named region of ``size`` words at the next free offset."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError("region size must be positive")
        if self._next_free + size > self.capacity_words:
            raise MemoryError(
                f"shared buffer {self.name!r} overflow: requested {size} words, "
                f"{self.capacity_words - self._next_free} free")
        region = BufferRegion(name=name, offset=self._next_free, size=size)
        self._regions[name] = region
        self._next_free += size
        return region

    def region(self, name: str) -> BufferRegion:
        return self._regions[name]

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def reset(self) -> None:
        """Clear all regions and data (used between tokens/layers)."""
        self._data[:] = 0
        self._regions.clear()
        self._next_free = 0

    @property
    def used_words(self) -> int:
        return self._next_free

    @property
    def free_words(self) -> int:
        return self.capacity_words - self._next_free

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def write(self, name: str, values: np.ndarray, offset: int = 0) -> None:
        """Write ``values`` into region ``name`` starting at ``offset`` words
        from the region start (the router uses a node-id based offset)."""
        region = self._regions[name]
        values = np.asarray(values, dtype=np.int32).ravel()
        if offset < 0 or offset + values.size > region.size:
            raise IndexError(
                f"write of {values.size} words at offset {offset} exceeds "
                f"region {name!r} of size {region.size}")
        start = region.offset + offset
        self._data[start:start + values.size] = values
        self.total_writes += int(values.size)

    def read(self, name: str, size: Optional[int] = None, offset: int = 0) -> np.ndarray:
        """Read ``size`` words (default: the rest of the region) from
        region ``name`` starting at ``offset``."""
        region = self._regions[name]
        if size is None:
            size = region.size - offset
        if offset < 0 or size < 0 or offset + size > region.size:
            raise IndexError(
                f"read of {size} words at offset {offset} exceeds "
                f"region {name!r} of size {region.size}")
        start = region.offset + offset
        self.total_reads += int(size)
        return self._data[start:start + size].copy()

    def snapshot(self) -> np.ndarray:
        """Copy of the entire buffer contents (for consistency checks across
        ring-synchronized nodes)."""
        return self._data.copy()
