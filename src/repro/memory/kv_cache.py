"""Key/value cache layout and functional cache.

During the decode stage, LoopLynx reads previously cached keys and values from
HBM for the fused multi-head attention kernel.  Under the multi-node model
parallel scheme the cache is partitioned **head-wise**: each node stores only
the heads it owns, minimizing the per-device memory footprint (Fig. 2(c)).

Two classes live here:

* :class:`KVCacheLayout` — sizes/byte counts for the performance model (how
  many bytes a decode step reads per node at a given sequence length);
* :class:`KVCache` — the functional numpy cache used by the GPT-2 reference
  model and the functional accelerator datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.units import Bytes, Tokens


class ModelDims(Protocol):
    """Structural type of anything :meth:`KVCacheLayout.for_model` accepts:
    a model config exposing the four cache-shaping dimensions."""

    num_layers: int
    num_heads: int
    head_dim: int
    max_seq_len: Tokens


def partition_heads(num_heads: int, num_nodes: int) -> List[List[int]]:
    """Split head indices across nodes as evenly as possible.

    The paper uses head-wise partitioning for the KV cache; GPT-2 345M has 16
    heads, so 1/2/4 node configurations own 16/8/4 heads each.  Uneven splits
    are supported (extra heads go to the lowest-numbered nodes) so the design
    space exploration can sweep arbitrary node counts.
    """
    if num_heads <= 0:
        raise ValueError("num_heads must be positive")
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_nodes > num_heads:
        raise ValueError(
            f"cannot partition {num_heads} heads across {num_nodes} nodes: "
            "each node needs at least one head")
    base = num_heads // num_nodes
    extra = num_heads % num_nodes
    partitions: List[List[int]] = []
    start = 0
    for node in range(num_nodes):
        count = base + (1 if node < extra else 0)
        partitions.append(list(range(start, start + count)))
        start += count
    return partitions


@dataclass(frozen=True)
class KVCacheLayout:
    """Byte-level layout of the per-node KV cache.

    Attributes
    ----------
    num_layers, num_heads, head_dim:
        Model dimensions.
    max_seq_len:
        Maximum cached sequence length.
    bytes_per_element:
        1 for int8 (W8A8 keeps the cache in int8), 2 for fp16.
    num_nodes:
        Head-wise partitions.
    """

    num_layers: int
    num_heads: int
    head_dim: int
    max_seq_len: Tokens
    bytes_per_element: int = 1
    num_nodes: int = 1

    def __post_init__(self) -> None:
        if min(self.num_layers, self.num_heads, self.head_dim, self.max_seq_len) <= 0:
            raise ValueError("all dimensions must be positive")
        if self.bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        if self.num_nodes <= 0 or self.num_nodes > self.num_heads:
            raise ValueError("invalid node count for head-wise partitioning")

    @classmethod
    def for_model(cls, model: "ModelDims", num_nodes: int = 1,
                  bytes_per_element: int = 1) -> "KVCacheLayout":
        """Layout for a model config (anything exposing ``num_layers``,
        ``num_heads``, ``head_dim``, ``max_seq_len``) head-partitioned
        across ``num_nodes``."""
        return cls(num_layers=model.num_layers, num_heads=model.num_heads,
                   head_dim=model.head_dim, max_seq_len=model.max_seq_len,
                   bytes_per_element=bytes_per_element, num_nodes=num_nodes)

    @property
    def heads_per_node(self) -> int:
        """Heads owned by the most-loaded node."""
        return -(-self.num_heads // self.num_nodes)

    def bytes_per_token_per_layer_per_node(self) -> int:
        """Bytes appended to one node's cache per decoded token per layer
        (K and V vectors for the heads this node owns)."""
        return 2 * self.heads_per_node * self.head_dim * self.bytes_per_element

    def bytes_per_token_per_node(self) -> int:
        return self.num_layers * self.bytes_per_token_per_layer_per_node()

    def read_bytes_per_decode_step_per_node(self, seq_len: Tokens) -> int:
        """Bytes a node must read from HBM to attend over ``seq_len`` cached
        positions during one decode step (all its heads, K and V)."""
        if seq_len < 0:
            raise ValueError("negative sequence length")
        seq_len = min(seq_len, self.max_seq_len)
        return (self.num_layers * 2 * self.heads_per_node * self.head_dim
                * seq_len * self.bytes_per_element)

    def capacity_bytes_per_node(self) -> int:
        """Total HBM footprint of one node's cache at max sequence length."""
        return self.max_seq_len * self.bytes_per_token_per_node()

    def max_cached_tokens(self, budget_bytes: Bytes) -> Tokens:
        """How many cached token positions (summed over all co-resident
        sequences) fit one node's KV budget of ``budget_bytes``.

        This is the unit the serving engine's KV-capacity admission controller
        accounts in: admitting a request reserves ``prefill_len + decode_len``
        token positions against this limit.
        """
        if budget_bytes < 0:
            raise ValueError("budget cannot be negative")
        per_token = self.bytes_per_token_per_node()
        if per_token <= 0:
            return 0
        return int(budget_bytes // per_token)


class KVCache:
    """Functional per-layer KV cache holding float or int8 arrays.

    Shapes follow the usual ``[num_heads, seq, head_dim]`` convention.  The
    cache can be head-sliced to emulate the per-node partition, and the
    functional multi-node tests check that concatenating per-node caches
    reproduces the single-node cache exactly.
    """

    def __init__(self, num_layers: int, num_heads: int, head_dim: int,
                 max_seq_len: int, dtype: type = np.float64) -> None:
        if min(num_layers, num_heads, head_dim, max_seq_len) <= 0:
            raise ValueError("all dimensions must be positive")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        self.dtype = dtype
        self._keys = np.zeros((num_layers, num_heads, max_seq_len, head_dim), dtype=dtype)
        self._values = np.zeros((num_layers, num_heads, max_seq_len, head_dim), dtype=dtype)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def length(self) -> int:
        return self._length

    def reset(self) -> None:
        self._keys[:] = 0
        self._values[:] = 0
        self._length = 0

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append K/V for one new position in one layer.

        Shapes: ``[num_heads, head_dim]``.  The caller appends layer by layer
        for the same position; :meth:`advance` then bumps the shared length.
        """
        keys = np.asarray(keys, dtype=self.dtype)
        values = np.asarray(values, dtype=self.dtype)
        expected = (self.num_heads, self.head_dim)
        if keys.shape != expected or values.shape != expected:
            raise ValueError(
                f"expected K/V of shape {expected}, got {keys.shape} / {values.shape}")
        if self._length >= self.max_seq_len:
            raise OverflowError("KV cache is full")
        self._keys[layer, :, self._length, :] = keys
        self._values[layer, :, self._length, :] = values

    def append_block(self, layer: int, keys: np.ndarray, values: np.ndarray,
                     start: Optional[int] = None) -> None:
        """Append K/V for a block of positions (prefill).  Shapes:
        ``[num_heads, block, head_dim]``."""
        keys = np.asarray(keys, dtype=self.dtype)
        values = np.asarray(values, dtype=self.dtype)
        if keys.ndim != 3 or keys.shape[0] != self.num_heads or keys.shape[2] != self.head_dim:
            raise ValueError(f"bad key block shape {keys.shape}")
        if values.shape != keys.shape:
            raise ValueError("key and value blocks must have the same shape")
        block = keys.shape[1]
        offset = self._length if start is None else start
        if offset + block > self.max_seq_len:
            raise OverflowError("KV cache block append overflows the cache")
        self._keys[layer, :, offset:offset + block, :] = keys
        self._values[layer, :, offset:offset + block, :] = values

    def advance(self, count: int = 1) -> None:
        """Advance the cached-length pointer after all layers appended."""
        if count < 0:
            raise ValueError("negative advance")
        if self._length + count > self.max_seq_len:
            raise OverflowError("KV cache advance overflows the cache")
        self._length += count

    def keys(self, layer: int, heads: Optional[List[int]] = None) -> np.ndarray:
        """Cached keys for a layer: ``[num_heads(or len(heads)), length, head_dim]``."""
        data = self._keys[layer, :, : self._length, :]
        if heads is not None:
            data = data[heads]
        return data

    def values(self, layer: int, heads: Optional[List[int]] = None) -> np.ndarray:
        data = self._values[layer, :, : self._length, :]
        if heads is not None:
            data = data[heads]
        return data

    def head_slice(self, heads: List[int]) -> "KVCache":
        """Return a new cache containing only the given heads (the per-node
        partition used under model parallelism)."""
        sliced = KVCache(self.num_layers, len(heads), self.head_dim,
                         self.max_seq_len, dtype=self.dtype)
        sliced._keys = self._keys[:, heads, :, :].copy()
        sliced._values = self._values[:, heads, :, :].copy()
        sliced._length = self._length
        return sliced

    def memory_bytes(self, bytes_per_element: int = 1) -> Bytes:
        """Footprint of the *used* portion of the cache."""
        return int(2 * self.num_layers * self.num_heads * self._length
                   * self.head_dim * bytes_per_element)
