"""Paged KV-cache block manager with a modeled host-memory swap tier.

PR 1's :class:`~repro.serving.schedulers.KVAdmissionController` admits a
request only when its *worst-case* context (``prefill_len + decode_len``
cached positions) fits the free KV capacity.  That reservation is safe but
pessimistic: a request that will eventually hold 500 positions occupies all
500 from its first prefill chunk, so steady-state batch occupancy is capped
well below what the HBM actually holds at any instant.

Production engines (vLLM, rtp-llm) instead allocate the cache in fixed-size
**token blocks** on demand: a request holds only the blocks covering the
positions it has actually cached, growing block-by-block as decode proceeds.
This module models that scheme on top of the head-wise
:class:`~repro.memory.kv_cache.KVCacheLayout`:

* a **block** spans ``block_size_tokens`` cached positions; on every node it
  occupies ``block_size_tokens * layout.bytes_per_token_per_node()`` bytes
  (each node stores the K/V vectors of the heads it owns for those
  positions, so one logical block is physically striped across nodes);
* every request has a **block table** mapping it to the device blocks it
  holds plus the number of positions actually cached (the last block is
  usually partially filled — *internal fragmentation*);
* when the device pool runs dry, a victim's blocks can be **swapped** to a
  modeled host-memory tier over PCIe
  (:func:`PagedKVManager.swap_transfer_s` prices the transfer with the same
  :class:`~repro.network.link.LinkConfig` cycle model the ring links use)
  and later swapped back in, resuming the request without recomputation.

Units: capacities are counted in blocks and cached token positions per node
(the most-loaded node under uneven head splits), byte figures are per-node
unless suffixed ``_total``, and all transfer times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.memory.hbm import kv_budget_bytes_per_node
from repro.memory.kv_cache import KVCacheLayout
from repro.network.link import LinkConfig

#: Effective bandwidth of the host link used for KV swaps.  The Alveo U50 is
#: a PCIe Gen3 x16 card: 15.754 GB/s raw, derated to ~12 GB/s sustained DMA
#: throughput (the usual fraction achieved by streaming DMA engines).
PCIE_SWAP_BANDWIDTH_BYTES_PER_S = 12.0e9

#: Default host link: PCIe bandwidth, kernel clock for cycle accounting, and
#: a generous per-message latency (descriptor setup + doorbell + interrupt).
DEFAULT_HOST_LINK = LinkConfig(
    bandwidth_bytes_per_s=PCIE_SWAP_BANDWIDTH_BYTES_PER_S,
    clock_hz=285.0e6,
    hop_latency_cycles=2048,
    datapack_bytes=64,
)


@dataclass
class BlockTable:
    """Per-request block accounting.

    Attributes
    ----------
    request_id:
        The owning request.
    device_blocks:
        Ids of the fixed-size blocks this request holds in device HBM.
    host_blocks:
        Number of blocks currently parked in the host-memory swap tier
        (host capacity is modeled as unbounded, so ids are not tracked).
    cached_tokens:
        Cached positions the table covers (≤ ``len(device_blocks) *
        block_size``; the shortfall in the last block is internal
        fragmentation).
    """

    request_id: int
    device_blocks: List[int] = field(default_factory=list)
    host_blocks: int = 0
    cached_tokens: int = 0

    @property
    def is_swapped(self) -> bool:
        return self.host_blocks > 0


class PagedKVManager:
    """Fixed-size-block KV allocator for one serving instance.

    Parameters
    ----------
    layout:
        Head-wise cache layout (gives bytes per cached token per node).
    block_size_tokens:
        Cached positions per block.  Smaller blocks waste less capacity on
        partially-filled tails but mean more allocation churn; 16–32 is the
        production sweet spot.
    budget_bytes:
        Per-node HBM byte budget for the cache; defaults to the layout's
        full-sequence footprint (same default as
        :class:`~repro.serving.schedulers.KVAdmissionController`).
    host_link:
        :class:`~repro.network.link.LinkConfig` pricing block swaps over
        PCIe; ``None`` uses :data:`DEFAULT_HOST_LINK`.
    nodes_per_card:
        Accelerator nodes sharing one card (and therefore one PCIe link);
        swaps of a multi-card deployment proceed card-parallel.
    """

    def __init__(self, layout: KVCacheLayout, block_size_tokens: int = 16,
                 budget_bytes: Optional[int] = None,
                 host_link: Optional[LinkConfig] = None,
                 nodes_per_card: int = 2) -> None:
        if block_size_tokens <= 0:
            raise ValueError("block_size_tokens must be positive")
        if nodes_per_card <= 0:
            raise ValueError("nodes_per_card must be positive")
        self.layout = layout
        self.block_size_tokens = int(block_size_tokens)
        if budget_bytes is None:
            budget_bytes = layout.capacity_bytes_per_node()
        if budget_bytes < 0:
            raise ValueError("budget cannot be negative")
        self.budget_bytes = int(budget_bytes)
        self.host_link = host_link or DEFAULT_HOST_LINK
        self.nodes_per_card = int(nodes_per_card)
        capacity_tokens = layout.max_cached_tokens(self.budget_bytes)
        #: Total device blocks in the pool (per node; every node holds its
        #: head-share of each block, so the count is uniform across nodes).
        self.total_blocks = capacity_tokens // self.block_size_tokens
        self._free: List[int] = list(range(self.total_blocks - 1, -1, -1))
        self._tables: Dict[int, BlockTable] = {}
        # lifetime counters (monotonic; survive free())
        self.peak_used_blocks = 0
        self.swap_out_count = 0
        self.swap_in_count = 0
        self.swapped_bytes_total = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def for_system(system, block_size_tokens: int = 16,
                   budget_bytes: Optional[int] = None,
                   kv_bytes_per_element: int = 1,
                   host_link: Optional[LinkConfig] = None) -> "PagedKVManager":
        """Build a manager for a :class:`~repro.core.multi_node.LoopLynxSystem`.

        ``budget_bytes`` defaults to the node's HBM share net of resident
        weights (:func:`~repro.memory.hbm.kv_budget_bytes_per_node`), the
        same default the reservation controller uses — so reserve vs. paged
        comparisons run against identical capacity.
        """
        layout = KVCacheLayout.for_model(
            system.config.model, num_nodes=system.num_nodes,
            bytes_per_element=kv_bytes_per_element)
        if budget_bytes is None:
            budget_bytes = kv_budget_bytes_per_node(
                system.node.weight_bytes_per_token(),
                nodes_per_card=system.config.nodes_per_card)
        return PagedKVManager(layout, block_size_tokens=block_size_tokens,
                              budget_bytes=budget_bytes, host_link=host_link,
                              nodes_per_card=system.config.nodes_per_card)

    def clone_empty(self) -> "PagedKVManager":
        """A fresh manager with the same configuration and no allocations
        (the engine gives each instance, and each run, its own pool)."""
        return PagedKVManager(self.layout, self.block_size_tokens,
                              self.budget_bytes, self.host_link,
                              self.nodes_per_card)

    # ------------------------------------------------------------------
    # sizes and occupancy
    # ------------------------------------------------------------------
    @property
    def bytes_per_block_per_node(self) -> int:
        """HBM bytes one block occupies on each node (its head-share of
        ``block_size_tokens`` cached positions)."""
        return self.block_size_tokens * self.layout.bytes_per_token_per_node()

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - len(self._free)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def occupancy_fraction(self) -> float:
        """Fraction of the device block pool currently allocated."""
        if self.total_blocks == 0:
            return 0.0
        return self.used_blocks / self.total_blocks

    @property
    def internal_fragmentation_fraction(self) -> float:
        """Fraction of allocated block capacity not covering cached tokens
        (partially-filled tail blocks of device-resident requests)."""
        allocated_tokens = sum(
            len(t.device_blocks) for t in self._tables.values()
        ) * self.block_size_tokens
        if allocated_tokens == 0:
            return 0.0
        cached = sum(t.cached_tokens for t in self._tables.values()
                     if not t.is_swapped)
        return 1.0 - cached / allocated_tokens

    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks covering ``num_tokens`` cached positions."""
        if num_tokens < 0:
            raise ValueError("negative token count")
        return -(-num_tokens // self.block_size_tokens)

    def holds(self, request_id: int) -> bool:
        return request_id in self._tables

    def table(self, request_id: int) -> BlockTable:
        return self._tables[request_id]

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def blocks_missing(self, request_id: int, target_tokens: int) -> int:
        """Device blocks ``request_id`` still lacks to cover
        ``target_tokens`` cached positions (0 when already covered).  This
        is the single source of truth for the engine's admission gate and
        its eviction what-if check."""
        held = len(self._tables[request_id].device_blocks) \
            if request_id in self._tables else 0
        return max(0, self.blocks_needed(target_tokens) - held)

    def can_allocate(self, request_id: int, target_tokens: int) -> bool:
        """Would :meth:`allocate` for ``target_tokens`` positions succeed?"""
        return self.blocks_missing(request_id, target_tokens) <= self.free_blocks

    def allocate(self, request_id: int, target_tokens: int) -> bool:
        """Grow ``request_id``'s block table to cover ``target_tokens``
        cached positions; allocation is all-or-nothing (no partial grow).

        Returns False without side effects when the free pool cannot supply
        the missing blocks — the caller must preempt someone and retry.
        """
        table = self._tables.setdefault(request_id, BlockTable(request_id))
        if table.is_swapped:
            raise RuntimeError(
                f"request {request_id} is swapped out; swap_in() it first")
        missing = self.blocks_needed(target_tokens) - len(table.device_blocks)
        if missing > len(self._free):
            return False
        for _ in range(max(missing, 0)):
            table.device_blocks.append(self._free.pop())
        table.cached_tokens = max(table.cached_tokens, target_tokens)
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        return True

    def free(self, request_id: int) -> int:
        """Release every block (device and host) a request holds; returns
        the number of device blocks returned to the pool."""
        table = self._tables.pop(request_id, None)
        if table is None:
            return 0
        released = len(table.device_blocks)
        self._free.extend(reversed(table.device_blocks))
        return released

    # ------------------------------------------------------------------
    # swap tier
    # ------------------------------------------------------------------
    def swap_out(self, request_id: int) -> Tuple[int, int]:
        """Move a request's device blocks to the host tier.

        Returns ``(num_blocks, bytes_total)`` where ``bytes_total`` is the
        PCIe traffic summed over all nodes.  The request keeps its cached
        token count, so it can resume without recomputation after
        :meth:`swap_in`.
        """
        table = self._tables[request_id]
        if table.is_swapped:
            raise RuntimeError(f"request {request_id} is already swapped out")
        num_blocks = len(table.device_blocks)
        self._free.extend(reversed(table.device_blocks))
        table.device_blocks = []
        table.host_blocks = num_blocks
        bytes_total = self._swap_bytes_total(num_blocks)
        self.swap_out_count += 1
        self.swapped_bytes_total += bytes_total
        return num_blocks, bytes_total

    def can_swap_in(self, request_id: int) -> bool:
        table = self._tables.get(request_id)
        if table is None or not table.is_swapped:
            return False
        return table.host_blocks <= self.free_blocks

    def swap_in(self, request_id: int) -> Tuple[int, int]:
        """Bring a swapped request's blocks back to the device.

        Returns ``(num_blocks, bytes_total)``; raises when the free pool is
        too small (check :meth:`can_swap_in` first).
        """
        table = self._tables[request_id]
        if not table.is_swapped:
            raise RuntimeError(f"request {request_id} is not swapped out")
        if table.host_blocks > len(self._free):
            raise RuntimeError(
                f"cannot swap request {request_id} in: needs "
                f"{table.host_blocks} blocks, {len(self._free)} free")
        num_blocks = table.host_blocks
        for _ in range(num_blocks):
            table.device_blocks.append(self._free.pop())
        table.host_blocks = 0
        bytes_total = self._swap_bytes_total(num_blocks)
        self.swap_in_count += 1
        self.swapped_bytes_total += bytes_total
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        return num_blocks, bytes_total

    # ------------------------------------------------------------------
    # prefill→decode handoff (disaggregated serving)
    # ------------------------------------------------------------------
    def export_handoff(self, request_id: int) -> Tuple[int, int, int]:
        """Release a finished prompt's blocks for transfer to another
        instance (a prefill→decode handoff).

        The export *is* a swap-out — the blocks leave the device over the
        same PCIe link, so it reuses :meth:`swap_out` and its counters —
        except the table is dropped afterwards: the KV now belongs to the
        importing instance (:meth:`import_handoff`), not to this pool's
        host tier.  Returns ``(num_blocks, cached_tokens, bytes_total)``.
        """
        num_blocks, bytes_total = self.swap_out(request_id)
        table = self._tables.pop(request_id)
        return num_blocks, table.cached_tokens, bytes_total

    def import_handoff(self, request_id: int, cached_tokens: int) -> int:
        """Register a handed-off request's KV in this pool's host tier.

        The blocks arrive swapped (host-resident): the importing instance
        pays its own swap-in — device allocation, PCIe transfer, counters —
        when it admits the request, exactly like resuming a preempted
        victim.  The block count is recomputed for *this* layout (a 4-node
        prefiller and a 1-node decoder hold the same cached positions in
        the same number of same-token-size blocks, but per-node byte shares
        differ).  Returns the host block count.
        """
        if cached_tokens <= 0:
            raise ValueError("handoff must carry at least one cached token")
        if request_id in self._tables:
            raise RuntimeError(
                f"request {request_id} already holds blocks here; a handoff "
                "may only land on an instance that does not hold it")
        blocks = self.blocks_needed(cached_tokens)
        self._tables[request_id] = BlockTable(
            request_id, host_blocks=blocks, cached_tokens=cached_tokens)
        return blocks

    def _swap_bytes_total(self, num_blocks: int) -> int:
        """PCIe bytes to move ``num_blocks`` blocks, summed over all nodes
        (each node transfers its own head-share)."""
        return num_blocks * self.bytes_per_block_per_node * self.layout.num_nodes

    def swap_transfer_s(self, num_blocks: int) -> float:
        """Seconds to move ``num_blocks`` blocks between device and host.

        Nodes on the same card share one PCIe link; cards transfer in
        parallel, so the makespan is the per-card share priced by the host
        :class:`~repro.network.link.LinkConfig` cycle model.
        """
        if num_blocks < 0:
            raise ValueError("negative block count")
        if num_blocks == 0:
            return 0.0
        bytes_total = self._swap_bytes_total(num_blocks)
        num_cards = -(-self.layout.num_nodes // self.nodes_per_card)
        per_card = -(-bytes_total // num_cards)
        stream_cycles = per_card / self.host_link.bytes_per_cycle
        cycles = stream_cycles + self.host_link.hop_latency_cycles
        return cycles / self.host_link.clock_hz

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def max_request_tokens(self, request) -> int:
        """Cached positions a request occupies at its maximum context."""
        return min(request.prefill_len + request.decode_len,
                   self.layout.max_seq_len)

    def validate(self, requests: Iterable) -> None:
        """Reject traces containing a request whose maximum context cannot
        fit the device pool even running alone (it could never finish)."""
        for request in requests:
            needed = self.blocks_needed(self.max_request_tokens(request))
            if needed > self.total_blocks:
                raise ValueError(
                    f"request {request.request_id} needs {needed} KV blocks "
                    f"at full context but the pool only has "
                    f"{self.total_blocks}")
