"""Paged KV-cache block manager with a modeled host-memory swap tier.

PR 1's :class:`~repro.serving.schedulers.KVAdmissionController` admits a
request only when its *worst-case* context (``prefill_len + decode_len``
cached positions) fits the free KV capacity.  That reservation is safe but
pessimistic: a request that will eventually hold 500 positions occupies all
500 from its first prefill chunk, so steady-state batch occupancy is capped
well below what the HBM actually holds at any instant.

Production engines (vLLM, rtp-llm) instead allocate the cache in fixed-size
**token blocks** on demand: a request holds only the blocks covering the
positions it has actually cached, growing block-by-block as decode proceeds.
This module models that scheme on top of the head-wise
:class:`~repro.memory.kv_cache.KVCacheLayout`:

* a **block** spans ``block_size_tokens`` cached positions; on every node it
  occupies ``block_size_tokens * layout.bytes_per_token_per_node()`` bytes
  (each node stores the K/V vectors of the heads it owns for those
  positions, so one logical block is physically striped across nodes);
* every request has a **block table** mapping it to the device blocks it
  holds plus the number of positions actually cached (the last block is
  usually partially filled — *internal fragmentation*);
* when the device pool runs dry, a victim's blocks can be **swapped** to a
  modeled host-memory tier over PCIe
  (:func:`PagedKVManager.swap_transfer_s` prices the transfer with the same
  :class:`~repro.network.link.LinkConfig` cycle model the ring links use)
  and later swapped back in, resuming the request without recomputation;
* with ``prefix_sharing=True`` the pool additionally keeps a **prefix
  index**: every full block of a *completed* prompt is registered under a
  chain hash (``hash((parent_hash, token_chunk))`` over the request's
  ``prompt_token_ids``), later requests whose prompt matches reuse the
  physical blocks with a per-block **refcount**, the final partially-reused
  block is **copied on write** before the matching request recomputes its
  last prompt token, and blocks whose refcount drops to zero linger in an
  LRU *reclaimable* tier (still indexed, still device-resident) until pool
  pressure recycles them — so a finished conversation turn can seed the
  next turn's arrival, vLLM / rtp-llm flexlb style.

Units: capacities are counted in blocks and cached token positions per node
(the most-loaded node under uneven head splits), byte figures are per-node
unless suffixed ``_total``, and all transfer times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.memory.hbm import kv_budget_bytes_per_node
from repro.memory.kv_cache import KVCacheLayout
from repro.network.link import LinkConfig
from repro.units import Blocks, Bytes, Seconds, Tokens

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.core.multi_node import LoopLynxSystem
    from repro.workloads.traces import Request

#: Effective bandwidth of the host link used for KV swaps.  The Alveo U50 is
#: a PCIe Gen3 x16 card: 15.754 GB/s raw, derated to ~12 GB/s sustained DMA
#: throughput (the usual fraction achieved by streaming DMA engines).
PCIE_SWAP_BANDWIDTH_BYTES_PER_S = 12.0e9

#: Default host link: PCIe bandwidth, kernel clock for cycle accounting, and
#: a generous per-message latency (descriptor setup + doorbell + interrupt).
DEFAULT_HOST_LINK = LinkConfig(
    bandwidth_bytes_per_s=PCIE_SWAP_BANDWIDTH_BYTES_PER_S,
    clock_hz=285.0e6,
    hop_latency_cycles=2048,
    datapack_bytes=64,
)

#: Seed of the per-block chain hash.  The chain folds each full block's
#: token-id chunk over its parent's hash, so equal hashes imply equal
#: *whole prefixes*, not just equal blocks.  ``hash`` over int tuples is
#: deterministic across processes (only str/bytes hashing is salted), so
#: shared-mode runs stay bit-reproducible.
PREFIX_HASH_SEED = 0x9E3779B9


@dataclass
class BlockTable:
    """Per-request block accounting.

    Attributes
    ----------
    request_id:
        The owning request.
    device_blocks:
        Ids of the fixed-size blocks this request holds in device HBM.
    host_blocks:
        Number of blocks currently parked in the host-memory swap tier
        (host capacity is modeled as unbounded, so ids are not tracked).
    cached_tokens:
        Cached positions the table covers (≤ ``len(device_blocks) *
        block_size``; the shortfall in the last block is internal
        fragmentation).
    """

    request_id: int
    device_blocks: List[Blocks] = field(default_factory=list)
    host_blocks: Blocks = 0
    cached_tokens: Tokens = 0

    @property
    def is_swapped(self) -> bool:
        return self.host_blocks > 0


class PagedKVManager:
    """Fixed-size-block KV allocator for one serving instance.

    Parameters
    ----------
    layout:
        Head-wise cache layout (gives bytes per cached token per node).
    block_size_tokens:
        Cached positions per block.  Smaller blocks waste less capacity on
        partially-filled tails but mean more allocation churn; 16–32 is the
        production sweet spot.
    budget_bytes:
        Per-node HBM byte budget for the cache; defaults to the layout's
        full-sequence footprint (same default as
        :class:`~repro.serving.schedulers.KVAdmissionController`).
    host_link:
        :class:`~repro.network.link.LinkConfig` pricing block swaps over
        PCIe; ``None`` uses :data:`DEFAULT_HOST_LINK`.
    nodes_per_card:
        Accelerator nodes sharing one card (and therefore one PCIe link);
        swaps of a multi-card deployment proceed card-parallel.
    prefix_sharing:
        Enable the hash-indexed prefix cache (OFF by default — with the
        flag off every code path is byte-identical to the private-blocks
        manager, which the golden-timestamp pins rely on).
    """

    def __init__(self, layout: KVCacheLayout, block_size_tokens: int = 16,
                 budget_bytes: Optional[int] = None,
                 host_link: Optional[LinkConfig] = None,
                 nodes_per_card: int = 2,
                 prefix_sharing: bool = False) -> None:
        if block_size_tokens <= 0:
            raise ValueError("block_size_tokens must be positive")
        if nodes_per_card <= 0:
            raise ValueError("nodes_per_card must be positive")
        self.layout = layout
        self.block_size_tokens = int(block_size_tokens)
        if budget_bytes is None:
            budget_bytes = layout.capacity_bytes_per_node()
        if budget_bytes < 0:
            raise ValueError("budget cannot be negative")
        self.budget_bytes = int(budget_bytes)
        self.host_link = host_link or DEFAULT_HOST_LINK
        self.nodes_per_card = int(nodes_per_card)
        self.prefix_sharing = bool(prefix_sharing)
        capacity_tokens = layout.max_cached_tokens(self.budget_bytes)
        #: Total device blocks in the pool (per node; every node holds its
        #: head-share of each block, so the count is uniform across nodes).
        self.total_blocks = capacity_tokens // self.block_size_tokens
        self._free: List[int] = list(range(self.total_blocks - 1, -1, -1))
        self._tables: Dict[int, BlockTable] = {}
        # prefix-sharing state (all empty and untouched when the flag is off)
        self._ref: Dict[int, int] = {}           # block id -> live refcount
        self._prefix_index: Dict[int, int] = {}  # chain hash -> block id
        self._block_hash: Dict[int, int] = {}    # registered block -> hash
        #: ref==0 registered blocks, insertion order == LRU reclaim order
        self._reclaimable: Dict[int, None] = {}
        self._multi_ref = 0                      # blocks with refcount >= 2
        # lifetime counters (monotonic; survive free())
        self.peak_used_blocks = 0
        self.swap_out_count = 0
        self.swap_in_count = 0
        self.swapped_bytes_total = 0
        self.prefix_hits = 0
        self.prefix_tokens_reused = 0
        self.cow_copies = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def for_system(system: "LoopLynxSystem", block_size_tokens: Tokens = 16,
                   budget_bytes: Optional[Bytes] = None,
                   kv_bytes_per_element: int = 1,
                   host_link: Optional[LinkConfig] = None,
                   prefix_sharing: bool = False) -> "PagedKVManager":
        """Build a manager for a :class:`~repro.core.multi_node.LoopLynxSystem`.

        ``budget_bytes`` defaults to the node's HBM share net of resident
        weights (:func:`~repro.memory.hbm.kv_budget_bytes_per_node`), the
        same default the reservation controller uses — so reserve vs. paged
        comparisons run against identical capacity.
        """
        layout = KVCacheLayout.for_model(
            system.config.model, num_nodes=system.num_nodes,
            bytes_per_element=kv_bytes_per_element)
        if budget_bytes is None:
            budget_bytes = kv_budget_bytes_per_node(
                system.node.weight_bytes_per_token(),
                nodes_per_card=system.config.nodes_per_card)
        return PagedKVManager(layout, block_size_tokens=block_size_tokens,
                              budget_bytes=budget_bytes, host_link=host_link,
                              nodes_per_card=system.config.nodes_per_card,
                              prefix_sharing=prefix_sharing)

    def clone_empty(self) -> "PagedKVManager":
        """A fresh manager with the same configuration and no allocations
        (the engine gives each instance, and each run, its own pool)."""
        return PagedKVManager(self.layout, self.block_size_tokens,
                              self.budget_bytes, self.host_link,
                              self.nodes_per_card, self.prefix_sharing)

    # ------------------------------------------------------------------
    # sizes and occupancy
    # ------------------------------------------------------------------
    @property
    def bytes_per_block_per_node(self) -> int:
        """HBM bytes one block occupies on each node (its head-share of
        ``block_size_tokens`` cached positions)."""
        return self.block_size_tokens * self.layout.bytes_per_token_per_node()

    @property
    def used_blocks(self) -> Blocks:
        """Blocks referenced by at least one live block table (excludes the
        reclaimable prefix-cache tier, which is free capacity on demand)."""
        return self.total_blocks - self.free_blocks

    @property
    def free_blocks(self) -> Blocks:
        """Blocks an allocation could take right now: the free list plus
        ref==0 cached prefix blocks (reclaimed LRU-first under pressure)."""
        return len(self._free) + len(self._reclaimable)

    @property
    def cached_blocks(self) -> Blocks:
        """Device-resident prefix-cache blocks no request references."""
        return len(self._reclaimable)

    @property
    def shared_blocks(self) -> Blocks:
        """Device blocks currently referenced by two or more requests."""
        return self._multi_ref

    @property
    def shared_block_fraction(self) -> float:
        """Fraction of the pool serving the prefix cache: blocks referenced
        by multiple requests plus idle cached blocks awaiting reuse."""
        if self.total_blocks == 0:
            return 0.0
        return (self._multi_ref + len(self._reclaimable)) / self.total_blocks

    @property
    def occupancy_fraction(self) -> float:
        """Fraction of the device block pool currently allocated."""
        if self.total_blocks == 0:
            return 0.0
        return self.used_blocks / self.total_blocks

    @property
    def internal_fragmentation_fraction(self) -> float:
        """Fraction of allocated block capacity not covering cached tokens
        (partially-filled tail blocks of device-resident requests)."""
        allocated_tokens = sum(
            len(t.device_blocks) for t in self._tables.values()
        ) * self.block_size_tokens
        if allocated_tokens == 0:
            return 0.0
        cached = sum(t.cached_tokens for t in self._tables.values()
                     if not t.is_swapped)
        return 1.0 - cached / allocated_tokens

    def blocks_needed(self, num_tokens: Tokens) -> int:
        """Blocks covering ``num_tokens`` cached positions."""
        if num_tokens < 0:
            raise ValueError("negative token count")
        return -(-num_tokens // self.block_size_tokens)

    def holds(self, request_id: int) -> bool:
        return request_id in self._tables

    def table(self, request_id: int) -> BlockTable:
        return self._tables[request_id]

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def blocks_missing(self, request_id: int, target_tokens: Tokens) -> int:
        """Device blocks ``request_id`` still lacks to cover
        ``target_tokens`` cached positions (0 when already covered).  This
        is the single source of truth for the engine's admission gate and
        its eviction what-if check."""
        held = len(self._tables[request_id].device_blocks) \
            if request_id in self._tables else 0
        return max(0, self.blocks_needed(target_tokens) - held)

    def can_allocate(self, request_id: int, target_tokens: Tokens) -> bool:
        """Would :meth:`allocate` for ``target_tokens`` positions succeed?"""
        return self.blocks_missing(request_id, target_tokens) <= self.free_blocks

    def allocate(self, request_id: int, target_tokens: Tokens) -> bool:
        """Grow ``request_id``'s block table to cover ``target_tokens``
        cached positions; allocation is all-or-nothing (no partial grow).

        Returns False without side effects when the free pool cannot supply
        the missing blocks — the caller must preempt someone and retry.
        """
        table = self._tables.get(request_id)
        if table is not None and table.is_swapped:
            raise RuntimeError(
                f"request {request_id} is swapped out; swap_in() it first")
        held = 0 if table is None else len(table.device_blocks)
        missing = self.blocks_needed(target_tokens) - held
        if missing > self.free_blocks:
            return False
        if table is None:
            table = self._tables[request_id] = BlockTable(request_id)
        if self.prefix_sharing:
            for _ in range(max(missing, 0)):
                block = self._take_block()
                self._ref[block] = 1
                table.device_blocks.append(block)
        else:
            for _ in range(max(missing, 0)):
                table.device_blocks.append(self._free.pop())
        table.cached_tokens = max(table.cached_tokens, target_tokens)
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        return True

    def free(self, request_id: int) -> int:
        """Release every block (device and host) a request holds; returns
        the number of device blocks this request held exclusively (shared
        prefix blocks merely drop a reference — blocks other requests still
        hold, and registered blocks whose refcount hits zero, stay
        device-resident)."""
        table = self._tables.pop(request_id, None)
        if table is None:
            return 0
        if not self.prefix_sharing:
            released = len(table.device_blocks)
            self._free.extend(reversed(table.device_blocks))
            return released
        released = 0
        for block in table.device_blocks:
            if self._ref[block] == 1:
                released += 1
            self._deref(block)
        return released

    # ------------------------------------------------------------------
    # prefix sharing (hash-indexed block reuse with copy-on-write)
    # ------------------------------------------------------------------
    def _take_block(self) -> int:
        """Pop a physical block: the free list first, then the oldest
        reclaimable cached block (which is deregistered from the index)."""
        if self._free:
            return self._free.pop()
        block = next(iter(self._reclaimable))
        del self._reclaimable[block]
        chain_hash = self._block_hash.pop(block)
        del self._prefix_index[chain_hash]
        return block

    def _addref(self, block: int) -> None:
        refs = self._ref.get(block, 0) + 1
        self._ref[block] = refs
        if refs == 2:
            self._multi_ref += 1
        elif refs == 1:
            self._reclaimable.pop(block, None)

    def _deref(self, block: int) -> None:
        refs = self._ref[block] - 1
        if refs == 0:
            del self._ref[block]
            if block in self._block_hash:
                self._reclaimable[block] = None
            else:
                self._free.append(block)
        else:
            self._ref[block] = refs
            if refs == 1:
                self._multi_ref -= 1

    def _match_chain(self, token_ids: Sequence[int]) -> List[int]:
        """Block ids of the longest indexed chain-hash prefix of
        ``token_ids`` (full blocks only — a partial tail never matches)."""
        matched: List[int] = []
        chain = PREFIX_HASH_SEED
        size = self.block_size_tokens
        index = self._prefix_index
        for i in range(len(token_ids) // size):
            chain = hash((chain, tuple(token_ids[i * size:(i + 1) * size])))
            block = index.get(chain)
            if block is None:
                break
            matched.append(block)
        return matched

    def match_prefix_tokens(self, token_ids: Sequence[int]) -> Tokens:
        """Prompt positions a request with this token-id prefix could reuse
        from the pool right now (read-only; the cache-aware router's score).

        Always leaves at least one prompt token to recompute — a fully
        matched prompt still needs a prefill step to produce its first
        logits, exactly like vLLM's recompute-the-last-block rule.
        """
        if not self.prefix_sharing or not token_ids:
            return 0
        matched = len(self._match_chain(token_ids))
        if not matched:
            return 0
        return min(matched * self.block_size_tokens, len(token_ids) - 1)

    def allocate_prefix(self, request_id: int, target_tokens: Tokens,
                        token_ids: Sequence[int]) -> Optional[int]:
        """First allocation for a request carrying prompt token ids: reuse
        every indexed prefix block (bumping refcounts), copy-on-write the
        final matched block when the request must rewrite its last prompt
        token into a block someone else holds, and allocate fresh blocks up
        to ``target_tokens``.

        Returns the number of reused prompt positions, or ``None`` without
        side effects when the pool cannot supply the fresh blocks (same
        contract as :meth:`allocate` returning False).
        """
        if not self.prefix_sharing:
            return 0 if self.allocate(request_id, target_tokens) else None
        table = self._tables.get(request_id)
        if table is not None and (table.device_blocks or table.is_swapped
                                  or table.cached_tokens):
            raise RuntimeError(
                f"request {request_id} already holds KV here; prefix "
                "allocation only applies to a fresh table")
        matched_ids = self._match_chain(token_ids) if token_ids else []
        matched_tokens = 0
        if matched_ids:
            matched_tokens = min(len(matched_ids) * self.block_size_tokens,
                                 len(token_ids) - 1)
        # COW: the last matched block is only partially reused (the final
        # prompt token will be recomputed and rewritten); if another request
        # also references it, the write must go to a private copy.
        cow = bool(matched_ids) \
            and matched_tokens < len(matched_ids) * self.block_size_tokens \
            and self._ref.get(matched_ids[-1], 0) >= 1
        fresh = max(0, self.blocks_needed(target_tokens) - len(matched_ids))
        takes = fresh + (1 if cow else 0)
        resurrected = sum(1 for b in matched_ids if b in self._reclaimable)
        if takes > self.free_blocks - resurrected:
            return None
        shared = matched_ids[:-1] if cow else matched_ids
        for block in shared:
            self._addref(block)
        blocks = list(shared)
        if cow:
            copy = self._take_block()
            self._ref[copy] = 1
            blocks.append(copy)
            self.cow_copies += 1
        for _ in range(fresh):
            block = self._take_block()
            self._ref[block] = 1
            blocks.append(block)
        if table is None:
            table = self._tables.setdefault(request_id,
                                            BlockTable(request_id))
        table.device_blocks = blocks
        table.cached_tokens = max(target_tokens, matched_tokens)
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        if matched_tokens > 0:
            self.prefix_hits += 1
            self.prefix_tokens_reused += matched_tokens
        return matched_tokens

    def register_prefix(self, request_id: int,
                        token_ids: Sequence[int]) -> int:
        """Index the full prompt blocks of a *completed* prefill so later
        matching prompts can reuse them; returns the number of newly
        registered blocks.  Idempotent: blocks whose chain hash is already
        indexed (including blocks this request itself reused) are skipped.
        """
        if not self.prefix_sharing or not token_ids:
            return 0
        table = self._tables.get(request_id)
        if table is None or table.is_swapped:
            return 0
        size = self.block_size_tokens
        full_blocks = min(len(token_ids) // size, len(table.device_blocks))
        chain = PREFIX_HASH_SEED
        registered = 0
        for i in range(full_blocks):
            chain = hash((chain, tuple(token_ids[i * size:(i + 1) * size])))
            if chain in self._prefix_index:
                continue
            block = table.device_blocks[i]
            if block in self._block_hash:
                continue
            self._prefix_index[chain] = block
            self._block_hash[block] = chain
            registered += 1
        return registered

    # ------------------------------------------------------------------
    # swap tier
    # ------------------------------------------------------------------
    def swap_out(self, request_id: int) -> Tuple[int, int]:
        """Move a request's device blocks to the host tier.

        Returns ``(num_blocks, bytes_total)`` where ``bytes_total`` is the
        PCIe traffic summed over all nodes.  The request keeps its cached
        token count, so it can resume without recomputation after
        :meth:`swap_in`.
        """
        table = self._tables[request_id]
        if table.is_swapped:
            raise RuntimeError(f"request {request_id} is already swapped out")
        num_blocks = len(table.device_blocks)
        if self.prefix_sharing:
            # The host snapshot is private and complete (full PCIe bytes);
            # device-side, shared prefix blocks just drop this request's
            # reference and stay resident for the other holders / the
            # reclaimable cache.
            for block in table.device_blocks:
                self._deref(block)
        else:
            self._free.extend(reversed(table.device_blocks))
        table.device_blocks = []
        table.host_blocks = num_blocks
        bytes_total = self._swap_bytes_total(num_blocks)
        self.swap_out_count += 1
        self.swapped_bytes_total += bytes_total
        return num_blocks, bytes_total

    def can_swap_in(self, request_id: int) -> bool:
        table = self._tables.get(request_id)
        if table is None or not table.is_swapped:
            return False
        return table.host_blocks <= self.free_blocks

    def swap_in(self, request_id: int) -> Tuple[int, int]:
        """Bring a swapped request's blocks back to the device.

        Returns ``(num_blocks, bytes_total)``; raises when the free pool is
        too small (check :meth:`can_swap_in` first).
        """
        table = self._tables[request_id]
        if not table.is_swapped:
            raise RuntimeError(f"request {request_id} is not swapped out")
        if table.host_blocks > self.free_blocks:
            raise RuntimeError(
                f"cannot swap request {request_id} in: needs "
                f"{table.host_blocks} blocks, {self.free_blocks} free")
        num_blocks = table.host_blocks
        if self.prefix_sharing:
            # Swap-in restores a private snapshot: the request no longer
            # shares blocks with anyone (its prefix references were dropped
            # at swap-out) and its prompt blocks are not re-registered.
            for _ in range(num_blocks):
                block = self._take_block()
                self._ref[block] = 1
                table.device_blocks.append(block)
        else:
            for _ in range(num_blocks):
                table.device_blocks.append(self._free.pop())
        table.host_blocks = 0
        bytes_total = self._swap_bytes_total(num_blocks)
        self.swap_in_count += 1
        self.swapped_bytes_total += bytes_total
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        return num_blocks, bytes_total

    # ------------------------------------------------------------------
    # prefill→decode handoff (disaggregated serving)
    # ------------------------------------------------------------------
    def export_handoff(self, request_id: int) -> Tuple[int, int, int]:
        """Release a finished prompt's blocks for transfer to another
        instance (a prefill→decode handoff).

        The export *is* a swap-out — the blocks leave the device over the
        same PCIe link, so it reuses :meth:`swap_out` and its counters —
        except the table is dropped afterwards: the KV now belongs to the
        importing instance (:meth:`import_handoff`), not to this pool's
        host tier.  Returns ``(num_blocks, cached_tokens, bytes_total)``.
        """
        num_blocks, bytes_total = self.swap_out(request_id)
        table = self._tables.pop(request_id)
        return num_blocks, table.cached_tokens, bytes_total

    def import_handoff(self, request_id: int, cached_tokens: Tokens) -> int:
        """Register a handed-off request's KV in this pool's host tier.

        The blocks arrive swapped (host-resident): the importing instance
        pays its own swap-in — device allocation, PCIe transfer, counters —
        when it admits the request, exactly like resuming a preempted
        victim.  The block count is recomputed for *this* layout (a 4-node
        prefiller and a 1-node decoder hold the same cached positions in
        the same number of same-token-size blocks, but per-node byte shares
        differ).  Returns the host block count.
        """
        if cached_tokens <= 0:
            raise ValueError("handoff must carry at least one cached token")
        if request_id in self._tables:
            raise RuntimeError(
                f"request {request_id} already holds blocks here; a handoff "
                "may only land on an instance that does not hold it")
        blocks = self.blocks_needed(cached_tokens)
        self._tables[request_id] = BlockTable(
            request_id, host_blocks=blocks, cached_tokens=cached_tokens)
        return blocks

    def _swap_bytes_total(self, num_blocks: int) -> int:
        """PCIe bytes to move ``num_blocks`` blocks, summed over all nodes
        (each node transfers its own head-share)."""
        return num_blocks * self.bytes_per_block_per_node * self.layout.num_nodes

    def swap_transfer_s(self, num_blocks: Blocks) -> Seconds:
        """Seconds to move ``num_blocks`` blocks between device and host.

        Nodes on the same card share one PCIe link; cards transfer in
        parallel, so the makespan is the per-card share priced by the host
        :class:`~repro.network.link.LinkConfig` cycle model.
        """
        if num_blocks < 0:
            raise ValueError("negative block count")
        if num_blocks == 0:
            return 0.0
        bytes_total = self._swap_bytes_total(num_blocks)
        num_cards = -(-self.layout.num_nodes // self.nodes_per_card)
        per_card = -(-bytes_total // num_cards)
        stream_cycles = per_card / self.host_link.bytes_per_cycle
        cycles = stream_cycles + self.host_link.hop_latency_cycles
        return cycles / self.host_link.clock_hz

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def max_request_tokens(self, request: "Request") -> Tokens:
        """Cached positions a request occupies at its maximum context."""
        return min(request.prefill_len + request.decode_len,
                   self.layout.max_seq_len)

    def validate(self, requests: Iterable["Request"]) -> None:
        """Reject traces containing a request whose maximum context cannot
        fit the device pool even running alone (it could never finish)."""
        for request in requests:
            needed = self.blocks_needed(self.max_request_tokens(request))
            if needed > self.total_blocks:
                raise ValueError(
                    f"request {request.request_id} needs {needed} KV blocks "
                    f"at full context but the pool only has "
                    f"{self.total_blocks}")
