"""HBM channel and subsystem model.

The Alveo U50 exposes 32 HBM pseudo-channels; the paper connects each MP slice
of the matrix-processing unit to one channel through a DMA engine running in
burst mode, and reports a peak per-channel bandwidth of 8.49 GB/s.  The DMA
loads concatenated ``n_group x 8-bit`` datapacks (32 bytes with the paper's
``n_group = 32``), so at 285 MHz a single channel could in principle accept a
32-byte beat per cycle (9.12 GB/s) — the HBM channel is therefore the limiter
and the model below converts byte counts into cycles using the effective
bytes-per-cycle the channel can sustain.

The model distinguishes:

* **peak bandwidth** — the 8.49 GB/s ceiling of one pseudo-channel;
* **burst efficiency** — long bursts approach the peak, short bursts pay a
  fixed request overhead (row activation + protocol), captured by
  :class:`BurstAccess`;
* **channel count** — how many channels a kernel engages concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.units import Bytes, BytesPerSecond


GIB = 1 << 30
GB = 1_000_000_000

#: Total HBM2 capacity of one Alveo U50 card (the paper's platform).
ALVEO_U50_HBM_BYTES = 8 * GIB

#: HBM pseudo-channels exposed by one Alveo U50.
ALVEO_U50_HBM_CHANNELS = 32


def kv_budget_bytes_per_node(weight_bytes_per_node: int,
                             nodes_per_card: int = 2,
                             device_bytes: Bytes = ALVEO_U50_HBM_BYTES,
                             reserve_fraction: float = 0.05) -> int:
    """HBM bytes one accelerator node can dedicate to its KV cache.

    Each node owns an equal share of the card's HBM; weights are resident for
    the whole deployment lifetime and ``reserve_fraction`` of the share is held
    back for activations/double-buffering.  The serving engine's KV admission
    controller uses this as its default capacity.
    """
    if nodes_per_card <= 0:
        raise ValueError("nodes_per_card must be positive")
    if not (0.0 <= reserve_fraction < 1.0):
        raise ValueError("reserve_fraction must be in [0, 1)")
    share = device_bytes // nodes_per_card
    budget = int(share * (1.0 - reserve_fraction)) - int(weight_bytes_per_node)
    return max(budget, 0)


@dataclass(frozen=True)
class HbmConfig:
    """Static parameters of one HBM pseudo-channel.

    Attributes
    ----------
    peak_bandwidth_bytes_per_s:
        Sustained peak bandwidth of a single pseudo-channel.  The paper
        reports 8.49 GB/s for the Alveo U50's HBM2.
    clock_hz:
        Accelerator kernel clock against which cycles are counted
        (285 MHz in the paper).
    burst_bytes:
        Bytes transferred per burst beat by the DMA engine
        (``n_group`` × 1 byte = 32 B).
    request_overhead_cycles:
        Fixed cycles charged per DMA burst request (address setup, AXI
        handshake, HBM row activation amortization).
    max_outstanding:
        Maximum outstanding burst requests the DMA engine keeps in flight;
        long transfers with enough outstanding requests hide the request
        overhead entirely.
    """

    peak_bandwidth_bytes_per_s: BytesPerSecond = 8.49 * GB
    clock_hz: float = 285.0e6
    burst_bytes: Bytes = 32
    request_overhead_cycles: int = 16
    max_outstanding: int = 8

    def __post_init__(self) -> None:
        if self.peak_bandwidth_bytes_per_s <= 0:
            raise ValueError("peak bandwidth must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.burst_bytes <= 0:
            raise ValueError("burst size must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Effective bytes one channel can deliver per kernel clock cycle,
        bounded both by the channel's bandwidth and by the 32-byte datapack
        the DMA engine can accept per cycle."""
        bandwidth_limited = self.peak_bandwidth_bytes_per_s / self.clock_hz
        return min(float(self.burst_bytes), bandwidth_limited)


@dataclass
class BurstAccess:
    """One DMA burst transfer request against a channel."""

    bytes: int
    is_read: bool = True

    def beats(self, config: HbmConfig) -> int:
        """Number of burst beats needed to move ``bytes``."""
        return max(1, math.ceil(self.bytes / config.burst_bytes))


class HbmChannel:
    """Cycle accounting for a single HBM pseudo-channel.

    The channel tracks the total bytes moved and converts transfer sizes into
    cycle counts.  It does not maintain a full DRAM timing model — the paper's
    own evaluation models HBM as a per-channel bandwidth ceiling, which is
    what matters for the memory-bound linear layers.
    """

    def __init__(self, config: HbmConfig, channel_id: int = 0) -> None:
        self.config = config
        self.channel_id = channel_id
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_cycles = 0.0
        self.requests = 0

    # ------------------------------------------------------------------
    def transfer_cycles(self, num_bytes: Bytes, burst_length_beats: Optional[int] = None) -> float:
        """Cycles to move ``num_bytes`` over this channel.

        ``burst_length_beats`` is the length of each DMA burst in beats; longer
        bursts amortize the per-request overhead better.  When omitted, the
        transfer is assumed to be one long burst (the weight-streaming case).
        """
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        if num_bytes == 0:
            return 0.0
        config = self.config
        beats = math.ceil(num_bytes / config.burst_bytes)
        if burst_length_beats is None or burst_length_beats >= beats:
            requests = 1
        else:
            if burst_length_beats <= 0:
                raise ValueError("burst length must be positive")
            requests = math.ceil(beats / burst_length_beats)
        stream_cycles = num_bytes / config.bytes_per_cycle
        # outstanding requests overlap their setup with the data streaming of
        # the previous ones, so only one request per outstanding window pays
        # its overhead on the critical path
        exposed_requests = max(1, math.ceil(requests / max(config.max_outstanding, 1)))
        overhead = exposed_requests * config.request_overhead_cycles
        return stream_cycles + overhead

    def read(self, num_bytes: Bytes, burst_length_beats: Optional[int] = None) -> float:
        cycles = self.transfer_cycles(num_bytes, burst_length_beats)
        self.bytes_read += num_bytes
        self.busy_cycles += cycles
        self.requests += 1
        return cycles

    def write(self, num_bytes: Bytes, burst_length_beats: Optional[int] = None) -> float:
        cycles = self.transfer_cycles(num_bytes, burst_length_beats)
        self.bytes_written += num_bytes
        self.busy_cycles += cycles
        self.requests += 1
        return cycles

    @property
    def total_bytes(self) -> Bytes:
        return self.bytes_read + self.bytes_written


class HbmSubsystem:
    """A group of HBM channels engaged in parallel by one kernel.

    The matrix-processing unit stripes the weight matrix across its
    ``n_channel`` MP slices, each fed by its own channel, so a transfer of
    ``B`` bytes completes in the time the most-loaded channel needs.  The
    helper below assumes an even stripe (the paper tiles the weight matrix
    evenly across slices).
    """

    def __init__(self, config: HbmConfig, num_channels: int) -> None:
        if num_channels <= 0:
            raise ValueError("need at least one channel")
        self.config = config
        self.channels: List[HbmChannel] = [
            HbmChannel(config, channel_id=i) for i in range(num_channels)
        ]

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def aggregate_bandwidth_bytes_per_s(self) -> BytesPerSecond:
        return self.config.peak_bandwidth_bytes_per_s * self.num_channels

    @property
    def bytes_per_cycle(self) -> float:
        return self.config.bytes_per_cycle * self.num_channels

    def striped_read_cycles(self, total_bytes: Bytes,
                            burst_length_beats: Optional[int] = None) -> float:
        """Cycles for all channels, working in parallel, to read
        ``total_bytes`` striped evenly across them."""
        if total_bytes < 0:
            raise ValueError("negative transfer size")
        if total_bytes == 0:
            return 0.0
        per_channel = math.ceil(total_bytes / self.num_channels)
        cycles = 0.0
        for channel in self.channels:
            cycles = max(cycles, channel.read(per_channel, burst_length_beats))
        return cycles

    def striped_write_cycles(self, total_bytes: Bytes,
                             burst_length_beats: Optional[int] = None) -> float:
        if total_bytes < 0:
            raise ValueError("negative transfer size")
        if total_bytes == 0:
            return 0.0
        per_channel = math.ceil(total_bytes / self.num_channels)
        cycles = 0.0
        for channel in self.channels:
            cycles = max(cycles, channel.write(per_channel, burst_length_beats))
        return cycles

    def traffic_summary(self) -> Dict[str, float]:
        """Aggregate statistics used by the analysis/energy models."""
        return {
            "bytes_read": float(sum(c.bytes_read for c in self.channels)),
            "bytes_written": float(sum(c.bytes_written for c in self.channels)),
            "busy_cycles_max": max((c.busy_cycles for c in self.channels), default=0.0),
            "requests": float(sum(c.requests for c in self.channels)),
        }
