"""Memory substrate: HBM channel model, on-chip shared buffer, KV cache.

The paper stores model weights and the KV cache in off-chip high-bandwidth
memory (HBM) on the Alveo U50 and measures latency with a cycle-accurate
simulation that "fully accounts for the per-channel HBM bandwidth (peak
8.49 GB/s)".  This package provides that accounting:

* :mod:`repro.memory.hbm` — per-channel bandwidth/burst model and a
  multi-channel aggregate used by the DMA engines of the macro dataflow
  kernels;
* :mod:`repro.memory.buffer` — the on-chip shared buffer through which kernels
  exchange activations (also the target of ring-network writes);
* :mod:`repro.memory.kv_cache` — head-wise partitioned key/value cache layout
  and the functional cache used by the NumPy GPT-2 reference;
* :mod:`repro.memory.paged_kv` — fixed-size-block KV allocator with a
  modeled host-memory swap tier (PCIe-priced), used by the serving engine's
  paged admission mode.
"""

from repro.memory.hbm import (
    ALVEO_U50_HBM_BYTES,
    ALVEO_U50_HBM_CHANNELS,
    BurstAccess,
    HbmChannel,
    HbmConfig,
    HbmSubsystem,
    kv_budget_bytes_per_node,
)
from repro.memory.buffer import SharedBuffer
from repro.memory.kv_cache import KVCache, KVCacheLayout, partition_heads
from repro.memory.paged_kv import (
    BlockTable,
    DEFAULT_HOST_LINK,
    PCIE_SWAP_BANDWIDTH_BYTES_PER_S,
    PagedKVManager,
)

__all__ = [
    "ALVEO_U50_HBM_BYTES",
    "ALVEO_U50_HBM_CHANNELS",
    "kv_budget_bytes_per_node",
    "HbmChannel",
    "HbmConfig",
    "HbmSubsystem",
    "BurstAccess",
    "SharedBuffer",
    "KVCache",
    "KVCacheLayout",
    "partition_heads",
    "BlockTable",
    "DEFAULT_HOST_LINK",
    "PCIE_SWAP_BANDWIDTH_BYTES_PER_S",
    "PagedKVManager",
]
