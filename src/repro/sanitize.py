"""Opt-in runtime invariant sanitizer for the serving simulator.

The PR 7 fuzz harness caught a real ``allocate()`` side-effect bug — but
only at test time, and only for op sequences the fuzzer happened to draw.
This module promotes those checks into the simulator itself as a *shadow
validation* layer: with ``REPRO_SANITIZE=1`` (or ``--sanitize`` on the
``serve`` CLI, or ``TokenServingEngine(..., sanitize=True)``) the engine
re-verifies its structural invariants after **every** event it processes:

* **event-time monotonicity** — simulated time never moves backwards
  (``event-time-monotonic``);
* **paged-KV block/refcount conservation** — the free list, reclaimable
  cache, and live block tables partition every pool exactly, refcounts
  equal table references, and the prefix index mirrors the block-hash map
  (``kv-*`` checks, promoted from ``tests/test_paged_kv_fuzz.py``);
* **queue/request conservation** — every arrival is accounted for:
  queued, batched, parked, mid-handoff, or completed
  (``request-conservation``);
* **lifecycle-phase consistency** — each request's declared lifecycle
  phase (:mod:`repro.serving.lifecycle`) matches where the engine
  actually holds it: batch members are prefilling or decoding (whichever
  their progress says), parked victims are swapped out, exported prompts
  are mid-handoff (``lifecycle-phase``).

A violation raises :class:`repro.errors.SanitizerError` with the
offending engine event attached, so the failure names *where* in the
event stream the state machine broke, not just that it eventually did.

The sanitizer is strictly read-only: it inspects engine and pool state
and never mutates it, so a sanitized run is bit-identical to an
unsanitized one (pinned by ``tests/test_sanitize.py``).  The cost is one
full state walk per event — measurable, which is why it is opt-in rather
than always-on.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Sized

from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.memory.paged_kv import PagedKVManager
    from repro.serving.instance import InstanceRuntime

__all__ = ["sanitize_enabled", "check_kv_invariants", "EngineSanitizer"]

#: Environment switch: any value other than empty/``0`` enables the
#: sanitizer for engines that did not pass an explicit ``sanitize=``.
ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the sanitizer switch: explicit argument wins, then
    ``REPRO_SANITIZE`` in the environment, default off."""
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def _fail(message: str, *, check: str, event: Optional[Any]) -> None:
    raise SanitizerError(message, check=check, event=event)


def check_kv_invariants(manager: "PagedKVManager", *,
                        event: Optional[Any] = None) -> None:
    """Verify one paged pool's block-accounting invariants.

    This is the white-box checker the paged-KV fuzz battery pins, promoted
    into the library so sanitized engine runs (and any embedder) can apply
    it after every state transition.  Raises :class:`SanitizerError` on
    the first violated invariant; returns ``None`` when all hold.
    """
    free_list = manager._free
    free_set = set(free_list)
    if len(free_set) != len(free_list):
        _fail("duplicate block in the free list",
              check="kv-free-list-unique", event=event)
    reclaimable = set(manager._reclaimable)
    if free_set & reclaimable:
        _fail(f"blocks {sorted(free_set & reclaimable)} are both free and "
              "reclaimable", check="kv-tier-disjoint", event=event)

    table_refs: Counter = Counter()
    for rid, table in manager._tables.items():
        blocks = table.device_blocks
        if len(set(blocks)) != len(blocks):
            _fail(f"request {rid}'s table lists a block twice",
                  check="kv-table-unique", event=event)
        if table.is_swapped and blocks:
            _fail(f"request {rid} is swapped out but still holds device "
                  f"blocks {list(blocks)}", check="kv-swapped-holds-device",
                  event=event)
        for block in blocks:
            table_refs[block] += 1
    held = set(table_refs)

    # invariant 1: no block simultaneously free/reclaimable and in a table
    if free_set & held:
        _fail(f"blocks {sorted(free_set & held)} are simultaneously free "
              "and referenced by a table", check="kv-block-conservation",
              event=event)
    if reclaimable & held:
        _fail(f"reclaimable blocks {sorted(reclaimable & held)} are still "
              "referenced by a table", check="kv-block-conservation",
              event=event)

    # invariant 2: the three tiers partition the physical pool exactly
    if len(free_set) + len(reclaimable) + len(held) != manager.total_blocks:
        _fail(f"tiers do not partition the pool: {len(free_set)} free + "
              f"{len(reclaimable)} reclaimable + {len(held)} held != "
              f"{manager.total_blocks} total", check="kv-block-conservation",
              event=event)
    if manager.used_blocks + manager.free_blocks != manager.total_blocks:
        _fail(f"used ({manager.used_blocks}) + free ({manager.free_blocks}) "
              f"!= total ({manager.total_blocks})",
              check="kv-block-conservation", event=event)
    if manager.used_blocks != len(held):
        _fail(f"used_blocks reports {manager.used_blocks} but tables hold "
              f"{len(held)} blocks", check="kv-block-conservation",
              event=event)
    if not all(0 <= b < manager.total_blocks
               for b in free_set | reclaimable | held):
        _fail("a tier references a block outside the physical pool",
              check="kv-block-conservation", event=event)

    # invariant 3: refcounts equal the number of tables referencing a block
    if manager.prefix_sharing:
        if dict(table_refs) != manager._ref:
            _fail("refcounts diverge from table references",
                  check="kv-refcount", event=event)
        shared = sum(1 for count in table_refs.values() if count >= 2)
        if manager.shared_blocks != shared:
            _fail(f"shared_blocks reports {manager.shared_blocks}, tables "
                  f"say {shared}", check="kv-refcount", event=event)
        # index consistency: hash->block and block->hash mirror each other,
        # and only registered blocks may linger in the reclaimable tier
        if set(manager._block_hash) != set(manager._prefix_index.values()):
            _fail("prefix index and block-hash map diverge",
                  check="kv-prefix-index", event=event)
        for chain_hash, block in manager._prefix_index.items():
            if manager._block_hash.get(block) != chain_hash:
                _fail(f"block {block} hash does not mirror its index entry",
                      check="kv-prefix-index", event=event)
        if not reclaimable <= set(manager._block_hash):
            _fail("an unregistered block sits in the reclaimable tier",
                  check="kv-prefix-index", event=event)
    else:
        if any(count != 1 for count in table_refs.values()):
            _fail("sharing is off but a block appears in two tables",
                  check="kv-refcount", event=event)
        if manager._ref or manager._reclaimable:
            _fail("sharing is off but refcounts/reclaimable state exist",
                  check="kv-refcount", event=event)
        if manager._prefix_index or manager._block_hash:
            _fail("sharing is off but the prefix index is populated",
                  check="kv-prefix-index", event=event)


class EngineSanitizer:
    """Shadow validator the engine consults after every processed event.

    Strictly read-only; every hook either returns ``None`` or raises
    :class:`SanitizerError` with the offending event attached.
    """

    def __init__(self) -> None:
        # deferred: engine imports this module at load time, and the
        # lifecycle spec lives inside the serving package engine belongs
        # to — importing it here at module scope would close that cycle
        from repro.serving import lifecycle
        self._lifecycle = lifecycle
        self.last_time_s = float("-inf")
        #: number of events validated (exposed for overhead accounting
        #: and the sanitizer's own tests)
        self.events_checked = 0

    def after_event(self, now: float, event: Any, *,
                    scheduler: Sized,
                    runtimes: Sequence["InstanceRuntime"],
                    num_arrivals: int, completed: int,
                    in_flight_handoffs: int) -> None:
        """Validate engine state just after ``event`` was processed at
        simulated time ``now``."""
        if now < self.last_time_s:
            _fail(f"simulated time moved backwards: {now} after "
                  f"{self.last_time_s}", check="event-time-monotonic",
                  event=event)
        self.last_time_s = now

        in_system = len(scheduler) + in_flight_handoffs
        for runtime in runtimes:
            in_system += (len(runtime.batch) + len(runtime.parked)
                          + len(runtime.pending_handoffs))
        if num_arrivals != completed + in_system:
            _fail(f"request conservation broke: {num_arrivals} arrivals != "
                  f"{completed} completed + {in_system} in the system",
                  check="request-conservation", event=event)

        lifecycle = self._lifecycle
        for runtime in runtimes:
            for state in runtime.batch:
                expected = (lifecycle.PREFILLING
                            if state.prefill_done < state.prefill_len
                            else lifecycle.DECODING)
                if state.phase != expected:
                    _fail(f"request {state.request.request_id} sits in "
                          f"instance {runtime.instance_id}'s batch with "
                          f"prefill {state.prefill_done}/{state.prefill_len} "
                          f"but phase {state.phase!r} (expected "
                          f"{expected!r})", check="lifecycle-phase",
                          event=event)
            for state in runtime.parked:
                if state.phase != lifecycle.EVICTED_SWAP:
                    _fail(f"request {state.request.request_id} is parked on "
                          f"instance {runtime.instance_id} but in phase "
                          f"{state.phase!r} (expected "
                          f"{lifecycle.EVICTED_SWAP!r})",
                          check="lifecycle-phase", event=event)
            for state, _, _ in runtime.pending_handoffs:
                if state.phase != lifecycle.HANDOFF:
                    _fail(f"request {state.request.request_id} awaits "
                          f"handoff from instance {runtime.instance_id} but "
                          f"is in phase {state.phase!r} (expected "
                          f"{lifecycle.HANDOFF!r})",
                          check="lifecycle-phase", event=event)
            if runtime.kv is not None:
                check_kv_invariants(runtime.kv, event=event)
        self.events_checked += 1
