"""Request traces: synthetic generators and real-trace replay.

The paper evaluates isolated requests; serving deployments see streams of
requests with varying prompt/generation lengths.  The synthetic generators
here (steady Poisson, bursty, multi-tenant) draw lengths from
log-normal-ish distributions clamped to the model's context window, with a
fixed seed for reproducibility; :func:`replay_trace` loads recorded
production traces (Azure-LLM-style CSV) into the same request format so the
serving engine replays real arrival processes too.

Two trace containers exist.  :class:`RequestTrace` materializes every
request in a list — right for the goldens and anything that inspects the
trace more than once.  :class:`StreamingTrace` holds a *recipe* (a factory
returning a fresh iterator of arrival-sorted requests) so million-request
traces flow through the engine without ever living in memory at once;
:func:`synthetic_azure_trace` and ``replay_trace(..., streaming=True)``
produce them.
"""

from __future__ import annotations

import csv
import gzip
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Mapping, Optional, Sequence, \
    Tuple, Union

import numpy as np

from repro.workloads.scenarios import Scenario
from repro.units import RequestsPerSecond, Seconds, Tokens


@dataclass(frozen=True, slots=True)
class Request:
    """One request in a trace.

    ``tenant`` and ``priority`` only matter to scheduler policies that look at
    them (multi-tenant traces, the priority scheduler); the default values make
    every request indistinguishable, so single-tenant traces are unaffected.
    Higher ``priority`` values are more urgent.

    ``prompt_token_ids`` is the prompt's content identity for prefix
    sharing: a tuple of ``prefill_len`` synthetic token ids (two prompts
    share a prefix exactly when their id tuples do).  ``None`` — the
    default, and what every generator without conversation structure
    emits — means the prompt has no shareable identity, so the paged
    prefix cache never matches it and all historical behaviour is
    preserved bit for bit.
    """

    request_id: int
    arrival_s: Seconds
    scenario: Scenario
    tenant: str = "default"
    priority: int = 0
    prompt_token_ids: Optional[Tuple[int, ...]] = None

    @property
    def prefill_len(self) -> Tokens:
        return self.scenario.prefill_len

    @property
    def decode_len(self) -> Tokens:
        return self.scenario.decode_len

    @property
    def total_tokens(self) -> Tokens:
        return self.scenario.total_tokens


@dataclass
class RequestTrace:
    """An ordered list of requests with arrival times."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def total_prefill_tokens(self) -> Tokens:
        return sum(r.prefill_len for r in self.requests)

    @property
    def total_decode_tokens(self) -> Tokens:
        return sum(r.decode_len for r in self.requests)

    @property
    def first_arrival_s(self) -> Seconds:
        if not self.requests:
            return 0.0
        return min(r.arrival_s for r in self.requests)

    @property
    def last_arrival_s(self) -> Seconds:
        if not self.requests:
            return 0.0
        return max(r.arrival_s for r in self.requests)

    @property
    def duration_s(self) -> Seconds:
        """Span between the first and last arrival (0 for empty or
        single-request traces)."""
        if not self.requests:
            return 0.0
        return self.last_arrival_s - self.first_arrival_s

    @property
    def tenants(self) -> List[str]:
        """Distinct tenants appearing in the trace, in first-seen order."""
        seen: List[str] = []
        for request in self.requests:
            if request.tenant not in seen:
                seen.append(request.tenant)
        return seen

    def scenarios(self) -> List[Scenario]:
        return [r.scenario for r in self.requests]


@dataclass
class StreamingTrace:
    """A lazily generated, arrival-sorted request stream.

    Holds a *factory* rather than a list: every ``iter()`` call builds a
    fresh iterator, so the trace is re-playable (the engine, a validation
    pass and a comparison run all see the same requests) while only a
    bounded window of requests is ever alive.  ``length`` is the known
    request count when the recipe implies one (synthetic generators);
    file-backed streams of unknown length leave it ``None`` and ``len()``
    raises.

    Iteration order is the contract: requests must come out sorted by
    ``(arrival_s, request_id)`` with ids assigned in arrival order, exactly
    like a finalized :class:`RequestTrace` — the engine trusts this and
    skips its re-sort.
    """

    factory: Callable[[], Iterator[Request]]
    length: Optional[int] = None

    def __iter__(self) -> Iterator[Request]:
        return iter(self.factory())

    def __len__(self) -> int:
        if self.length is None:
            raise TypeError("this StreamingTrace has no known length")
        return self.length


def _is_sorted_by_arrival(requests: Sequence[Request]) -> bool:
    """True when arrivals are already non-decreasing (the common case for
    generated and exported traces), so finalization can skip the sort."""
    return all(requests[i].arrival_s <= requests[i + 1].arrival_s
               for i in range(len(requests) - 1))


def _finalize(requests: List[Request]) -> RequestTrace:
    """Sort by arrival time and reassign ids in arrival order (so FIFO
    order equals id order) — the last step of every merged/loaded trace.
    Already-sorted inputs (single-stream generators, exported production
    dumps) skip the sort."""
    ordered = (requests if _is_sorted_by_arrival(requests)
               else sorted(requests, key=lambda r: r.arrival_s))
    return RequestTrace(requests=[
        Request(request_id=i, arrival_s=r.arrival_s, scenario=r.scenario,
                tenant=r.tenant, priority=r.priority,
                prompt_token_ids=r.prompt_token_ids)
        for i, r in enumerate(ordered)])


def synthetic_trace(num_requests: int, seed: int = 0,
                    mean_prefill: int = 64, mean_decode: int = 256,
                    max_seq_len: Tokens = 1024,
                    arrival_rate_per_s: RequestsPerSecond = 1.0) -> RequestTrace:
    """Generate a reproducible synthetic request trace.

    Prompt and generation lengths are drawn from log-normal distributions
    with the requested means, then clamped so every request fits the model's
    context window; arrivals follow a Poisson process.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if mean_prefill <= 0 or mean_decode <= 0:
        raise ValueError("means must be positive")
    if max_seq_len <= 2:
        raise ValueError("max_seq_len too small")
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    arrival = 0.0
    for request_id in range(num_requests):
        # draw the shape before the arrival gap: this is the historical RNG
        # consumption order, so seeded traces stay bit-identical
        scenario = _draw_scenario(rng, mean_prefill, mean_decode, max_seq_len)
        arrival += float(rng.exponential(1.0 / arrival_rate_per_s))
        requests.append(Request(request_id=request_id, arrival_s=arrival,
                                scenario=scenario))
    return RequestTrace(requests=requests)


def _draw_scenario(rng: np.random.Generator, mean_prefill: int, mean_decode: int,
                   max_seq_len: int) -> Scenario:
    """Draw one request shape from the clamped log-normal length model."""
    prefill = int(np.clip(rng.lognormal(np.log(mean_prefill), 0.5), 1,
                          max_seq_len // 2))
    decode_cap = max_seq_len - prefill - 1
    decode = int(np.clip(rng.lognormal(np.log(mean_decode), 0.5), 1, decode_cap))
    return Scenario(prefill, decode)


def bursty_trace(num_requests: int, seed: int = 0,
                 mean_prefill: int = 64, mean_decode: int = 256,
                 max_seq_len: Tokens = 1024,
                 burst_size: int = 8,
                 burst_rate_per_s: RequestsPerSecond = 20.0,
                 idle_gap_s: Seconds = 4.0) -> RequestTrace:
    """Bursty arrivals: tight clusters of requests separated by idle gaps.

    Within a burst, inter-arrival times are exponential at
    ``burst_rate_per_s`` (much faster than an instance can drain), then the
    trace goes quiet for an exponential gap with mean ``idle_gap_s``.  This is
    the arrival pattern where continuous batching shines: an exclusive
    instance serializes the burst while a batching engine absorbs it.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    if burst_rate_per_s <= 0:
        raise ValueError("burst_rate_per_s must be positive")
    if idle_gap_s < 0:
        raise ValueError("idle_gap_s must be non-negative")
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    arrival = 0.0
    while len(requests) < num_requests:
        burst = min(burst_size, num_requests - len(requests))
        for _ in range(burst):
            arrival += float(rng.exponential(1.0 / burst_rate_per_s))
            requests.append(Request(
                request_id=len(requests), arrival_s=arrival,
                scenario=_draw_scenario(rng, mean_prefill, mean_decode,
                                        max_seq_len)))
        arrival += float(rng.exponential(idle_gap_s))
    return RequestTrace(requests=requests)


def synthetic_azure_trace(num_requests: int = 1_000_000, seed: int = 0,
                          mean_prefill: int = 128, mean_decode: int = 64,
                          max_seq_len: Tokens = 1024,
                          mean_rate_per_s: RequestsPerSecond = 50.0,
                          diurnal_amplitude: float = 0.5,
                          day_length_s: Seconds = 86_400.0,
                          chunk_size: int = 65_536) -> StreamingTrace:
    """An Azure-LLM-inference-shaped synthetic trace at production scale.

    Mimics the published Azure LLM inference traces in the aggregate:
    prompt-heavy log-normal length mix (short generations dominate),
    Poisson arrivals whose rate swings sinusoidally over a simulated day
    (``mean_rate_per_s`` scaled by ``1 + diurnal_amplitude * sin``), and a
    single tenant.  Returns a :class:`StreamingTrace`: requests are drawn
    lazily in ``chunk_size`` batches of vectorized numpy sampling, so a
    ``num_requests=1_000_000`` trace streams through the engine without a
    million-element list ever existing.  Same seed, same trace — every
    iteration replays identical requests.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if mean_prefill <= 0 or mean_decode <= 0:
        raise ValueError("means must be positive")
    if max_seq_len <= 2:
        raise ValueError("max_seq_len too small")
    if mean_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    if day_length_s <= 0:
        raise ValueError("day_length_s must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")

    log_prefill = float(np.log(mean_prefill))
    log_decode = float(np.log(mean_decode))
    omega = 2.0 * np.pi / day_length_s

    def generate() -> Iterator[Request]:
        rng = np.random.default_rng(seed)
        # Scenario objects repeat heavily under the clamped length model;
        # interning them keeps per-request allocation to the Request itself.
        scenarios: dict = {}
        arrival = 0.0
        request_id = 0
        remaining = num_requests
        while remaining > 0:
            n = min(chunk_size, remaining)
            remaining -= n
            base_gaps = rng.exponential(1.0 / mean_rate_per_s, n)
            # modulate each gap by the instantaneous diurnal rate at the
            # (nominal) arrival instant; gaps stay positive so the stream
            # stays sorted
            nominal = arrival + np.cumsum(base_gaps)
            rate_scale = 1.0 + diurnal_amplitude * np.sin(omega * nominal)
            arrivals = arrival + np.cumsum(base_gaps / rate_scale)
            prefills = np.clip(
                rng.lognormal(log_prefill, 0.6, n), 1,
                max_seq_len // 2).astype(np.int64)
            decode_caps = max_seq_len - prefills - 1
            decodes = np.minimum(np.clip(
                rng.lognormal(log_decode, 0.6, n), 1, None).astype(np.int64),
                decode_caps)
            arrival = float(arrivals[-1])
            arrivals_list = arrivals.tolist()
            prefills_list = prefills.tolist()
            decodes_list = decodes.tolist()
            for i in range(n):
                key = (prefills_list[i], decodes_list[i])
                scenario = scenarios.get(key)
                if scenario is None:
                    scenario = scenarios[key] = Scenario(key[0], key[1])
                yield Request(request_id=request_id,
                              arrival_s=arrivals_list[i], scenario=scenario)
                request_id += 1

    return StreamingTrace(factory=generate, length=num_requests)


#: Column layout :func:`replay_trace` expects (the Azure LLM inference
#: trace shape: arrival offset, prompt tokens, output tokens, plus an
#: optional tenant column for multi-tenant replays).
REPLAY_COLUMNS = ("arrival_s", "prompt_tokens", "output_tokens", "tenant")


def replay_trace(path: Union[str, Path],
                 max_seq_len: Tokens = 1024,
                 column_map: Optional[Mapping[str, str]] = None,
                 streaming: bool = False
                 ) -> Union[RequestTrace, "StreamingTrace"]:
    """Load an Azure-LLM-style CSV trace into the request format.

    Each row is ``arrival_s,prompt_tokens,output_tokens[,tenant]`` —
    arrival offset in seconds from the trace start, prompt and generation
    lengths in tokens, and an optional tenant name.  A header row matching
    the column names is skipped, so exported production traces replay
    as-is.  Requests are sorted by arrival time and ids are assigned in
    arrival order (FIFO order equals id order, like the synthetic
    generators).

    A ``.gz`` path is decompressed on the fly, so raw production trace
    dumps replay without an unpack step.  ``column_map`` lets such dumps
    replay without a rewrite step either: it maps this loader's column
    names to the file's header names, e.g. ``{"arrival_s": "TIMESTAMP",
    "prompt_tokens": "ContextTokens", "output_tokens":
    "GeneratedTokens"}`` for an Azure LLM-inference dump.  With a
    ``column_map`` the first row *must* be a header containing every
    mapped name (``ValueError`` names any missing column); unmapped
    columns are ignored, and the ``tenant`` mapping is optional.  Values
    keep the same requirements as the positional form (the arrival column
    must already be numeric seconds from the trace start).

    Rows that do not parse raise ``ValueError`` naming the offending row
    (1-based, counting the header): replaying a multi-GiB production trace
    and silently dropping malformed rows would bias every percentile.
    ``max_seq_len`` bounds ``prompt + output`` against the model's context
    window, again naming the row that exceeds it.

    Parsing itself is a row-at-a-time generator — the whole CSV is never
    materialized as text.  The default return is still a fully built
    :class:`RequestTrace` (sorted, ids reassigned).  With
    ``streaming=True`` the function instead returns a
    :class:`StreamingTrace` that re-parses the file on every iteration and
    keeps only one row alive at a time; the file must then already be
    sorted by ``arrival_s`` (an out-of-order row raises ``ValueError``
    naming it), ids are assigned in file order, and errors — including an
    empty file — surface on iteration rather than at call time.
    """
    path = Path(path)
    if column_map is not None:
        missing = [name for name in REPLAY_COLUMNS[:3] if name not in column_map]
        if missing:
            raise ValueError(
                f"column_map must map {', '.join(REPLAY_COLUMNS[:3])}; "
                f"missing {', '.join(missing)}")
    if streaming:
        return StreamingTrace(
            factory=lambda: _stream_replay_rows(path, max_seq_len, column_map))
    rows = list(_parse_replay_rows(path, max_seq_len, column_map))
    if not rows:
        raise ValueError(f"{path}: trace file contains no requests")
    return _finalize(rows)


def _stream_replay_rows(path: Path, max_seq_len: int,
                        column_map: Optional[Mapping[str, str]]
                        ) -> Iterator[Request]:
    """Streaming replay: parsed rows with ids assigned in file order,
    enforcing that the file is already arrival-sorted."""
    last_arrival = float("-inf")
    request_id = -1
    for request_id, request in enumerate(
            _parse_replay_rows(path, max_seq_len, column_map)):
        if request.arrival_s < last_arrival:
            raise ValueError(
                f"{path}: streaming replay needs an arrival-sorted file, "
                f"but request {request_id} arrives at {request.arrival_s} "
                f"after one at {last_arrival}; load it with "
                "streaming=False to sort in memory")
        last_arrival = request.arrival_s
        yield Request(request_id=request_id, arrival_s=request.arrival_s,
                      scenario=request.scenario, tenant=request.tenant,
                      priority=request.priority,
                      prompt_token_ids=request.prompt_token_ids)
    if request_id < 0:
        raise ValueError(f"{path}: trace file contains no requests")


def _parse_replay_rows(path: Path, max_seq_len: int,
                       column_map: Optional[Mapping[str, str]]
                       ) -> Iterator[Request]:
    """Yield one :class:`Request` (id 0) per CSV row, never holding the
    whole file: the shared parsing core of both replay modes."""
    first_data_row = True
    indices: Optional[List[int]] = None
    tenant_index: Optional[int] = None
    last_mapped_index = 0
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue  # blank line
            cells = [cell.strip() for cell in row]
            if first_data_row:
                first_data_row = False
                if column_map is not None:
                    # mapped mode: the first row is the header, resolved
                    # once into column indices
                    header = cells
                    absent = [column_map[name] for name in REPLAY_COLUMNS[:3]
                              if column_map[name] not in header]
                    if absent:
                        raise ValueError(
                            f"{path}: header row {line_no} has no column "
                            f"{', '.join(repr(a) for a in absent)} "
                            f"(header: {', '.join(header)})")
                    indices = [header.index(column_map[name])
                               for name in REPLAY_COLUMNS[:3]]
                    tenant_name = column_map.get("tenant")
                    if tenant_name is not None:
                        if tenant_name not in header:
                            raise ValueError(
                                f"{path}: header row {line_no} has no "
                                f"column {tenant_name!r} "
                                f"(header: {', '.join(header)})")
                        tenant_index = header.index(tenant_name)
                    last_mapped_index = max(
                        indices + ([tenant_index]
                                   if tenant_index is not None else []))
                    continue
                if cells[:3] == list(REPLAY_COLUMNS[:3]):
                    continue  # header row
            if indices is not None:
                if len(cells) <= last_mapped_index:
                    raise ValueError(
                        f"{path}: row {line_no}: expected at least "
                        f"{last_mapped_index + 1} columns to cover the "
                        f"mapped ones, got {len(cells)}")
                tenant_cell = (cells[tenant_index]
                               if tenant_index is not None else "")
                cells = [cells[i] for i in indices] + (
                    [tenant_cell] if tenant_cell else [])
            if len(cells) not in (3, 4):
                raise ValueError(
                    f"{path}: row {line_no}: expected "
                    "arrival_s,prompt_tokens,output_tokens[,tenant], got "
                    f"{len(cells)} columns")
            try:
                arrival = float(cells[0])
                prompt = int(cells[1])
                output = int(cells[2])
            except ValueError:
                raise ValueError(
                    f"{path}: row {line_no}: non-numeric field in "
                    f"{','.join(cells[:3])!r}") from None
            if arrival < 0:
                raise ValueError(
                    f"{path}: row {line_no}: arrival_s must be >= 0, "
                    f"got {arrival}")
            if prompt <= 0:
                raise ValueError(
                    f"{path}: row {line_no}: prompt_tokens must be "
                    f"positive, got {prompt}")
            if output < 0:
                raise ValueError(
                    f"{path}: row {line_no}: output_tokens cannot be "
                    f"negative, got {output}")
            if prompt + output > max_seq_len:
                raise ValueError(
                    f"{path}: row {line_no}: prompt + output = "
                    f"{prompt + output} exceeds the {max_seq_len}-token "
                    "context window")
            tenant = cells[3] if len(cells) == 4 and cells[3] else "default"
            yield Request(request_id=0, arrival_s=arrival,
                          scenario=Scenario(prompt, output), tenant=tenant)


@dataclass(frozen=True)
class TenantSpec:
    """Traffic profile of one tenant in a multi-tenant trace."""

    name: str
    arrival_rate_per_s: RequestsPerSecond = 1.0
    mean_prefill: int = 64
    mean_decode: int = 256
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.mean_prefill <= 0 or self.mean_decode <= 0:
            raise ValueError("means must be positive")


#: Default tenant mix: a latency-sensitive interactive tenant, a bulk batch
#: tenant with long generations, and a background low-priority tenant.
DEFAULT_TENANTS: tuple = (
    TenantSpec("interactive", arrival_rate_per_s=1.5, mean_prefill=48,
               mean_decode=96, priority=2),
    TenantSpec("batch", arrival_rate_per_s=0.5, mean_prefill=128,
               mean_decode=384, priority=1),
    TenantSpec("background", arrival_rate_per_s=0.25, mean_prefill=64,
               mean_decode=256, priority=0),
)


@dataclass(frozen=True)
class BurstyTenantSpec:
    """Traffic profile of one tenant in a bursty multi-tenant trace: its
    own request shapes *and* its own burst structure (a chatbot tenant
    bursts in tight clusters of short prompts; a bulk tenant trickles in
    rare, long ones)."""

    name: str
    num_requests: int
    mean_prefill: int = 64
    mean_decode: int = 256
    burst_size: int = 8
    burst_rate_per_s: RequestsPerSecond = 20.0
    idle_gap_s: Seconds = 4.0
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")


#: Default bursty tenant mix: a chatty interactive tenant arriving in
#: tight bursts of short prompts, and a bulk tenant trickling in rare
#: long-prompt, long-generation requests.  The prompt-length distribution
#: is strongly bimodal — the regime where heterogeneous pools and
#: class-affinity routing earn their keep.
DEFAULT_BURSTY_TENANTS: tuple = (
    BurstyTenantSpec("interactive", num_requests=64, mean_prefill=32,
                     mean_decode=96, burst_size=16, burst_rate_per_s=20.0,
                     idle_gap_s=0.5),
    BurstyTenantSpec("batch", num_requests=4, mean_prefill=450,
                     mean_decode=256, burst_size=1, burst_rate_per_s=5.0,
                     idle_gap_s=3.0),
)


def bursty_multi_tenant_trace(
        tenants: Sequence[BurstyTenantSpec] = DEFAULT_BURSTY_TENANTS,
        seed: int = 0, max_seq_len: Tokens = 1024) -> RequestTrace:
    """Merge independent *bursty* streams of several tenants into one trace.

    Unlike :func:`multi_tenant_trace` (independent Poisson streams), every
    tenant here arrives in bursts with its own burst shape, so the merged
    trace exercises both burst absorption and mixed request sizes at once.
    Each tenant's stream is drawn with seed ``seed + its index``, the merge
    is sorted by arrival time and ids are assigned in arrival order (FIFO
    order equals id order).
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    merged: List[Request] = []
    for index, spec in enumerate(tenants):
        stream = bursty_trace(spec.num_requests, seed=seed + index,
                              mean_prefill=spec.mean_prefill,
                              mean_decode=spec.mean_decode,
                              max_seq_len=max_seq_len,
                              burst_size=spec.burst_size,
                              burst_rate_per_s=spec.burst_rate_per_s,
                              idle_gap_s=spec.idle_gap_s)
        merged.extend(Request(request_id=0, arrival_s=r.arrival_s,
                              scenario=r.scenario, tenant=spec.name,
                              priority=spec.priority)
                      for r in stream)
    return _finalize(merged)


def multi_turn_trace(num_requests: int, seed: int = 0,
                     turns_per_session: int = 4,
                     system_prompt_len: Tokens = 48,
                     mean_user_tokens: Tokens = 24,
                     mean_decode: int = 48,
                     think_time_s: Seconds = 4.0,
                     session_rate_per_s: RequestsPerSecond = 0.5,
                     max_seq_len: Tokens = 1024,
                     assumed_tpot_s: Seconds = 0.02) -> RequestTrace:
    """Multi-turn conversations: each turn re-arrives with the prior turns
    as its prompt prefix.

    Sessions open as a Poisson process at ``session_rate_per_s``.  Every
    session shares one system prompt (``system_prompt_len`` tokens with
    identical ids across *all* sessions, so even first turns share those
    blocks), then alternates user turns and assistant replies: turn ``t``'s
    prompt is the full transcript so far — system prompt, every earlier
    user turn and assistant reply — plus the new user message, and its
    decode is the next reply.  ``prompt_token_ids`` carries this structure
    (session-unique ids for the transcript, shared ids for the system
    prompt), which is what the paged prefix cache hashes and matches.

    Turn ``t+1`` arrives a *think-time gap* after turn ``t``: an
    exponential pause with mean ``think_time_s`` plus the time the reply
    itself plausibly took to stream (``decode × assumed_tpot_s``) — the
    trace is open-loop, so the service estimate stands in for the actual
    finish time.  A session ends after ``turns_per_session`` turns or when
    the next turn would no longer fit the context window, whichever is
    first.  The merged trace is sorted by arrival and ids are reassigned
    in arrival order, like every other generator here.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if turns_per_session <= 0:
        raise ValueError("turns_per_session must be positive")
    if system_prompt_len < 0:
        raise ValueError("system_prompt_len cannot be negative")
    if mean_user_tokens <= 0 or mean_decode <= 0:
        raise ValueError("means must be positive")
    if think_time_s < 0 or assumed_tpot_s < 0:
        raise ValueError("gaps cannot be negative")
    if session_rate_per_s <= 0:
        raise ValueError("session rate must be positive")
    if max_seq_len <= system_prompt_len + 2:
        raise ValueError("max_seq_len too small for the system prompt")
    rng = np.random.default_rng(seed)
    system_ids = tuple(range(system_prompt_len))
    requests: List[Request] = []
    session_start = 0.0
    session_index = 0
    while len(requests) < num_requests:
        session_start += float(rng.exponential(1.0 / session_rate_per_s))
        # session-unique token ids, disjoint from every other session's and
        # from the shared system prompt
        next_id = (session_index + 1) * 1_000_000
        transcript: List[int] = list(system_ids)
        arrival = session_start
        for _ in range(turns_per_session):
            user_len = int(np.clip(
                rng.lognormal(np.log(mean_user_tokens), 0.5), 1,
                max_seq_len // 4))
            decode_len = int(np.clip(
                rng.lognormal(np.log(mean_decode), 0.5), 1,
                max_seq_len // 4))
            if len(transcript) + user_len + decode_len + 1 > max_seq_len:
                break  # context window exhausted: the session ends early
            user_ids = range(next_id, next_id + user_len)
            next_id += user_len
            prompt_ids = tuple(transcript) + tuple(user_ids)
            requests.append(Request(
                request_id=0, arrival_s=arrival,
                scenario=Scenario(len(prompt_ids), decode_len),
                tenant=f"session{session_index}",
                prompt_token_ids=prompt_ids))
            if len(requests) >= num_requests:
                break
            # the next turn's prompt extends the transcript with this
            # user message and the assistant's reply tokens
            transcript.extend(user_ids)
            transcript.extend(range(next_id, next_id + decode_len))
            next_id += decode_len
            arrival += (decode_len * assumed_tpot_s
                        + float(rng.exponential(think_time_s)))
        session_index += 1
    return _finalize(requests)


def multi_tenant_trace(num_requests: int, seed: int = 0,
                       tenants: Sequence[TenantSpec] = DEFAULT_TENANTS,
                       max_seq_len: Tokens = 1024) -> RequestTrace:
    """Merge independent Poisson streams of several tenants into one trace.

    Each tenant has its own arrival rate, request-shape distribution and
    priority; the merged trace is sorted by arrival time and request ids are
    assigned in arrival order (so FIFO order equals id order).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not tenants:
        raise ValueError("need at least one tenant")
    rng = np.random.default_rng(seed)
    total_rate = sum(t.arrival_rate_per_s for t in tenants)
    # expected per-tenant share of the request budget
    per_tenant = [max(1, round(num_requests * t.arrival_rate_per_s / total_rate))
                  for t in tenants]
    # settle rounding drift on the largest stream so the trace has exactly
    # the requested number of requests
    while sum(per_tenant) > num_requests:
        per_tenant[per_tenant.index(max(per_tenant))] -= 1
    while sum(per_tenant) < num_requests:
        per_tenant[per_tenant.index(max(per_tenant))] += 1
    merged: List[Request] = []
    for spec, count in zip(tenants, per_tenant):
        arrival = 0.0
        for _ in range(count):
            arrival += float(rng.exponential(1.0 / spec.arrival_rate_per_s))
            merged.append(Request(
                request_id=0, arrival_s=arrival,
                scenario=_draw_scenario(rng, spec.mean_prefill,
                                        spec.mean_decode, max_seq_len),
                tenant=spec.name, priority=spec.priority))
    return _finalize(merged)
