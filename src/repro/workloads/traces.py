"""Synthetic request traces.

The paper evaluates isolated requests; serving deployments see streams of
requests with varying prompt/generation lengths.  The trace generator here is
used by the serving-oriented example to estimate sustained throughput and
energy of a LoopLynx deployment over a request mix, and by tests of the
analysis utilities.  Lengths are drawn from log-normal-ish distributions
clamped to the model's context window, with a fixed seed for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.workloads.scenarios import Scenario


@dataclass(frozen=True)
class Request:
    """One request in a trace.

    ``tenant`` and ``priority`` only matter to scheduler policies that look at
    them (multi-tenant traces, the priority scheduler); the default values make
    every request indistinguishable, so single-tenant traces are unaffected.
    Higher ``priority`` values are more urgent.
    """

    request_id: int
    arrival_s: float
    scenario: Scenario
    tenant: str = "default"
    priority: int = 0

    @property
    def prefill_len(self) -> int:
        return self.scenario.prefill_len

    @property
    def decode_len(self) -> int:
        return self.scenario.decode_len

    @property
    def total_tokens(self) -> int:
        return self.scenario.total_tokens


@dataclass
class RequestTrace:
    """An ordered list of requests with arrival times."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def total_prefill_tokens(self) -> int:
        return sum(r.prefill_len for r in self.requests)

    @property
    def total_decode_tokens(self) -> int:
        return sum(r.decode_len for r in self.requests)

    @property
    def first_arrival_s(self) -> float:
        if not self.requests:
            return 0.0
        return min(r.arrival_s for r in self.requests)

    @property
    def last_arrival_s(self) -> float:
        if not self.requests:
            return 0.0
        return max(r.arrival_s for r in self.requests)

    @property
    def duration_s(self) -> float:
        """Span between the first and last arrival (0 for empty or
        single-request traces)."""
        if not self.requests:
            return 0.0
        return self.last_arrival_s - self.first_arrival_s

    @property
    def tenants(self) -> List[str]:
        """Distinct tenants appearing in the trace, in first-seen order."""
        seen: List[str] = []
        for request in self.requests:
            if request.tenant not in seen:
                seen.append(request.tenant)
        return seen

    def scenarios(self) -> List[Scenario]:
        return [r.scenario for r in self.requests]


def synthetic_trace(num_requests: int, seed: int = 0,
                    mean_prefill: int = 64, mean_decode: int = 256,
                    max_seq_len: int = 1024,
                    arrival_rate_per_s: float = 1.0) -> RequestTrace:
    """Generate a reproducible synthetic request trace.

    Prompt and generation lengths are drawn from log-normal distributions
    with the requested means, then clamped so every request fits the model's
    context window; arrivals follow a Poisson process.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if mean_prefill <= 0 or mean_decode <= 0:
        raise ValueError("means must be positive")
    if max_seq_len <= 2:
        raise ValueError("max_seq_len too small")
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    arrival = 0.0
    for request_id in range(num_requests):
        # draw the shape before the arrival gap: this is the historical RNG
        # consumption order, so seeded traces stay bit-identical
        scenario = _draw_scenario(rng, mean_prefill, mean_decode, max_seq_len)
        arrival += float(rng.exponential(1.0 / arrival_rate_per_s))
        requests.append(Request(request_id=request_id, arrival_s=arrival,
                                scenario=scenario))
    return RequestTrace(requests=requests)


def _draw_scenario(rng: np.random.Generator, mean_prefill: int, mean_decode: int,
                   max_seq_len: int) -> Scenario:
    """Draw one request shape from the clamped log-normal length model."""
    prefill = int(np.clip(rng.lognormal(np.log(mean_prefill), 0.5), 1,
                          max_seq_len // 2))
    decode_cap = max_seq_len - prefill - 1
    decode = int(np.clip(rng.lognormal(np.log(mean_decode), 0.5), 1, decode_cap))
    return Scenario(prefill, decode)


def bursty_trace(num_requests: int, seed: int = 0,
                 mean_prefill: int = 64, mean_decode: int = 256,
                 max_seq_len: int = 1024,
                 burst_size: int = 8,
                 burst_rate_per_s: float = 20.0,
                 idle_gap_s: float = 4.0) -> RequestTrace:
    """Bursty arrivals: tight clusters of requests separated by idle gaps.

    Within a burst, inter-arrival times are exponential at
    ``burst_rate_per_s`` (much faster than an instance can drain), then the
    trace goes quiet for an exponential gap with mean ``idle_gap_s``.  This is
    the arrival pattern where continuous batching shines: an exclusive
    instance serializes the burst while a batching engine absorbs it.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    if burst_rate_per_s <= 0:
        raise ValueError("burst_rate_per_s must be positive")
    if idle_gap_s < 0:
        raise ValueError("idle_gap_s must be non-negative")
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    arrival = 0.0
    while len(requests) < num_requests:
        burst = min(burst_size, num_requests - len(requests))
        for _ in range(burst):
            arrival += float(rng.exponential(1.0 / burst_rate_per_s))
            requests.append(Request(
                request_id=len(requests), arrival_s=arrival,
                scenario=_draw_scenario(rng, mean_prefill, mean_decode,
                                        max_seq_len)))
        arrival += float(rng.exponential(idle_gap_s))
    return RequestTrace(requests=requests)


@dataclass(frozen=True)
class TenantSpec:
    """Traffic profile of one tenant in a multi-tenant trace."""

    name: str
    arrival_rate_per_s: float = 1.0
    mean_prefill: int = 64
    mean_decode: int = 256
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.mean_prefill <= 0 or self.mean_decode <= 0:
            raise ValueError("means must be positive")


#: Default tenant mix: a latency-sensitive interactive tenant, a bulk batch
#: tenant with long generations, and a background low-priority tenant.
DEFAULT_TENANTS: tuple = (
    TenantSpec("interactive", arrival_rate_per_s=1.5, mean_prefill=48,
               mean_decode=96, priority=2),
    TenantSpec("batch", arrival_rate_per_s=0.5, mean_prefill=128,
               mean_decode=384, priority=1),
    TenantSpec("background", arrival_rate_per_s=0.25, mean_prefill=64,
               mean_decode=256, priority=0),
)


def multi_tenant_trace(num_requests: int, seed: int = 0,
                       tenants: Sequence[TenantSpec] = DEFAULT_TENANTS,
                       max_seq_len: int = 1024) -> RequestTrace:
    """Merge independent Poisson streams of several tenants into one trace.

    Each tenant has its own arrival rate, request-shape distribution and
    priority; the merged trace is sorted by arrival time and request ids are
    assigned in arrival order (so FIFO order equals id order).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not tenants:
        raise ValueError("need at least one tenant")
    rng = np.random.default_rng(seed)
    total_rate = sum(t.arrival_rate_per_s for t in tenants)
    # expected per-tenant share of the request budget
    per_tenant = [max(1, round(num_requests * t.arrival_rate_per_s / total_rate))
                  for t in tenants]
    # settle rounding drift on the largest stream so the trace has exactly
    # the requested number of requests
    while sum(per_tenant) > num_requests:
        per_tenant[per_tenant.index(max(per_tenant))] -= 1
    while sum(per_tenant) < num_requests:
        per_tenant[per_tenant.index(max(per_tenant))] += 1
    merged: List[Request] = []
    for spec, count in zip(tenants, per_tenant):
        arrival = 0.0
        for _ in range(count):
            arrival += float(rng.exponential(1.0 / spec.arrival_rate_per_s))
            merged.append(Request(
                request_id=0, arrival_s=arrival,
                scenario=_draw_scenario(rng, spec.mean_prefill,
                                        spec.mean_decode, max_seq_len),
                tenant=spec.name, priority=spec.priority))
    merged.sort(key=lambda r: r.arrival_s)
    requests = [Request(request_id=i, arrival_s=r.arrival_s, scenario=r.scenario,
                        tenant=r.tenant, priority=r.priority)
                for i, r in enumerate(merged)]
    return RequestTrace(requests=requests)
