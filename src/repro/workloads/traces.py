"""Synthetic request traces.

The paper evaluates isolated requests; serving deployments see streams of
requests with varying prompt/generation lengths.  The trace generator here is
used by the serving-oriented example to estimate sustained throughput and
energy of a LoopLynx deployment over a request mix, and by tests of the
analysis utilities.  Lengths are drawn from log-normal-ish distributions
clamped to the model's context window, with a fixed seed for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.workloads.scenarios import Scenario


@dataclass(frozen=True)
class Request:
    """One request in a trace."""

    request_id: int
    arrival_s: float
    scenario: Scenario

    @property
    def prefill_len(self) -> int:
        return self.scenario.prefill_len

    @property
    def decode_len(self) -> int:
        return self.scenario.decode_len


@dataclass
class RequestTrace:
    """An ordered list of requests with arrival times."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def total_prefill_tokens(self) -> int:
        return sum(r.prefill_len for r in self.requests)

    @property
    def total_decode_tokens(self) -> int:
        return sum(r.decode_len for r in self.requests)

    @property
    def duration_s(self) -> float:
        if not self.requests:
            return 0.0
        return max(r.arrival_s for r in self.requests)

    def scenarios(self) -> List[Scenario]:
        return [r.scenario for r in self.requests]


def synthetic_trace(num_requests: int, seed: int = 0,
                    mean_prefill: int = 64, mean_decode: int = 256,
                    max_seq_len: int = 1024,
                    arrival_rate_per_s: float = 1.0) -> RequestTrace:
    """Generate a reproducible synthetic request trace.

    Prompt and generation lengths are drawn from log-normal distributions
    with the requested means, then clamped so every request fits the model's
    context window; arrivals follow a Poisson process.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if mean_prefill <= 0 or mean_decode <= 0:
        raise ValueError("means must be positive")
    if max_seq_len <= 2:
        raise ValueError("max_seq_len too small")
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    arrival = 0.0
    for request_id in range(num_requests):
        prefill = int(np.clip(rng.lognormal(np.log(mean_prefill), 0.5), 1,
                              max_seq_len // 2))
        decode_cap = max_seq_len - prefill - 1
        decode = int(np.clip(rng.lognormal(np.log(mean_decode), 0.5), 1, decode_cap))
        arrival += float(rng.exponential(1.0 / arrival_rate_per_s))
        requests.append(Request(request_id=request_id, arrival_s=arrival,
                                scenario=Scenario(prefill, decode)))
    return RequestTrace(requests=requests)
