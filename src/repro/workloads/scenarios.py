"""``[prefill : decode]`` scenario definitions (the Fig. 8 x-axis).

The paper compares LoopLynx and the A100 across "various [input : output]
length settings", calling out ``[32:512]``, ``[64:512]``, ``[128:512]`` as
long-generation scenarios (code generation, chatbots) where LoopLynx wins and
``[128:32]`` as the prefill-heavy setting where the A100's batched prefill
keeps it ahead.  :data:`FIG8_SCENARIOS` is the scenario set used by the
Fig. 8 reproduction; the helpers generate themed subsets and parameter sweeps
for the examples and the design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Scenario:
    """One request shape: prompt length and generation length."""

    prefill_len: int
    decode_len: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.prefill_len <= 0:
            raise ValueError("prefill_len must be positive")
        if self.decode_len < 0:
            raise ValueError("decode_len cannot be negative")

    @property
    def label(self) -> str:
        return self.name or f"[{self.prefill_len}:{self.decode_len}]"

    @property
    def total_tokens(self) -> int:
        return self.prefill_len + self.decode_len

    @property
    def decode_heavy(self) -> bool:
        """True when generation dominates the request (the regime the paper's
        introduction motivates: chatbots, code generation)."""
        return self.decode_len >= self.prefill_len


def scenario_label(prefill_len: int, decode_len: int) -> str:
    return f"[{prefill_len}:{decode_len}]"


#: Scenario set used to regenerate Fig. 8.  It spans the paper's named
#: settings (the three long-generation points and the prefill-heavy
#: ``[128:32]`` crossover) plus two intermediate points so the trend over the
#: x-axis is visible.
FIG8_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(128, 32),
    Scenario(32, 128),
    Scenario(64, 128),
    Scenario(32, 512),
    Scenario(64, 512),
    Scenario(128, 512),
)


def chatbot_scenarios() -> List[Scenario]:
    """Conversational workloads: short-to-medium prompts, long replies."""
    return [
        Scenario(32, 256, name="short question"),
        Scenario(64, 384, name="follow-up with history"),
        Scenario(128, 512, name="long conversation turn"),
    ]


def code_generation_scenarios() -> List[Scenario]:
    """Code-assistant workloads: medium prompts, long completions."""
    return [
        Scenario(64, 512, name="function completion"),
        Scenario(128, 512, name="file-level completion"),
        Scenario(96, 256, name="docstring generation"),
    ]


def scenario_sweep(prefill_lengths: Sequence[int],
                   decode_lengths: Sequence[int]) -> List[Scenario]:
    """Cartesian sweep of prompt and generation lengths."""
    scenarios: List[Scenario] = []
    for prefill in prefill_lengths:
        for decode in decode_lengths:
            scenarios.append(Scenario(prefill, decode))
    return scenarios
