"""Workload generation: ``[prefill : decode]`` scenarios and request traces."""

from repro.workloads.scenarios import (
    FIG8_SCENARIOS,
    Scenario,
    chatbot_scenarios,
    code_generation_scenarios,
    scenario_label,
    scenario_sweep,
)
from repro.workloads.traces import (
    DEFAULT_BURSTY_TENANTS,
    DEFAULT_TENANTS,
    REPLAY_COLUMNS,
    BurstyTenantSpec,
    Request,
    RequestTrace,
    TenantSpec,
    bursty_multi_tenant_trace,
    bursty_trace,
    multi_tenant_trace,
    replay_trace,
    synthetic_trace,
)

__all__ = [
    "DEFAULT_BURSTY_TENANTS",
    "DEFAULT_TENANTS",
    "REPLAY_COLUMNS",
    "BurstyTenantSpec",
    "TenantSpec",
    "bursty_multi_tenant_trace",
    "bursty_trace",
    "multi_tenant_trace",
    "replay_trace",
    "FIG8_SCENARIOS",
    "Scenario",
    "chatbot_scenarios",
    "code_generation_scenarios",
    "scenario_label",
    "scenario_sweep",
    "Request",
    "RequestTrace",
    "synthetic_trace",
]
