"""Queueing simulation of a pool of LoopLynx instances serving a trace.

Each *instance* is one LoopLynx deployment (1, 2 or 4 accelerator nodes).
The historical model — and the ``policy="fifo-exclusive"`` compatibility mode
kept here — serves one request at a time per instance, so the pool behaves as
a multi-server FIFO queue over whole-request service times from the cycle
model (:meth:`repro.core.multi_node.LoopLynxSystem.run_scenario`), memoized
because traces repeat request shapes.

Any other ``policy`` (``fifo``, ``sjf``, ``priority``) delegates to the
token-level engine (:class:`repro.serving.engine.TokenServingEngine`), which
schedules at decode-step granularity with continuous batching.  With batching
disabled (``max_batch_size=1``, whole-prompt prefill, exact context timing)
the engine reproduces the FIFO-exclusive numbers — a property the test suite
checks.

The simulation is event-based over request arrivals and completions — no
wall-clock time is involved, so results are exact and reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.multi_node import LoopLynxSystem
from repro.serving.metrics import ServingMetrics
from repro.workloads.traces import Request, RequestTrace

if TYPE_CHECKING:  # pragma: no cover - engine imports are lazy here
    from repro.serving.engine import ServedRequest, TokenServingEngine

#: Policy name of the whole-request, one-request-per-instance FIFO mode.
FIFO_EXCLUSIVE = "fifo-exclusive"


@dataclass(frozen=True)
class CompletedRequest:
    """Timing record of one served request."""

    request_id: int
    instance_id: int
    arrival_s: float
    start_s: float
    finish_s: float
    prefill_len: int
    decode_len: int

    @property
    def queueing_delay_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_time_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def end_to_end_latency_s(self) -> float:
        return self.finish_s - self.arrival_s


class ServingSimulator:
    """Multi-instance serving simulation with a policy switch.

    ``policy="fifo-exclusive"`` (the default) is the original whole-request
    multi-server FIFO queue; other policies run the token-level engine with
    its default continuous-batching configuration.  Extra keyword arguments
    are forwarded to :class:`~repro.serving.engine.TokenServingEngine`.
    """

    def __init__(self, num_instances: int = 1, num_nodes_per_instance: int = 2,
                 system: Optional[LoopLynxSystem] = None,
                 policy: str = FIFO_EXCLUSIVE, **engine_kwargs: Any) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances
        self.num_nodes_per_instance = num_nodes_per_instance
        self.system = system or LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        self.policy = policy
        self._engine: Optional["TokenServingEngine"] = None
        if policy != FIFO_EXCLUSIVE:
            from repro.serving.engine import TokenServingEngine

            self._engine = TokenServingEngine(
                num_instances=num_instances,
                num_nodes_per_instance=num_nodes_per_instance,
                system=self.system, policy=policy, **engine_kwargs)
        elif engine_kwargs:
            raise ValueError(
                "engine options are only valid with token-level policies, "
                f"not {FIFO_EXCLUSIVE!r}")
        self._service_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def service_time_s(self, prefill_len: int, decode_len: int) -> float:
        """Service time of one request (memoized cycle-model evaluation)."""
        key = (prefill_len, decode_len)
        if key not in self._service_cache:
            report = self.system.run_scenario(prefill_len, decode_len)
            self._service_cache[key] = report.total_ms / 1e3
        return self._service_cache[key]

    def run(self, trace: RequestTrace
            ) -> Tuple[ServingMetrics,
                       Union[Sequence[CompletedRequest],
                             Sequence["ServedRequest"]]]:
        """Serve the trace and return aggregate metrics plus per-request
        records (:class:`CompletedRequest` in FIFO-exclusive mode,
        :class:`~repro.serving.engine.ServedRequest` otherwise)."""
        if len(trace) == 0:
            raise ValueError("trace is empty")
        if self._engine is not None:
            return self._engine.run(trace)
        # each instance is represented by the time it becomes free
        free_at = [(0.0, instance_id) for instance_id in range(self.num_instances)]
        heapq.heapify(free_at)

        completed: List[CompletedRequest] = []
        for request in sorted(trace, key=lambda r: r.arrival_s):
            instance_free_at, instance_id = heapq.heappop(free_at)
            start = max(request.arrival_s, instance_free_at)
            service = self.service_time_s(request.prefill_len, request.decode_len)
            finish = start + service
            heapq.heappush(free_at, (finish, instance_id))
            completed.append(CompletedRequest(
                request_id=request.request_id,
                instance_id=instance_id,
                arrival_s=request.arrival_s,
                start_s=start,
                finish_s=finish,
                prefill_len=request.prefill_len,
                decode_len=request.decode_len,
            ))

        makespan = max(record.finish_s for record in completed)
        metrics = ServingMetrics(
            num_requests=len(completed),
            num_instances=self.num_instances,
            num_nodes_per_instance=self.num_nodes_per_instance,
            makespan_s=makespan,
            generated_tokens=sum(record.decode_len for record in completed),
            queueing_delays_s=[record.queueing_delay_s for record in completed],
            end_to_end_latencies_s=[record.end_to_end_latency_s for record in completed],
            service_times_s=[record.service_time_s for record in completed],
        )
        return metrics, completed

    # ------------------------------------------------------------------
    def capacity_requests_per_second(self, mean_prefill: int, mean_decode: int) -> float:
        """Rough sustained capacity of the pool for an average request shape."""
        service = self.service_time_s(mean_prefill, mean_decode)
        if service <= 0:
            return 0.0
        return self.num_instances / service
