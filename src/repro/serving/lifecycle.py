"""The request lifecycle, declared as data.

Every request the serving engine touches moves through one state
machine: it arrives **queued**, computes its prompt (**prefilling**),
optionally travels between instances (**handoff** — the disaggregated
prefill→decode KV transfer), generates (**decoding**), and leaves
**finished** — with preemption detours through **evicted-swap** (paged
``swap`` mode parks the KV blocks in the host tier) or
**evicted-recompute** (every other mode discards progress).  Before this
module the machine was implicit in scattered attribute flips across
``engine.py``/``instance.py``; now it is declared once, here, as the
:data:`EDGES` table, and *used three ways*:

* **runtime enforcement** — every phase change goes through
  :func:`transition`, which validates the edge against the table and
  raises :class:`~repro.errors.InvariantError` on an undeclared or
  out-of-phase move (always on: the check is one dict lookup per
  transition, and transitions are per-request-lifecycle events, not
  per-step events);
* **static exhaustiveness** — ``tools/simcheck.py``'s L-pass parses this
  file's :data:`EDGES` literal plus every ``transition(...)`` call site
  and proves the two match: no undeclared transition (L001), no dead
  edge (L002), no transition without its accounting hook (L003);
* **runtime exhaustiveness** — the lifecycle test walks a trace mix
  (disaggregated + prefix-sharing + mixed prefill + both preemption
  modes) under :func:`record_transitions` and asserts the observed edge
  set equals the declared one, so the spec can neither under- nor
  over-declare.

The phase attribute is bookkeeping *about* the simulation, not part of
it: transitions never influence pricing or event ordering, so enabling
the observer or comparing phases cannot perturb a single timestamp
(golden-timestamp tests pin this).

Role-gate edges (PR 5): on a disaggregated cluster a prefill-role
instance exports a finished prompt's KV (``handoff_export``); the
transfer lands it in the target's host tier, which is exactly the
swapped-out disposition (``handoff_arrive`` → **evicted-swap**), and the
decode instance then resumes it like any swapped victim
(``resume_swap_decode``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.instance import RequestState

__all__ = [
    "QUEUED", "PREFILLING", "HANDOFF", "DECODING", "FINISHED",
    "EVICTED_SWAP", "EVICTED_RECOMPUTE", "PHASES", "INITIAL_PHASE",
    "TERMINAL_PHASES", "LifecycleEdge", "EDGES", "EDGES_BY_NAME",
    "transition", "record_transitions",
]

# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------

#: Waiting in the shared queue, prompt not yet computed.
QUEUED = "queued"
#: In a batch with prompt tokens still to compute.
PREFILLING = "prefilling"
#: KV in flight between a prefill-role and a decode-capable instance.
HANDOFF = "handoff"
#: In a batch, prompt done, generating tokens.
DECODING = "decoding"
#: All tokens produced; the request left the system.
FINISHED = "finished"
#: Preempted with KV parked in an instance's host tier (paged ``swap``
#: mode); only the instance holding the blocks can resume it.
EVICTED_SWAP = "evicted-swap"
#: Preempted with KV discarded and progress reset; re-prefills anywhere.
EVICTED_RECOMPUTE = "evicted-recompute"

PHASES: Tuple[str, ...] = (QUEUED, PREFILLING, HANDOFF, DECODING, FINISHED,
                           EVICTED_SWAP, EVICTED_RECOMPUTE)

#: Phase a freshly arrived :class:`RequestState` starts in.  Constructors
#: assign this directly (the only sanctioned bare ``.phase`` write —
#: simcheck's L-pass rejects any other).
INITIAL_PHASE = QUEUED

TERMINAL_PHASES: Tuple[str, ...] = (FINISHED,)


# ---------------------------------------------------------------------------
# edges
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LifecycleEdge:
    """One declared transition.

    ``hook`` names the accounting attribute/call that must appear in the
    function implementing the edge (simcheck rule L003): an eviction
    that never counts ``swap_outs`` or a handoff that never counts
    ``handoff_out_count`` is a metrics bug even when the state machine
    itself is respected.  ``None`` means the edge carries no accounting
    obligation beyond the phase change.
    """

    name: str
    src: str
    dst: str
    hook: Optional[str] = None
    doc: str = ""


# NOTE: simcheck parses this literal (names, phases, hooks) straight out
# of the AST — keep every entry a plain ``LifecycleEdge(...)`` call with
# literal arguments.
EDGES: Tuple[LifecycleEdge, ...] = (
    LifecycleEdge(
        "admit", QUEUED, PREFILLING, hook="admission_count",
        doc="a fresh request enters a batch and starts its prompt "
            "(prefix-sharing may credit matched positions, but at least "
            "one prompt token always remains to compute)"),
    LifecycleEdge(
        "prefill_complete", PREFILLING, DECODING,
        doc="the prompt finished on a decode-capable instance; the "
            "request keeps its batch slot and starts generating"),
    LifecycleEdge(
        "finish_prefill_only", PREFILLING, FINISHED, hook="_finish",
        doc="a request with decode_len == 0 is done the moment its "
            "prompt completes"),
    LifecycleEdge(
        "finish_decode", DECODING, FINISHED, hook="_finish",
        doc="the last generated token completes the request"),
    LifecycleEdge(
        "handoff_export", PREFILLING, HANDOFF, hook="handoff_out_count",
        doc="a prefill-role instance exports the finished prompt's KV "
            "blocks over PCIe toward a decode-capable instance"),
    LifecycleEdge(
        "handoff_arrive", HANDOFF, EVICTED_SWAP,
        doc="the handoff transfer landed: the KV now sits in the target "
            "instance's host tier — exactly the swapped-out disposition "
            "— and the request re-enters the shared queue pinned to it"),
    LifecycleEdge(
        "evict_swap_prefill", PREFILLING, EVICTED_SWAP, hook="swap_outs",
        doc="preempted mid-prompt in paged swap mode; blocks park in "
            "this instance's host tier"),
    LifecycleEdge(
        "evict_swap_decode", DECODING, EVICTED_SWAP, hook="swap_outs",
        doc="preempted mid-generation in paged swap mode"),
    LifecycleEdge(
        "evict_recompute_prefill", PREFILLING, EVICTED_RECOMPUTE,
        hook="reset_progress",
        doc="preempted mid-prompt with KV discarded; the prompt will be "
            "recomputed from scratch"),
    LifecycleEdge(
        "evict_recompute_decode", DECODING, EVICTED_RECOMPUTE,
        hook="reset_progress",
        doc="preempted mid-generation with KV discarded"),
    LifecycleEdge(
        "resume_swap_prefill", EVICTED_SWAP, PREFILLING, hook="swap_in",
        doc="a swapped victim re-admits on the instance holding its "
            "blocks with prompt tokens still to compute"),
    LifecycleEdge(
        "resume_swap_decode", EVICTED_SWAP, DECODING, hook="swap_in",
        doc="a swapped victim (or a handed-off prompt) re-admits with "
            "its prompt already computed and resumes generation"),
    LifecycleEdge(
        "readmit_recompute", EVICTED_RECOMPUTE, PREFILLING,
        hook="admission_count",
        doc="a recompute victim re-admits; progress was reset, so it "
            "always starts back in prefill"),
)

EDGES_BY_NAME: Dict[str, LifecycleEdge] = {edge.name: edge for edge in EDGES}

if len(EDGES_BY_NAME) != len(EDGES):  # pragma: no cover - spec authoring bug
    raise InvariantError("duplicate lifecycle edge names in EDGES")


# ---------------------------------------------------------------------------
# runtime enforcement + observation
# ---------------------------------------------------------------------------

#: Observers appended by :func:`record_transitions`; list order is the
#: registration order, so notification order is deterministic.
_observers: List[Callable[[int, LifecycleEdge], None]] = []


def transition(state: "RequestState", edge_name: str) -> None:
    """Move ``state`` along the declared edge ``edge_name``.

    Raises :class:`InvariantError` when the edge is undeclared or the
    request is not in the edge's source phase — the runtime twin of
    simcheck's static L001 check.
    """
    edge = EDGES_BY_NAME.get(edge_name)
    if edge is None:
        raise InvariantError(
            f"undeclared lifecycle edge {edge_name!r}; declared: "
            f"{', '.join(sorted(EDGES_BY_NAME))}")
    if state.phase != edge.src:
        raise InvariantError(
            f"request {state.request.request_id} takes edge {edge_name!r} "
            f"out of phase {state.phase!r}; the declared edge departs "
            f"{edge.src!r}")
    state.phase = edge.dst
    if _observers:
        for callback in _observers:
            callback(state.request.request_id, edge)


@contextmanager
def record_transitions() -> Iterator[List[Tuple[int, str]]]:
    """Collect every ``(request_id, edge_name)`` transition taken while
    the context is open (test instrumentation; the engine itself never
    registers observers, so production runs pay only an emptiness
    check)."""
    seen: List[Tuple[int, str]] = []

    def _callback(request_id: int, edge: LifecycleEdge) -> None:
        seen.append((request_id, edge.name))

    _observers.append(_callback)
    try:
        yield seen
    finally:
        _observers.remove(_callback)
