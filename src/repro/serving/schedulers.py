"""Pluggable scheduling policies for the token-level serving engine.

A policy owns the *waiting* queue: the engine pushes requests on arrival (and
back on preemption, and again when a prefill→decode KV handoff lands on a
disaggregated cluster — a handed-off request competes under the same
ordering as everything else, it is merely pinned to the instance holding
its blocks) and, at every step boundary, admits from the head of the
queue into an instance's running batch.  Policies are strictly head-of-line:
when the head cannot be admitted (no batch slot, KV capacity exhausted, or
an instance whose serving role does not match the head) the engine stops
admitting there until the situation changes, which keeps every policy
starvation-free with respect to its own ordering.

Provided policies:

* :class:`FifoScheduler` — arrival order;
* :class:`ShortestJobFirstScheduler` — fewest total tokens first (the trace
  carries oracle generation lengths, standing in for a length predictor);
* :class:`PriorityScheduler` — higher ``Request.priority`` first, FIFO within
  a class; may preempt a strictly lower-priority running request when the
  batch is full;
* :class:`KVAdmissionController` — not an ordering but an admission gate: a
  request only joins the batch when its worst-case KV-cache reservation
  (``prefill_len + decode_len`` cached positions) fits the instance's free
  capacity, computed from :class:`repro.memory.kv_cache.KVCacheLayout` against
  the node's share of the Alveo U50 HBM
  (:func:`repro.memory.hbm.kv_budget_bytes_per_node`).  This is the
  *reservation* KV regime; the *paged* regime
  (:class:`repro.memory.paged_kv.PagedKVManager`) gates on prompt-sized
  block allocations instead and lives with the block manager it needs.

All scheduler interactions happen at **step boundaries** (between decode
steps / prefill chunks of an instance): the engine pushes on arrival and
preemption, peeks/pops during admission, and never reorders a running batch
mid-step.  Quantities are tokens (lengths), seconds (arrival times) and
plain integers (priorities; larger = more urgent).
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.memory.hbm import kv_budget_bytes_per_node
from repro.memory.kv_cache import KVCacheLayout
from repro.workloads.traces import Request

if TYPE_CHECKING:  # pragma: no cover - schedulers is imported by instance
    from repro.core.multi_node import LoopLynxSystem
    from repro.serving.instance import RequestState

#: Admission-order key: heterogeneous tuples of ints/floats compared
#: lexicographically; the policy heap adds a sequence number for ties.
SortKey = Tuple[float, ...]

#: Policy names accepted by the engine/CLI (`fifo-exclusive` is handled by
#: :class:`repro.serving.simulator.ServingSimulator`).
POLICY_NAMES = ("fifo", "sjf", "priority")


class SchedulerPolicy:
    """Base class: a keyed heap over waiting request states.

    Subclasses define :meth:`sort_key`; the insertion sequence number breaks
    ties so equal-key requests stay in push order.
    """

    name = "base"

    #: True when :meth:`preemption_victim` can never return a victim — the
    #: engine's fast-forward optimisation relies on this to prove that a
    #: full batch makes step boundaries inert (nothing to admit, nothing to
    #: preempt).  Subclasses that override :meth:`preemption_victim` must
    #: clear it.
    never_preempts = True

    def __init__(self) -> None:
        self._heap: List[Tuple[SortKey, int, "RequestState"]] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def sort_key(self, entry: "RequestState") -> SortKey:
        """Admission-order key for one waiting entry (an engine request
        state exposing ``.request``); smaller sorts first."""
        raise NotImplementedError

    def push(self, entry: "RequestState") -> None:
        """Enqueue a waiting entry (called on arrival and on preemption; a
        preempted entry competes again under the same ordering)."""
        heapq.heappush(self._heap, (self.sort_key(entry), next(self._seq), entry))

    def peek(self) -> Optional["RequestState"]:
        """The next request to admit, or None when the queue is empty.

        Policies are strictly head-of-line: the engine admits (or blocks on)
        exactly this entry at each step boundary.
        """
        return self._heap[0][2] if self._heap else None

    def pop(self) -> "RequestState":
        """Remove and return the head (the entry :meth:`peek` showed)."""
        if not self._heap:
            raise IndexError("scheduler queue is empty")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        """Number of waiting (not running) entries."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def preemption_victim(self, running: List["RequestState"],
                          head: "RequestState"
                          ) -> Optional["RequestState"]:
        """A running entry the waiting ``head`` may displace, or None.

        Consulted at a step boundary when the head is blocked (no batch
        slot, or KV capacity exhausted).  What eviction *costs* the victim
        is the engine's business: reservation mode discards its KV cache and
        recomputes prefill; paged ``swap`` mode parks its blocks in host
        memory and resumes it later without recomputation.

        The default (FIFO, SJF) never preempts: a request that joined the
        batch keeps its KV capacity until it finishes.
        """
        return None


class FifoScheduler(SchedulerPolicy):
    """Admit in arrival order."""

    name = "fifo"

    def sort_key(self, entry: "RequestState") -> SortKey:
        return (entry.request.arrival_s, entry.request.request_id)


class ShortestJobFirstScheduler(SchedulerPolicy):
    """Admit the request with the fewest total tokens first.

    Uses the trace's known ``prefill_len + decode_len`` as the job size (an
    oracle standing in for the output-length predictors production stacks
    train); ties fall back to arrival order.
    """

    name = "sjf"

    def sort_key(self, entry: "RequestState") -> SortKey:
        return (entry.request.total_tokens, entry.request.arrival_s,
                entry.request.request_id)


class PriorityScheduler(SchedulerPolicy):
    """Admit the highest-priority request first (FIFO within a class) and
    preempt strictly lower-priority running work when the batch is full."""

    name = "priority"
    never_preempts = False

    def sort_key(self, entry: "RequestState") -> SortKey:
        return (-entry.request.priority, entry.request.arrival_s,
                entry.request.request_id)

    def preemption_victim(self, running: List["RequestState"],
                          head: "RequestState"
                          ) -> Optional["RequestState"]:
        candidates = [e for e in running
                      if e.request.priority < head.request.priority]
        if not candidates:
            return None
        # evict the lowest class; within it, the most recently admitted entry
        # has the least progress to throw away
        return min(candidates,
                   key=lambda e: (e.request.priority, -e.last_admitted_s))


def make_scheduler(policy: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by name."""
    policies = {
        "fifo": FifoScheduler,
        "sjf": ShortestJobFirstScheduler,
        "priority": PriorityScheduler,
    }
    if policy not in policies:
        raise ValueError(f"unknown scheduler policy {policy!r}; "
                         f"known: {', '.join(sorted(policies))}")
    return policies[policy]()


class KVAdmissionController:
    """KV-capacity admission gate for one instance class.

    Capacity is accounted in cached token positions per node: admitting a
    request reserves its worst-case context (``prefill_len + decode_len``)
    up front, so a running batch can never overflow the cache mid-request and
    excess requests queue instead.  The default budget is the node's share of
    the card's HBM minus the resident weights
    (:func:`repro.memory.hbm.kv_budget_bytes_per_node`).
    """

    def __init__(self, layout: KVCacheLayout,
                 budget_bytes: Optional[int] = None) -> None:
        self.layout = layout
        if budget_bytes is None:
            budget_bytes = layout.capacity_bytes_per_node()
        if budget_bytes < 0:
            raise ValueError("budget cannot be negative")
        self.budget_bytes = int(budget_bytes)
        self.capacity_tokens = layout.max_cached_tokens(self.budget_bytes)

    @staticmethod
    def for_system(system: "LoopLynxSystem",
                   budget_bytes: Optional[int] = None,
                   kv_bytes_per_element: int = 1) -> "KVAdmissionController":
        """Build a controller for a :class:`~repro.core.multi_node.LoopLynxSystem`.

        ``budget_bytes`` defaults to the node's HBM share net of weights.
        """
        layout = KVCacheLayout.for_model(
            system.config.model, num_nodes=system.num_nodes,
            bytes_per_element=kv_bytes_per_element)
        if budget_bytes is None:
            budget_bytes = kv_budget_bytes_per_node(
                system.node.weight_bytes_per_token(),
                nodes_per_card=system.config.nodes_per_card)
        return KVAdmissionController(layout, budget_bytes)

    # ------------------------------------------------------------------
    def reservation_tokens(self, request: Request) -> int:
        """Cached positions a request occupies at its maximum context."""
        return min(request.prefill_len + request.decode_len,
                   self.layout.max_seq_len)

    def fits(self, request: Request, used_tokens: int) -> bool:
        """Admission gate, evaluated at step boundaries: does the request's
        worst-case reservation fit next to ``used_tokens`` already-reserved
        cached positions (both in tokens per node)?"""
        return used_tokens + self.reservation_tokens(request) <= self.capacity_tokens

    def validate(self, requests: Iterable[Request]) -> None:
        """Reject traces containing a request that could never be admitted
        (it would block the queue head forever)."""
        for request in requests:
            if self.reservation_tokens(request) > self.capacity_tokens:
                raise ValueError(
                    f"request {request.request_id} needs "
                    f"{self.reservation_tokens(request)} cached tokens but the "
                    f"KV budget only holds {self.capacity_tokens}")
