"""Token-level serving engine with continuous batching and preemption.

Where :class:`repro.serving.simulator.ServingSimulator` treats each request as
one opaque service-time blob, this engine advances every instance one *step*
at a time — a prefill chunk for one request, a single decode step for the
whole running batch, or (``prefill_mode="mixed"``) one token-budgeted step
that carries a decode token per running request *plus* prefill-chunk tokens
from requests still prefilling — using the step-level core API
(:meth:`repro.core.multi_node.LoopLynxSystem.decode_step_latency_s` and
:meth:`~repro.core.multi_node.LoopLynxSystem.mixed_step_latency_s`).  That
granularity is what makes production serving behaviour expressible:

* **continuous batching** — requests join the running batch at any step
  boundary and leave the moment their last token is generated (no
  batch-of-requests barrier);
* **mixed prefill/decode steps** — in ``prefill_mode="mixed"`` prompts
  stream in alongside live decodes under a per-step token budget (chunked
  prefill), instead of stalling the whole batch while one prompt prefills
  exclusively;
* **pluggable scheduling** — admission order comes from a
  :class:`~repro.serving.schedulers.SchedulerPolicy` (FIFO, SJF, priority);
* **KV-capacity admission** — two regimes gate admission against the
  per-node HBM cache capacity: *reservation*
  (:class:`~repro.serving.schedulers.KVAdmissionController`, worst-case
  ``prefill + decode`` positions reserved up front) and *paged*
  (:class:`~repro.memory.paged_kv.PagedKVManager`, fixed-size token blocks
  allocated on demand as the context actually grows);
* **preemption** — a blocked head may displace running work.  In
  reservation mode (and paged ``recompute`` mode) the victim loses its KV
  state and restarts from prefill when re-admitted; in paged ``swap`` mode
  the victim's blocks are moved to a host-memory tier over PCIe and the
  request later resumes exactly where it stopped;
* **token-level metrics** — time-to-first-token and time-per-output-token
  exist because individual token emissions have timestamps.

Request lifecycle (every transition happens at a step boundary)::

               push                admit                 last token
    arrival ─────────▶ QUEUED ───────────────▶ RUNNING ────────────▶ FINISHED
                         ▲                       │  ▲
                         │   preempt (evict)     │  │ re-admit
                         │                       ▼  │   · swap mode: blocks
                         └──────────────── PREEMPTED│     swap back in, no
                              · swap: blocks → host │     recompute
                              · recompute: KV freed,│   · recompute mode:
                                progress reset      │     prefill restarts

The discrete-event loop reuses the heap/sequence-counter idiom of
:mod:`repro.dataflow.engine`: a single time-ordered event heap over request
arrivals and per-instance step completions, so results are exact and
reproducible (no wall-clock time).

Units, throughout this module: timestamps and durations are **seconds** on
the simulated clock (request arrival defines t=0 ordering), lengths are
**tokens** (prompt/prefill and generated/decode counts), KV quantities are
**cached token positions per node** (reservation mode) or **fixed-size
blocks per node** (paged mode), and swap traffic is **bytes summed over all
nodes**.

Timing conventions match the whole-request simulator so the two agree when
batching is off: prefill emits no output token (the paper's token-serial
pipeline), the first output token appears at the end of the first decode
step, and a request with ``decode_len`` tokens runs ``decode_len`` decode
steps.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.multi_node import LoopLynxSystem
from repro.memory.paged_kv import PagedKVManager
from repro.serving.metrics import ServingMetrics
from repro.serving.schedulers import (
    KVAdmissionController,
    SchedulerPolicy,
    make_scheduler,
)
from repro.workloads.traces import Request, RequestTrace

#: Accepted values for ``TokenServingEngine(preemption_mode=...)`` (paged
#: KV mode only; reservation mode always recomputes).
PREEMPTION_MODES = ("swap", "recompute")

#: Accepted values for ``TokenServingEngine(prefill_mode=...)``:
#: ``"exclusive"`` runs one request's prefill chunk per step (all co-resident
#: decodes stall while a prompt streams in — the PR 1 regime, kept
#: bit-identical); ``"mixed"`` packs one decode token per running request
#: plus prefill-chunk tokens into a single token-budgeted step, so prompts
#: stream in alongside live decodes.
PREFILL_MODES = ("exclusive", "mixed")

#: Default token budget of one mixed step (decode tokens + prefill-chunk
#: tokens); production chunked-prefill schedulers run 256–2048.
DEFAULT_MIXED_STEP_TOKEN_BUDGET = 256


@dataclass(frozen=True)
class ServedRequest:
    """Token-level timing record of one served request.

    All timestamps are seconds on the simulated clock; ``prefill_len`` and
    ``decode_len`` are token counts.  ``preemptions`` counts every eviction
    from a running batch; ``swap_outs`` counts the subset whose KV blocks
    were swapped to host memory instead of discarded (paged ``swap`` mode),
    so ``preemptions - swap_outs`` prefills were recomputed.
    """

    request_id: int
    instance_id: int
    arrival_s: float
    admitted_s: float
    first_token_s: Optional[float]
    finish_s: float
    prefill_len: int
    decode_len: int
    tenant: str = "default"
    priority: int = 0
    preemptions: int = 0
    swap_outs: int = 0

    @property
    def queueing_delay_s(self) -> float:
        """Seconds from arrival until first admission into a batch."""
        return self.admitted_s - self.arrival_s

    @property
    def service_time_s(self) -> float:
        """Seconds from first admission to completion (includes any
        re-queued time after a preemption)."""
        return self.finish_s - self.admitted_s

    @property
    def end_to_end_latency_s(self) -> float:
        """Seconds from arrival to the last generated token."""
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token in seconds, measured from *arrival* (None
        when the request generated nothing)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean seconds per output token after the first (``None`` when fewer
        than two tokens were generated — a single token has no inter-token
        gap, and a 0.0 here would drag TPOT percentiles toward zero)."""
        if self.first_token_s is None or self.decode_len <= 1:
            return None
        return (self.finish_s - self.first_token_s) / (self.decode_len - 1)


class _RequestState:
    """Mutable in-flight bookkeeping for one request."""

    __slots__ = ("request", "prefill_done", "decode_done", "admitted_s",
                 "last_admitted_s", "first_token_s", "preemptions",
                 "swap_outs", "instance_id", "swapped_on")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.prefill_done = 0
        self.decode_done = 0
        self.admitted_s: Optional[float] = None
        self.last_admitted_s = 0.0
        self.first_token_s: Optional[float] = None
        self.preemptions = 0
        self.swap_outs = 0
        self.instance_id = -1
        #: Instance holding this request's host-tier blocks after a swap-out
        #: (None otherwise).  A swapped request has instance affinity: its KV
        #: lives in that instance's host pool, so only that instance may
        #: resume it.
        self.swapped_on: Optional[int] = None

    @property
    def prefill_remaining(self) -> int:
        return self.request.prefill_len - self.prefill_done

    @property
    def context_len(self) -> int:
        """Cached positions the next decode step attends over."""
        return self.prefill_done + self.decode_done

    def reset_progress(self) -> None:
        """Drop all computed state (a discarding preemption releases the KV
        cache, so prefill must be recomputed on re-admission)."""
        self.prefill_done = 0
        self.decode_done = 0


@dataclass
class _Instance:
    """One LoopLynx deployment running a batch of requests."""

    instance_id: int
    batch: List[_RequestState] = field(default_factory=list)
    kv_used_tokens: int = 0
    busy: bool = False
    #: Per-instance paged block pool (None outside paged mode).
    kv: Optional[PagedKVManager] = None
    #: Pending swap-transfer seconds to serialize before the next step.
    pending_delay_s: float = 0.0


@dataclass
class _RunStats:
    """Time-weighted occupancy accumulators for one engine run."""

    batch_time: float = 0.0      # Σ advancing requests × step seconds
    busy_time: float = 0.0       # Σ step seconds (all instances)
    kv_occ_time: float = 0.0     # Σ occupancy fraction × step seconds
    frag_time: float = 0.0       # Σ fragmentation fraction × step seconds
    peak_kv_occupancy: float = 0.0
    swap_time_s: float = 0.0     # Σ PCIe transfer seconds spent swapping
    prefill_tokens: int = 0      # prompt tokens computed (recomputes count)
    decode_time: float = 0.0     # Σ pure-decode step seconds
    prefill_time: float = 0.0    # Σ pure-prefill step seconds
    mixed_time: float = 0.0      # Σ mixed prefill+decode step seconds


class TokenServingEngine:
    """Discrete-event simulation of a pool of instances at step granularity.

    Parameters
    ----------
    num_instances, num_nodes_per_instance, system:
        Pool shape, as in :class:`~repro.serving.simulator.ServingSimulator`.
    policy:
        Scheduler policy name (``fifo``, ``sjf``, ``priority``); a fresh
        :class:`SchedulerPolicy` instance per run is built from the name.
    max_batch_size:
        Decode-batch ceiling per instance; 1 disables batching (the
        compatibility regime matching the whole-request simulator).
    prefill_chunk_tokens:
        Prompt tokens processed per prefill step.  Smaller chunks interleave
        prefill with running decodes sooner; ``None`` runs each prompt to
        completion in one step.
    prefill_mode:
        ``"exclusive"`` (default): a prefill chunk occupies a step on its
        own, stalling every co-resident decode while one prompt streams in
        — the historical regime, kept bit-identical.  ``"mixed"``: each step
        carries up to ``mixed_step_token_budget`` tokens, filled first with
        one decode token per running decode and then with prefill-chunk
        tokens from requests still prefilling, so prompts stream in
        alongside live decodes (chunked prefill).  In paged KV mode a mixed
        engine admits a prefilling request with blocks for its *first chunk*
        only and grows its table step by step as the prompt streams in,
        instead of allocating the whole prompt at admission.
    mixed_step_token_budget:
        Token capacity of one mixed step (decode tokens plus prefill-chunk
        tokens).  Decode tokens are never dropped to fit the budget; prefill
        chunks take whatever remains.  Ignored in exclusive mode.
    kv_controller:
        Optional :class:`KVAdmissionController`; when set, admission reserves
        worst-case KV capacity (``prefill + decode`` cached positions) and
        requests queue while the cache is full.  This is the PR 1 regime,
        kept bit-identical as the ``reserve`` KV mode.
    kv_block_manager:
        Optional :class:`~repro.memory.paged_kv.PagedKVManager` prototype;
        when set, each instance gets its own empty clone and KV capacity is
        allocated in fixed-size blocks on demand: a request is admitted once
        blocks for its *prompt* fit (not its worst-case context) and grows
        block-by-block at decode-step boundaries, preempting batch members
        when the pool runs dry.  Mutually exclusive with ``kv_controller``.
    preemption_mode:
        What happens to a paged-mode victim's KV state: ``"swap"`` moves its
        blocks to the host tier over PCIe (the transfer seconds serialize
        with the instance's next step) and the request later resumes without
        recomputation; ``"recompute"`` discards the blocks and the request
        restarts from prefill, like reservation mode.
    context_bucket:
        Decode-step timings are memoized with the context length rounded up
        to this multiple (1 = exact; larger buckets trade a conservative
        over-estimate for far fewer cycle-model evaluations).

    After :meth:`run`, ``last_kv_managers`` holds each instance's block pool
    (paged mode; for inspection of occupancy/swap counters in tests).
    """

    def __init__(self, num_instances: int = 1, num_nodes_per_instance: int = 2,
                 system: Optional[LoopLynxSystem] = None,
                 policy: str = "fifo",
                 max_batch_size: int = 8,
                 prefill_chunk_tokens: Optional[int] = 64,
                 prefill_mode: str = "exclusive",
                 mixed_step_token_budget: int = DEFAULT_MIXED_STEP_TOKEN_BUDGET,
                 kv_controller: Optional[KVAdmissionController] = None,
                 kv_block_manager: Optional[PagedKVManager] = None,
                 preemption_mode: str = "swap",
                 context_bucket: int = 32) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive")
        if prefill_mode not in PREFILL_MODES:
            raise ValueError(
                f"unknown prefill mode {prefill_mode!r}; "
                f"known: {', '.join(PREFILL_MODES)}")
        if mixed_step_token_budget <= 0:
            raise ValueError("mixed_step_token_budget must be positive")
        if context_bucket <= 0:
            raise ValueError("context_bucket must be positive")
        if kv_controller is not None and kv_block_manager is not None:
            raise ValueError(
                "kv_controller (reservation mode) and kv_block_manager "
                "(paged mode) are mutually exclusive")
        if preemption_mode not in PREEMPTION_MODES:
            raise ValueError(
                f"unknown preemption mode {preemption_mode!r}; "
                f"known: {', '.join(PREEMPTION_MODES)}")
        self.num_instances = num_instances
        self.num_nodes_per_instance = num_nodes_per_instance
        self.system = system or LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        self.policy = policy
        make_scheduler(policy)  # fail fast on unknown names
        self.max_batch_size = max_batch_size
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.prefill_mode = prefill_mode
        self.mixed_step_token_budget = mixed_step_token_budget
        self.kv_controller = kv_controller
        self.kv_block_manager = kv_block_manager
        self.preemption_mode = preemption_mode
        self.context_bucket = context_bucket
        self.last_kv_managers: List[PagedKVManager] = []
        self._step_cache: Dict[Tuple[int, int], float] = {}
        self._mixed_step_cache: Dict[Tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    # step timing (memoized cycle-model evaluations)
    # ------------------------------------------------------------------
    def _bucketed(self, context_len: int) -> int:
        bucket = self.context_bucket
        if bucket <= 1 or context_len == 0:
            return context_len
        return -(-context_len // bucket) * bucket

    def _step_latency_s(self, context_len: int, batch_size: int) -> float:
        """Seconds for one decode step over ``context_len`` cached positions
        with ``batch_size`` co-resident requests (memoized per bucket)."""
        key = (self._bucketed(context_len), batch_size)
        if key not in self._step_cache:
            self._step_cache[key] = self.system.decode_step_latency_s(
                key[0], batch_size)
        return self._step_cache[key]

    def _prefill_chunk_latency_s(self, start_pos: int, chunk_len: int) -> float:
        """Seconds of token-serial prefill for ``chunk_len`` prompt tokens
        starting at cached position ``start_pos`` (same per-position cost as
        a decode step, which is how the paper's pipeline streams prompts)."""
        return sum(self._step_latency_s(pos, 1)
                   for pos in range(start_pos, start_pos + chunk_len))

    def _mixed_step_latency_s(self, max_context: int, num_decode: int,
                              prefill_tokens: int) -> float:
        """Seconds for one mixed step advancing ``num_decode`` requests by a
        token each while streaming ``prefill_tokens`` prompt tokens through
        the same weight pass.  ``max_context`` is the longest cached prefix
        in the step — decode contexts and prefill chunk-end positions alike
        (memoized per context bucket, like :meth:`_step_latency_s`)."""
        key = (self._bucketed(max_context), num_decode, prefill_tokens)
        if key not in self._mixed_step_cache:
            self._mixed_step_cache[key] = self.system.mixed_step_latency_s(
                [key[0]] * num_decode, prefill_tokens,
                prefill_context=key[0])
        return self._mixed_step_cache[key]

    def _next_prefill_chunk(self, state: _RequestState) -> int:
        """Prompt tokens ``state`` would stream in its next mixed step,
        before the step's token budget is split (per-request chunk cap and
        the whole-step budget both apply)."""
        chunk = min(state.prefill_remaining, self.mixed_step_token_budget)
        if self.prefill_chunk_tokens is not None:
            chunk = min(chunk, self.prefill_chunk_tokens)
        return chunk

    # ------------------------------------------------------------------
    # KV admission gates (mode-aware)
    # ------------------------------------------------------------------
    def _paged_admit_target(self, state: _RequestState) -> int:
        """Cached positions a (non-swapped) request must cover at admission.

        Exclusive prefill claims the whole prompt plus one slot for the
        first decode append (the prompt is computed before any other step
        of the instance runs, so its blocks are needed up front).  Mixed
        prefill streams the prompt in chunk by chunk, so admission only
        claims the first chunk and the table grows per step alongside the
        decode appends.  Both are clamped to the context window.
        """
        request = state.request
        if self.prefill_mode == "mixed" and state.prefill_remaining > 0:
            tokens = state.context_len + self._next_prefill_chunk(state)
        else:
            tokens = request.prefill_len + (1 if request.decode_len > 0 else 0)
        return min(tokens, self.kv_block_manager.layout.max_seq_len)

    def _paged_admit_blocks(self, kv: PagedKVManager,
                            state: _RequestState) -> int:
        """Device blocks the queue head must acquire to join the batch: the
        host-tier restore for a swapped-out request (plus any growth block
        its very next decode append needs), or its prompt allocation."""
        rid = state.request.request_id
        if kv.holds(rid) and kv.table(rid).is_swapped:
            restore = kv.table(rid).host_blocks
            if self.prefill_mode == "mixed" and state.prefill_remaining > 0:
                # a request swapped out mid-prefill appends a whole chunk in
                # its next mixed step, not a single decode token; budgeting
                # only context+1 would re-admit it without room to grow and
                # re-evict it at the same boundary (churn, PCIe both ways)
                next_tokens = state.context_len + self._next_prefill_chunk(state)
            else:
                next_tokens = state.context_len + 1
            next_target = min(next_tokens, kv.layout.max_seq_len)
            return restore + max(0, kv.blocks_needed(next_target) - restore)
        return kv.blocks_missing(rid, self._paged_admit_target(state))

    def _paged_growth_headroom(self, kv: PagedKVManager, batch) -> int:
        """Blocks the current batch members will claim for their next
        decode appends.  Admission must leave this headroom free, or a
        newly admitted (or swapped-in) request would be re-evicted by
        :func:`ensure_decode_capacity` at the same step boundary — pure
        churn, with PCIe transfers both ways in swap mode."""
        max_seq = kv.layout.max_seq_len
        headroom = 0
        for member in batch:
            if member.prefill_remaining > 0:
                if self.prefill_mode != "mixed":
                    continue  # prompt blocks were claimed at admission
                # mixed mode grows prefilling tables per step too
                target = member.context_len + self._next_prefill_chunk(member)
            else:
                target = member.context_len + 1
            headroom += kv.blocks_missing(
                member.request.request_id, min(target, max_seq))
        return headroom

    def _kv_admits(self, instance: _Instance, state: _RequestState) -> bool:
        """Does the instance's KV capacity admit ``state`` right now?

        A swapped-out request may only be resumed by the instance whose
        host tier holds its blocks (KV state cannot teleport between
        instances); every other instance reports it inadmissible.
        """
        if self.kv_controller is not None:
            return self.kv_controller.fits(state.request,
                                           instance.kv_used_tokens)
        if instance.kv is not None:
            if (state.swapped_on is not None
                    and state.swapped_on != instance.instance_id):
                return False
            kv = instance.kv
            need = (self._paged_admit_blocks(kv, state)
                    + self._paged_growth_headroom(kv, instance.batch))
            return need <= kv.free_blocks
        return True

    def _head_fits_after_eviction(self, instance: _Instance,
                                  victim: _RequestState,
                                  head: _RequestState) -> bool:
        """Would evicting ``victim`` make ``head`` admissible?  The batch
        slot is always freed; with KV admission the freed capacity (token
        reservation or device blocks) must also cover the head's."""
        if self.kv_controller is not None:
            freed = (instance.kv_used_tokens
                     - self.kv_controller.reservation_tokens(victim.request))
            return self.kv_controller.fits(head.request, freed)
        if instance.kv is not None:
            if (head.swapped_on is not None
                    and head.swapped_on != instance.instance_id):
                return False  # the head's KV lives on another instance
            kv = instance.kv
            freed = len(kv.table(victim.request.request_id).device_blocks)
            need = (self._paged_admit_blocks(kv, head)
                    + self._paged_growth_headroom(
                        kv, [s for s in instance.batch if s is not victim]))
            return need <= kv.free_blocks + freed
        return True

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, trace: RequestTrace) -> Tuple[ServingMetrics, List[ServedRequest]]:
        """Serve the trace and return aggregate metrics plus per-request
        records (sorted by request id).

        Raises ``ValueError`` for an empty trace or one containing a request
        that could never be admitted (KV validation), and ``RuntimeError``
        if the scheduler head deadlocks (a bug, not a workload property).
        """
        if len(trace) == 0:
            raise ValueError("trace is empty")
        if self.kv_controller is not None:
            self.kv_controller.validate(trace)
        if self.kv_block_manager is not None:
            self.kv_block_manager.validate(trace)

        scheduler = make_scheduler(self.policy)
        instances = [_Instance(i) for i in range(self.num_instances)]
        if self.kv_block_manager is not None:
            for instance in instances:
                instance.kv = self.kv_block_manager.clone_empty()
        self.last_kv_managers = [i.kv for i in instances if i.kv is not None]
        stats = _RunStats()
        events: List[Tuple[float, int, int, object]] = []
        seq = itertools.count()
        _ARRIVAL, _STEP_DONE = 0, 1
        for request in sorted(trace, key=lambda r: (r.arrival_s, r.request_id)):
            heapq.heappush(events, (request.arrival_s, next(seq), _ARRIVAL,
                                    _RequestState(request)))

        records: List[ServedRequest] = []

        def release(instance: _Instance, state: _RequestState) -> None:
            """Return a finished request's KV capacity to the pool."""
            if self.kv_controller is not None:
                instance.kv_used_tokens -= \
                    self.kv_controller.reservation_tokens(state.request)
            if instance.kv is not None:
                instance.kv.free(state.request.request_id)

        def admit(instance: _Instance, state: _RequestState, now: float) -> None:
            """Move the queue head into the running batch, claiming KV
            capacity (and paying the swap-in transfer for a swapped-out
            victim resuming in paged ``swap`` mode)."""
            if state.admitted_s is None:
                state.admitted_s = now
            state.last_admitted_s = now
            state.instance_id = instance.instance_id
            if self.kv_controller is not None:
                instance.kv_used_tokens += \
                    self.kv_controller.reservation_tokens(state.request)
            if instance.kv is not None:
                kv = instance.kv
                rid = state.request.request_id
                if kv.holds(rid) and kv.table(rid).is_swapped:
                    blocks, _ = kv.swap_in(rid)
                    instance.pending_delay_s += kv.swap_transfer_s(blocks)
                    state.swapped_on = None
                elif not kv.allocate(rid, self._paged_admit_target(state)):
                    raise RuntimeError("admission gate admitted an "
                                       "unallocatable request")  # pragma: no cover
            instance.batch.append(state)

        def evict(instance: _Instance, victim: _RequestState, now: float) -> None:
            """Remove ``victim`` from the batch and re-queue it.  Paged
            ``swap`` mode parks its blocks in the host tier (PCIe transfer
            serializes with the instance's next step); every other mode
            discards its KV state and progress."""
            instance.batch.remove(victim)
            if instance.kv is not None and self.preemption_mode == "swap":
                blocks, _ = instance.kv.swap_out(victim.request.request_id)
                instance.pending_delay_s += \
                    instance.kv.swap_transfer_s(blocks)
                victim.swap_outs += 1
                victim.swapped_on = instance.instance_id
            else:
                release(instance, victim)
                victim.reset_progress()
            victim.preemptions += 1
            scheduler.push(victim)

        def grow_to(instance: _Instance, state: _RequestState,
                    target: int, now: float) -> bool:
            """Paged mode: allocate blocks so ``state`` covers ``target``
            cached positions before its next append.  When the pool runs
            dry, evict the lowest-priority, most recently admitted member of
            an *equal or lower* priority class than the grower and retry
            (its blocks swap out or drop per the preemption mode).  Capacity
            pressure never evicts a strictly higher-priority member — when
            the grower itself is the lowest class present, it is the one
            that yields (no priority inversion through block growth).

            Mixed mode additionally requires an equal-priority victim to
            have been admitted *no earlier* than the grower.  Without this,
            two requests too big to co-reside can destroy each other
            forever: the newcomer's chunk growth evicts the old resident
            (discarding its nearly-finished context), the resident
            re-admits and returns the favour, and neither ever finishes —
            a livelock chunked admission makes reachable because it admits
            on first-chunk fit rather than whole-prompt fit.  Restricting
            equal-priority eviction to members no older than the grower
            makes the oldest-admitted member of the highest class
            un-evictable, so it always advances and the run provably
            terminates.  Exclusive mode keeps the PR 2 rule unchanged (the
            bit-identical regime).

            Returns whether any member was evicted."""
            kv = instance.kv
            mixed = self.prefill_mode == "mixed"
            evicted = False
            while (state in instance.batch
                   and not kv.allocate(state.request.request_id, target)):
                others = [s for s in instance.batch if s is not state]
                if not others:
                    raise RuntimeError(
                        "KV block pool cannot hold a single request; "
                        "validate() should have rejected this trace")
                candidates = [
                    s for s in others
                    if s.request.priority < state.request.priority
                    or (s.request.priority == state.request.priority
                        and (not mixed
                             or s.last_admitted_s >= state.last_admitted_s))]
                victim = (min(candidates,
                              key=lambda s: (s.request.priority,
                                             -s.last_admitted_s))
                          if candidates else state)
                evict(instance, victim, now)
                evicted = True
            return evicted

        def ensure_decode_capacity(instance: _Instance, now: float) -> None:
            """Paged mode, before a pure decode step: every batch member
            needs a block slot for the token position it is about to
            append."""
            max_seq = instance.kv.layout.max_seq_len
            for state in list(instance.batch):
                if state not in instance.batch:
                    continue  # already evicted to make room
                grow_to(instance, state, min(state.context_len + 1, max_seq),
                        now)

        def plan_mixed_step(instance: _Instance):
            """Split the mixed-step token budget over the batch: one decode
            token per running decode first, then prefill-chunk tokens for
            requests still prefilling, in admission (batch) order.  Decode
            tokens are never dropped to fit the budget; prefill chunks take
            whatever budget remains."""
            decoders = [s for s in instance.batch if s.prefill_remaining == 0]
            remaining = self.mixed_step_token_budget - len(decoders)
            chunks: List[Tuple[_RequestState, int]] = []
            for state in instance.batch:
                if state.prefill_remaining == 0 or remaining <= 0:
                    continue
                chunk = min(self._next_prefill_chunk(state), remaining)
                chunks.append((state, chunk))
                remaining -= chunk
            return decoders, chunks

        def ensure_mixed_capacity(instance: _Instance, now: float):
            """Paged mode, before a mixed step: every request advancing in
            the step needs blocks for the positions it appends (one per
            decode, a whole chunk per prefilling member).  An eviction frees
            budget and invalidates the split, so replan until one whole pass
            allocates without evicting; the batch shrinks on every eviction,
            so the loop terminates.  Returns the final ``(decoders,
            chunks)`` plan."""
            max_seq = instance.kv.layout.max_seq_len
            while True:
                decoders, chunks = plan_mixed_step(instance)
                evicted = False
                targets = [(s, s.context_len + 1) for s in decoders]
                targets += [(s, s.context_len + c) for s, c in chunks]
                for state, target in targets:
                    if state not in instance.batch:
                        continue  # already evicted to make room
                    if grow_to(instance, state, min(target, max_seq), now):
                        evicted = True
                if not evicted:
                    return decoders, chunks

        def dispatch(instance: _Instance, now: float) -> None:
            """Admit/preempt at a step boundary, then launch the next step."""
            admitted = True
            while admitted:
                admitted = False
                # admissions from the head of the waiting queue
                while len(instance.batch) < self.max_batch_size:
                    head = scheduler.peek()
                    if head is None:
                        break
                    if not self._kv_admits(instance, head):
                        break
                    scheduler.pop()
                    admit(instance, head, now)
                    admitted = True
                # preemption: a blocked head (no batch slot, or KV capacity
                # exhausted) may evict strictly lower-priority work — but only
                # when evicting one victim actually makes the head admissible;
                # otherwise the victim's computed state would be thrown away
                # (or shuttled over PCIe) for nothing
                head = scheduler.peek()
                if head is not None and instance.batch:
                    slots_full = len(instance.batch) >= self.max_batch_size
                    kv_full = not self._kv_admits(instance, head)
                    victim = None
                    if slots_full or kv_full:
                        victim = scheduler.preemption_victim(
                            instance.batch, head)
                    if (victim is not None
                            and self._head_fits_after_eviction(
                                instance, victim, head)):
                        evict(instance, victim, now)
                        admitted = True  # retry admission for the head

            if not instance.batch:
                instance.busy = False
                return
            if self.prefill_mode == "mixed":
                if instance.kv is not None:
                    decoders, chunks = ensure_mixed_capacity(instance, now)
                else:
                    decoders, chunks = plan_mixed_step(instance)
                prefill_tokens = sum(chunk for _, chunk in chunks)
                max_context = max(
                    [s.context_len for s in decoders]
                    + [s.context_len + chunk for s, chunk in chunks]
                    + [0])
                duration = self._mixed_step_latency_s(
                    max_context, len(decoders), prefill_tokens)
                payload = ("mixed", instance, (decoders, chunks),
                           prefill_tokens)
                advancing = len(decoders) + len(chunks)
                if decoders and prefill_tokens:
                    stats.mixed_time += duration
                elif prefill_tokens:
                    stats.prefill_time += duration
                else:
                    stats.decode_time += duration
            else:
                prefilling = next((s for s in instance.batch
                                   if s.prefill_remaining > 0), None)
                if prefilling is not None:
                    chunk = prefilling.prefill_remaining
                    if self.prefill_chunk_tokens is not None:
                        chunk = min(chunk, self.prefill_chunk_tokens)
                    duration = self._prefill_chunk_latency_s(
                        prefilling.prefill_done, chunk)
                    payload = ("prefill", instance, prefilling, chunk)
                    # only the prefilling request advances; co-resident
                    # decodes stall for the duration of the chunk
                    advancing = 1
                    stats.prefill_time += duration
                else:
                    if instance.kv is not None:
                        ensure_decode_capacity(instance, now)
                    context = max(s.context_len for s in instance.batch)
                    duration = self._step_latency_s(context,
                                                    len(instance.batch))
                    payload = ("decode", instance, list(instance.batch), 0)
                    advancing = len(instance.batch)
                    stats.decode_time += duration
            if instance.pending_delay_s > 0.0:
                # swap transfers contend for the same HBM/PCIe datapath, so
                # they serialize ahead of the next step
                duration += instance.pending_delay_s
                stats.swap_time_s += instance.pending_delay_s
                instance.pending_delay_s = 0.0
            stats.batch_time += advancing * duration
            stats.busy_time += duration
            if instance.kv is not None:
                occupancy = instance.kv.occupancy_fraction
                stats.kv_occ_time += occupancy * duration
                stats.frag_time += \
                    instance.kv.internal_fragmentation_fraction * duration
                stats.peak_kv_occupancy = max(stats.peak_kv_occupancy,
                                              occupancy)
            instance.busy = True
            heapq.heappush(events, (now + duration, next(seq), _STEP_DONE,
                                    payload))

        def complete_step(payload, now: float) -> _Instance:
            kind, instance, target, chunk = payload
            if kind == "prefill":
                target.prefill_done += chunk
                stats.prefill_tokens += chunk
                if (target.prefill_remaining == 0
                        and target.request.decode_len == 0):
                    finish(instance, target, now)
            elif kind == "mixed":
                decoders, chunks = target
                for state in decoders:
                    state.decode_done += 1
                    if state.first_token_s is None:
                        state.first_token_s = now
                    if state.decode_done >= state.request.decode_len:
                        finish(instance, state, now)
                for state, tokens in chunks:
                    state.prefill_done += tokens
                    stats.prefill_tokens += tokens
                    if (state.prefill_remaining == 0
                            and state.request.decode_len == 0):
                        finish(instance, state, now)
            else:
                for state in target:
                    state.decode_done += 1
                    if state.first_token_s is None:
                        state.first_token_s = now
                    if state.decode_done >= state.request.decode_len:
                        finish(instance, state, now)
            return instance

        def finish(instance: _Instance, state: _RequestState, now: float) -> None:
            instance.batch.remove(state)
            release(instance, state)
            request = state.request
            records.append(ServedRequest(
                request_id=request.request_id,
                instance_id=state.instance_id,
                arrival_s=request.arrival_s,
                admitted_s=state.admitted_s if state.admitted_s is not None else now,
                first_token_s=state.first_token_s,
                finish_s=now,
                prefill_len=request.prefill_len,
                decode_len=request.decode_len,
                tenant=request.tenant,
                priority=request.priority,
                preemptions=state.preemptions,
                swap_outs=state.swap_outs,
            ))

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                scheduler.push(payload)
                for instance in instances:
                    if not instance.busy:
                        dispatch(instance, now)
            else:
                instance = complete_step(payload, now)
                dispatch(instance, now)
                # paged mode: a queued request swapped out on an idle
                # instance can only resume there, and idle instances are
                # otherwise only re-dispatched on arrivals — wake them so
                # affinity work is never stranded (reservation mode has no
                # affinity, and skipping this keeps its event order
                # bit-identical to PR 1)
                if self.kv_block_manager is not None and len(scheduler):
                    for other in instances:
                        if not other.busy:
                            dispatch(other, now)

        if len(records) != len(trace):
            raise RuntimeError(
                f"engine stalled: {len(trace) - len(records)} requests "
                "never finished (scheduler head permanently blocked)")

        records.sort(key=lambda r: r.request_id)
        makespan = max(r.finish_s for r in records)
        pool_time = makespan * self.num_instances
        if self.kv_block_manager is not None:
            kv_mode = "paged"
        elif self.kv_controller is not None:
            kv_mode = "reserve"
        else:
            kv_mode = "none"
        managers = self.last_kv_managers
        metrics = ServingMetrics(
            num_requests=len(records),
            num_instances=self.num_instances,
            num_nodes_per_instance=self.num_nodes_per_instance,
            makespan_s=makespan,
            generated_tokens=sum(r.decode_len for r in records),
            queueing_delays_s=[r.queueing_delay_s for r in records],
            end_to_end_latencies_s=[r.end_to_end_latency_s for r in records],
            service_times_s=[r.service_time_s for r in records],
            ttfts_s=[r.ttft_s for r in records if r.ttft_s is not None],
            tpots_s=[r.tpot_s for r in records if r.ttft_s is not None],
            preemptions=sum(r.preemptions for r in records),
            policy=self.policy,
            prefill_mode=self.prefill_mode,
            busy_time_s=stats.busy_time,
            prefill_tokens_processed=stats.prefill_tokens,
            decode_step_time_s=stats.decode_time,
            prefill_step_time_s=stats.prefill_time,
            mixed_step_time_s=stats.mixed_time,
            kv_mode=kv_mode,
            kv_block_size=(self.kv_block_manager.block_size_tokens
                           if self.kv_block_manager is not None else 0),
            kv_total_blocks=(self.kv_block_manager.total_blocks
                             if self.kv_block_manager is not None else 0),
            mean_running_batch=(stats.batch_time / pool_time
                                if pool_time > 0 else 0.0),
            mean_kv_occupancy=(stats.kv_occ_time / pool_time
                               if pool_time > 0 else 0.0),
            peak_kv_occupancy=stats.peak_kv_occupancy,
            mean_kv_fragmentation=(stats.frag_time / stats.busy_time
                                   if stats.busy_time > 0 else 0.0),
            swap_out_count=sum(m.swap_out_count for m in managers),
            swap_in_count=sum(m.swap_in_count for m in managers),
            swapped_bytes=sum(m.swapped_bytes_total for m in managers),
            swap_time_s=stats.swap_time_s,
        )
        return metrics, records
