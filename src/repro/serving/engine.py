"""Token-level serving engine: the cluster event loop.

Where :class:`repro.serving.simulator.ServingSimulator` treats each request
as one opaque service-time blob, this engine advances a **cluster** of
instances one *step* at a time.  The machinery is split across two layers:

* :class:`~repro.serving.instance.InstanceRuntime` owns everything inside
  one instance — batch formation, KV admission (worst-case reservation or
  paged blocks), paged growth, swap/recompute preemption, and
  exclusive/mixed step building.  Each runtime owns its own
  :class:`~repro.core.multi_node.LoopLynxSystem`, so a cluster may mix
  instance classes (1/2/4-node instances, different KV budgets);
* :class:`TokenServingEngine` (here) owns everything between instances —
  the shared waiting queue (a :class:`~repro.serving.schedulers.
  SchedulerPolicy`), the discrete-event clock over arrivals and step
  completions, and **routing**: on heterogeneous pools a pluggable
  :class:`~repro.serving.cluster.Router` decides which boundary instance
  pulls work next and where a request may be placed.

Behaviour preserved from the pre-cluster engines (PR 1–3), pinned by
golden-timestamp tests:

* **continuous batching** — requests join the running batch at any step
  boundary and leave the moment their last token is generated;
* **mixed prefill/decode steps** — ``prefill_mode="mixed"`` streams prompts
  in alongside live decodes under a per-step token budget;
* **pluggable scheduling** — admission order comes from a
  :class:`~repro.serving.schedulers.SchedulerPolicy` (FIFO, SJF, priority);
* **KV-capacity admission and preemption** — reservation or paged regimes,
  with swap-to-host or discard-and-recompute eviction;
* **bit-identical homogeneous pools** — a single-class cluster runs the
  exact pre-cluster dispatch order regardless of router, so every
  homogeneous configuration reproduces the PR 1–3 timestamps exactly.

Request lifecycle (every transition happens at a step boundary)::

               push     route+admit           last token
    arrival ─────▶ QUEUED ───────────▶ RUNNING ────────▶ FINISHED
                     ▲                   │  ▲
                     │   preempt (evict) │  │ re-admit (swap: resume;
                     └────────── PREEMPTED──┘  recompute: prefill restarts)

On a **disaggregated** cluster (role-tagged specs like
``"1x4n:prefill,4x1n:decode"``) a prompt finishing on a prefill-role
instance takes one extra hop: its paged KV blocks are exported (a swap-out
on the prefiller), a *handoff event* delays the request by the PCIe
transfer, and it re-enters the queue pinned to the least-loaded
decode-capable instance, which pays its own swap-in at admission —
capacity, fragmentation and transfer-time accounting all ride the existing
swap machinery.

The discrete-event loop reuses the heap/sequence-counter idiom of
:mod:`repro.dataflow.engine`: a single time-ordered event heap over request
arrivals and per-instance step completions, so results are exact and
reproducible (no wall-clock time).

Units, throughout this module: timestamps and durations are **seconds** on
the simulated clock, lengths are **tokens**, KV quantities are **cached
token positions per node** (reservation mode) or **fixed-size blocks per
node** (paged mode), and swap traffic is **bytes summed over all nodes**.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.multi_node import LoopLynxSystem
from repro.core.pricing_cache import (
    PricingCacheStore,
    PricingTables,
    config_fingerprint,
)
from repro.memory.paged_kv import PagedKVManager
from repro.serving import lifecycle
from repro.serving.events import BucketedEventQueue, Event
from repro.serving.cluster import ClusterSpec, Router, make_router, parse_cluster_spec
from repro.serving.instance import (
    InstanceRuntime,
    InstanceStats,
    RequestState,
    kv_capacity_admits,
)
from repro.serving.metrics import (
    METRICS_MODES,
    InstanceClassMetrics,
    ServingMetrics,
    StreamingMetricsCollector,
)
from repro.serving.schedulers import (
    KVAdmissionController,
    make_scheduler,
)
from repro.sanitize import EngineSanitizer, sanitize_enabled
from repro.units import Seconds, Tokens
from repro.workloads.traces import Request, RequestTrace, StreamingTrace

#: Accepted values for ``TokenServingEngine(preemption_mode=...)`` (paged
#: KV mode only; reservation mode always recomputes).
PREEMPTION_MODES = ("swap", "recompute")

#: Accepted values for ``TokenServingEngine(prefill_mode=...)``:
#: ``"exclusive"`` runs one request's prefill chunk per step (all co-resident
#: decodes stall while a prompt streams in — the PR 1 regime, kept
#: bit-identical); ``"mixed"`` packs one decode token per running request
#: plus prefill-chunk tokens into a single token-budgeted step, so prompts
#: stream in alongside live decodes.
PREFILL_MODES = ("exclusive", "mixed")

#: Default token budget of one mixed step (decode tokens + prefill-chunk
#: tokens); production chunked-prefill schedulers run 256–2048.
DEFAULT_MIXED_STEP_TOKEN_BUDGET = 256

#: KV recipe names accepted by ``TokenServingEngine(kv_mode=...)`` when a
#: cluster spec is used (``None`` = unconstrained admission).
KV_RECIPE_MODES = ("reserve", "paged")


def _is_arrival_sorted(requests: List[Request]) -> bool:
    """True when the requests are already ordered by ``(arrival_s,
    request_id)`` — the invariant every finalized trace satisfies — so the
    engine can skip re-sorting them on every run."""
    prev_arrival = float("-inf")
    prev_id = -1
    for request in requests:
        arrival = request.arrival_s
        if (arrival, request.request_id) < (prev_arrival, prev_id):
            return False
        prev_arrival = arrival
        prev_id = request.request_id
    return True


def _is_id_sorted(records: List["ServedRequest"]) -> bool:
    """True when completion order already equals id order (common for
    near-FIFO runs), so the final record sort can be skipped."""
    prev = -1
    for record in records:
        rid = record.request_id
        if rid < prev:
            return False
        prev = rid
    return True


@dataclass(frozen=True, slots=True)
class ServedRequest:
    """Token-level timing record of one served request.

    All timestamps are seconds on the simulated clock; ``prefill_len`` and
    ``decode_len`` are token counts.  ``instance_id`` is the instance that
    completed the request — ``None`` for a request that never ran (it was
    never admitted anywhere, so inventing an instance id would corrupt
    per-instance aggregation; analysis helpers skip ``None`` records).
    ``preemptions`` counts every eviction from a running batch;
    ``swap_outs`` counts the subset whose KV blocks were swapped to host
    memory instead of discarded (paged ``swap`` mode), so ``preemptions -
    swap_outs`` prefills were recomputed.  ``handoffs`` counts
    prefill→decode KV handoffs (disaggregated clusters only; on such a
    cluster ``instance_id`` is the *decode* instance that generated the
    request's tokens).
    """

    request_id: int
    instance_id: Optional[int]
    arrival_s: Seconds
    admitted_s: Seconds
    first_token_s: Optional[Seconds]
    finish_s: Seconds
    prefill_len: Tokens
    decode_len: Tokens
    tenant: str = "default"
    priority: int = 0
    preemptions: int = 0
    swap_outs: int = 0
    handoffs: int = 0

    @property
    def queueing_delay_s(self) -> Seconds:
        """Seconds from arrival until first admission into a batch."""
        return self.admitted_s - self.arrival_s

    @property
    def service_time_s(self) -> Seconds:
        """Seconds from first admission to completion (includes any
        re-queued time after a preemption)."""
        return self.finish_s - self.admitted_s

    @property
    def end_to_end_latency_s(self) -> Seconds:
        """Seconds from arrival to the last generated token."""
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[Seconds]:
        """Time to first token in seconds, measured from *arrival* (None
        when the request generated nothing)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[Seconds]:
        """Mean seconds per output token after the first (``None`` when fewer
        than two tokens were generated — a single token has no inter-token
        gap, and a 0.0 here would drag TPOT percentiles toward zero)."""
        if self.first_token_s is None or self.decode_len <= 1:
            return None
        return (self.finish_s - self.first_token_s) / (self.decode_len - 1)


class TokenServingEngine:
    """Discrete-event simulation of a cluster of instances at step
    granularity.

    Two configuration surfaces build the cluster:

    * **classic** (``num_instances`` × ``num_nodes_per_instance``, the PR 1
      surface): a homogeneous pool sharing one cycle model, with KV
      admission supplied as prototype objects (``kv_controller`` /
      ``kv_block_manager``).  This path is bit-identical to the pre-cluster
      engines;
    * **cluster spec** (``cluster="2x1n,2x2n,1x4n"`` or a
      :class:`~repro.serving.cluster.ClusterSpec`): possibly heterogeneous;
      each instance class gets its own cycle model, and KV admission is
      built per class from the recipe knobs (``kv_mode``,
      ``kv_budget_bytes``, ``kv_block_size``) because one prototype cannot
      fit several cache layouts.  ``router`` picks the cluster-routing
      policy (consulted only on heterogeneous pools; single-class pools run
      the exact classic dispatch order whatever the router).

    Parameters
    ----------
    num_instances, num_nodes_per_instance, system:
        Classic pool shape, as in
        :class:`~repro.serving.simulator.ServingSimulator`.  Ignored when
        ``cluster`` is given (``system`` is rejected there: each class owns
        its own).
    policy:
        Scheduler policy name (``fifo``, ``sjf``, ``priority``); a fresh
        :class:`SchedulerPolicy` instance per run is built from the name.
    max_batch_size:
        Decode-batch ceiling per instance; 1 disables batching (the
        compatibility regime matching the whole-request simulator).
    prefill_chunk_tokens:
        Prompt tokens processed per prefill step.  Smaller chunks interleave
        prefill with running decodes sooner; ``None`` runs each prompt to
        completion in one step.
    prefill_mode, mixed_step_token_budget:
        Exclusive vs mixed prefill and the mixed-step token budget (see
        :data:`PREFILL_MODES`).
    kv_controller:
        Optional :class:`KVAdmissionController` (classic surface);
        admission reserves worst-case KV capacity and requests queue while
        the cache is full.
    kv_block_manager:
        Optional :class:`~repro.memory.paged_kv.PagedKVManager` prototype
        (classic surface); each instance gets its own empty clone.
        Mutually exclusive with ``kv_controller``.
    preemption_mode:
        What happens to a paged-mode victim's KV state: ``"swap"`` moves its
        blocks to the host tier over PCIe and the request later resumes
        without recomputation; ``"recompute"`` discards the blocks and the
        request restarts from prefill.
    context_bucket:
        Decode-step timings are memoized with the context length rounded up
        to this multiple (1 = exact).
    cluster:
        Cluster spec string or :class:`~repro.serving.cluster.ClusterSpec`.
    router:
        Router name (see :data:`~repro.serving.cluster.ROUTER_NAMES`) or a
        :class:`~repro.serving.cluster.Router` instance.
    kv_mode, kv_budget_bytes, kv_block_size:
        Per-class KV recipe for the cluster surface: ``None`` (no
        admission control), ``"reserve"`` (worst-case reservations, needs a
        budget) or ``"paged"`` (block pool, budget defaults to each node's
        HBM share net of weights).
    kv_prefix_sharing:
        Paged cluster recipe only: content-hash full prompt blocks into a
        per-pool prefix index so later requests whose
        ``prompt_token_ids`` share a prefix reuse the cached blocks
        (copy-on-write on divergence) and skip the matched prefill
        tokens.  Off by default — with it off every historical
        configuration is bit-identical to before the feature existed.
    swap_priority:
        Paged ``swap`` mode only: park preemption victims on their
        instance and resume them ahead of new admissions (their KV is
        already paid for), instead of sending them back through the shared
        queue.  Off by default — the PR 2/3 regime.
    metrics_mode:
        ``"full"`` (default) keeps one record per request — exact
        percentiles, the golden regime.  ``"streaming"`` folds every
        finished request into O(1)-memory aggregates
        (:class:`~repro.serving.metrics.StreamingMetricsCollector`) and
        returns an *empty* record list, so million-request replays hold no
        per-request state; percentiles then carry a bounded relative error
        (``quantile_error``) while counters, means and extremes stay exact.
    slo:
        Optional ``(ttft_slo_s, tpot_slo_s)`` pair pinned for streaming
        runs: joint SLO attainment needs per-request TTFT/TPOT *pairs*,
        which marginal aggregates cannot recover, so streaming counts
        attainment online against exactly this pin.  Full mode answers
        arbitrary SLO queries after the fact and rejects a pin.
    quantile_error:
        Guaranteed relative error of streaming-mode percentile estimates
        (default 0.5% — see :class:`~repro.serving.metrics.StreamingQuantile`).
    multistep:
        Allow the event loop to fast-forward provably identical
        consecutive pure-decode steps into single events (see
        :meth:`~repro.serving.instance.InstanceRuntime.dispatch`).  Only
        engaged where it is exact — single-class pools without paged KV —
        and produces bit-identical timestamps there; the switch exists so
        equivalence tests can compare against the one-event-per-step
        execution.
    sanitize:
        Opt-in shadow validation (see :mod:`repro.sanitize`): re-verify
        event-time monotonicity, paged-KV block/refcount conservation and
        queue/request conservation after every processed event, raising
        :class:`~repro.errors.SanitizerError` with the offending event
        attached.  ``None`` (default) defers to the ``REPRO_SANITIZE``
        environment variable.  The checks are read-only, so sanitized
        runs stay bit-identical to unsanitized ones.

    :meth:`run` also accepts a
    :class:`~repro.workloads.traces.StreamingTrace`: arrivals are then
    drawn lazily (never materialized), the stream must be arrival-sorted,
    and KV validation happens per request as it is drawn rather than up
    front.

    After :meth:`run`, ``last_kv_managers`` holds each instance's block pool
    (paged mode; for inspection of occupancy/swap counters in tests).
    """

    def __init__(self, num_instances: int = 1, num_nodes_per_instance: int = 2,
                 system: Optional[LoopLynxSystem] = None,
                 policy: str = "fifo",
                 max_batch_size: int = 8,
                 prefill_chunk_tokens: Optional[int] = 64,
                 prefill_mode: str = "exclusive",
                 mixed_step_token_budget: int = DEFAULT_MIXED_STEP_TOKEN_BUDGET,
                 kv_controller: Optional[KVAdmissionController] = None,
                 kv_block_manager: Optional[PagedKVManager] = None,
                 preemption_mode: str = "swap",
                 context_bucket: int = 32,
                 cluster: Optional[Union[str, ClusterSpec]] = None,
                 router: Union[str, Router] = "round_robin",
                 kv_mode: Optional[str] = None,
                 kv_budget_bytes: Optional[int] = None,
                 kv_block_size: int = 16,
                 kv_prefix_sharing: bool = False,
                 swap_priority: bool = False,
                 metrics_mode: str = "full",
                 slo: Optional[Tuple[float, float]] = None,
                 quantile_error: float = 0.005,
                 multistep: bool = True,
                 sanitize: Optional[bool] = None,
                 pricing_cache: Optional[
                     Union[str, "os.PathLike[str]", PricingCacheStore]
                 ] = None) -> None:
        if metrics_mode not in METRICS_MODES:
            raise ValueError(
                f"unknown metrics mode {metrics_mode!r}; "
                f"known: {', '.join(METRICS_MODES)}")
        if slo is not None:
            if metrics_mode != "streaming":
                raise ValueError(
                    "an SLO pin only applies to metrics_mode='streaming' "
                    "(full mode answers arbitrary SLO queries after the "
                    "fact)")
            if len(slo) != 2:
                raise ValueError("slo must be a (ttft_slo_s, tpot_slo_s) "
                                 "pair")
            slo = (float(slo[0]), float(slo[1]))
        if not 0.0 < quantile_error < 1.0:
            raise ValueError("quantile_error must be in (0, 1)")
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive")
        if prefill_mode not in PREFILL_MODES:
            raise ValueError(
                f"unknown prefill mode {prefill_mode!r}; "
                f"known: {', '.join(PREFILL_MODES)}")
        if mixed_step_token_budget <= 0:
            raise ValueError("mixed_step_token_budget must be positive")
        if context_bucket <= 0:
            raise ValueError("context_bucket must be positive")
        if kv_controller is not None and kv_block_manager is not None:
            raise ValueError(
                "kv_controller (reservation mode) and kv_block_manager "
                "(paged mode) are mutually exclusive")
        if preemption_mode not in PREEMPTION_MODES:
            raise ValueError(
                f"unknown preemption mode {preemption_mode!r}; "
                f"known: {', '.join(PREEMPTION_MODES)}")
        if swap_priority and preemption_mode != "swap":
            raise ValueError(
                "swap_priority prioritizes resuming swapped-out requests; "
                "it requires preemption_mode='swap'")
        if swap_priority and kv_block_manager is None and kv_mode != "paged":
            raise ValueError(
                "swap_priority requires paged KV (a kv_block_manager "
                "prototype or kv_mode='paged'); nothing is ever swapped "
                "out otherwise")
        if kv_mode is not None and kv_mode not in KV_RECIPE_MODES:
            raise ValueError(f"unknown kv mode {kv_mode!r}; "
                             f"known: {', '.join(KV_RECIPE_MODES)}")
        if kv_prefix_sharing and kv_mode != "paged":
            raise ValueError(
                "kv_prefix_sharing builds prefix indices into the "
                "per-class paged block pools; it requires kv_mode='paged' "
                "(on the classic surface, build the kv_block_manager "
                "prototype with prefix_sharing=True instead)")
        self.policy = policy
        make_scheduler(policy)  # fail fast on unknown names
        self.router = make_router(router)
        self.max_batch_size = max_batch_size
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.prefill_mode = prefill_mode
        self.mixed_step_token_budget = mixed_step_token_budget
        self.kv_controller = kv_controller
        self.kv_block_manager = kv_block_manager
        self.preemption_mode = preemption_mode
        self.context_bucket = context_bucket
        self.kv_prefix_sharing = (
            kv_prefix_sharing
            or (kv_block_manager is not None
                and kv_block_manager.prefix_sharing))
        self.swap_priority = swap_priority
        self.metrics_mode = metrics_mode
        self.slo = slo
        self.quantile_error = quantile_error
        self.multistep = multistep
        #: resolved at construction: explicit argument wins over the
        #: ``REPRO_SANITIZE`` environment switch (see :mod:`repro.sanitize`)
        self.sanitize = sanitize_enabled(sanitize)

        if cluster is not None:
            if system is not None:
                raise ValueError(
                    "cluster specs build one cycle model per instance "
                    "class; drop the system argument")
            if kv_controller is not None or kv_block_manager is not None:
                raise ValueError(
                    "cluster specs build KV admission per instance class; "
                    "use kv_mode/kv_budget_bytes/kv_block_size instead of "
                    "prototype objects")
            if isinstance(cluster, str):
                cluster = parse_cluster_spec(cluster)
            if kv_mode is None and (
                    kv_budget_bytes is not None
                    or any(spec.kv_budget_bytes is not None
                           for spec in cluster.specs)):
                raise ValueError(
                    "a KV budget without kv_mode would be silently "
                    "unenforced; pick kv_mode='reserve' or 'paged'")
            if cluster.has_roles:
                if kv_mode != "paged":
                    raise ValueError(
                        "prefill/decode roles hand off paged KV block "
                        "tables between instances; role-tagged clusters "
                        "require kv_mode='paged'")
                roles = {spec.role for spec in cluster.specs}
                if not roles & {"prefill", "both"}:
                    raise ValueError(
                        f"cluster {cluster} has no prefill-capable class; "
                        "nothing could ever compute a prompt")
                if not roles & {"decode", "both"}:
                    raise ValueError(
                        f"cluster {cluster} has no decode-capable class; "
                        "handed-off prompts could never generate")
            self.cluster = cluster
        else:
            if num_instances <= 0:
                raise ValueError("num_instances must be positive")
            if kv_mode is not None or kv_budget_bytes is not None:
                raise ValueError(
                    "kv_mode/kv_budget_bytes describe a cluster-spec KV "
                    "recipe; pass kv_controller/kv_block_manager on the "
                    "classic surface")
            self.cluster = ClusterSpec.homogeneous(num_instances,
                                                   num_nodes_per_instance)
        self.num_instances = self.cluster.num_instances
        # ---- per-class prototypes: (spec, system, controller, manager) ----
        self._protos = []
        if cluster is not None:
            for spec in self.cluster.specs:
                class_system = LoopLynxSystem.paper_configuration(
                    num_nodes=spec.num_nodes)
                budget = (spec.kv_budget_bytes
                          if spec.kv_budget_bytes is not None
                          else kv_budget_bytes)
                controller = manager = None
                if kv_mode == "paged":
                    manager = PagedKVManager.for_system(
                        class_system, block_size_tokens=kv_block_size,
                        budget_bytes=budget,
                        prefix_sharing=kv_prefix_sharing)
                elif kv_mode == "reserve" and budget is not None:
                    controller = KVAdmissionController.for_system(
                        class_system, budget_bytes=budget)
                self._protos.append((spec, class_system, controller, manager))
            self.system = self._protos[0][1]
        else:
            self.system = system or LoopLynxSystem.paper_configuration(
                num_nodes=num_nodes_per_instance)
            self._protos.append((self.cluster.specs[0], self.system,
                                 kv_controller, kv_block_manager))
        spec_nodes = {spec.num_nodes for spec in self.cluster.specs}
        #: Nodes per instance (0 when classes differ — use per-class
        #: metrics then).  pop() is order-independent here: only taken on
        #: a singleton set.
        self.num_nodes_per_instance = (spec_nodes.pop()  # repro-lint: disable=R006
                                       if len(spec_nodes) == 1 else 0)
        self._paged = any(proto[3] is not None for proto in self._protos)
        self._kv_mode = ("paged" if self._paged
                         else "reserve" if any(proto[2] is not None
                                               for proto in self._protos)
                         else "none")
        # step-timing memo dicts (decode, mixed, prefill-chunk, transfer),
        # shared per class and across runs (the cycle model and the PCIe
        # pricing are pure, so sharing only saves evaluations)
        self._caches: List[PricingTables] = [
            ({}, {}, {}, {}) for _ in self._protos]
        # persistent pricing-cache plumbing (opt-in): warm each class's
        # memo dicts from disk now; save back after a run that grew them
        self._pricing_store: Optional[PricingCacheStore] = None
        self._pricing_fps: List[str] = []
        self._pricing_loaded_counts: List[Tuple[int, int, int, int]] = []
        #: entries loaded from / saved to the persistent pricing cache
        #: (diagnostics for tests and benchmarks)
        self.pricing_cache_stats: Dict[str, int] = {"loaded": 0, "saved": 0}
        if pricing_cache is not None:
            store = (pricing_cache
                     if isinstance(pricing_cache, PricingCacheStore)
                     else PricingCacheStore(pricing_cache))
            self._pricing_store = store
            for (_, class_system, _, manager), caches in zip(
                    self._protos, self._caches):
                probe = (manager.swap_transfer_s(1)
                         if manager is not None else None)
                fp = config_fingerprint(class_system.config, probe)
                self._pricing_fps.append(fp)
                loaded = store.load(fp)
                if loaded is not None:
                    for table, warm in zip(caches, loaded):
                        table.update(warm)
                        self.pricing_cache_stats["loaded"] += len(warm)
                self._pricing_loaded_counts.append(
                    (len(caches[0]), len(caches[1]),
                     len(caches[2]), len(caches[3])))
        self.last_kv_managers: List[PagedKVManager] = []

    def _save_pricing_caches(self) -> None:
        """Persist any pricing table that grew since it was last synced
        with the store (no-op without a configured store)."""
        store = self._pricing_store
        if store is None:
            return
        for i, (fp, caches) in enumerate(zip(self._pricing_fps,
                                             self._caches)):
            counts = (len(caches[0]), len(caches[1]),
                      len(caches[2]), len(caches[3]))
            if counts != self._pricing_loaded_counts[i]:
                store.save(fp, caches)
                self._pricing_loaded_counts[i] = counts
                self.pricing_cache_stats["saved"] += 1

    # ------------------------------------------------------------------
    # cluster construction and validation
    # ------------------------------------------------------------------
    def _build_runtimes(self) -> List[InstanceRuntime]:
        """Fresh per-run instance runtimes, ids in spec order."""
        runtimes: List[InstanceRuntime] = []
        instance_id = 0
        # fast-forwarding decode runs is only provably exact on
        # single-class pools (the routers' dispatch_order is stateful, so
        # skipped boundaries would diverge it) without paged KV (block
        # growth at a boundary can evict even when the queue is empty)
        allow_multistep = (self.multistep
                           and not self.cluster.is_heterogeneous
                           and not self._paged)
        for (spec, class_system, controller, manager), caches in zip(
                self._protos, self._caches):
            for _ in range(spec.count):
                runtime = InstanceRuntime(
                    instance_id, class_system,
                    class_label=spec.label,
                    role=spec.role,
                    max_batch_size=self.max_batch_size,
                    prefill_chunk_tokens=self.prefill_chunk_tokens,
                    prefill_mode=self.prefill_mode,
                    mixed_step_token_budget=self.mixed_step_token_budget,
                    kv_controller=controller,
                    kv=(manager.clone_empty() if manager is not None
                        else None),
                    preemption_mode=self.preemption_mode,
                    context_bucket=self.context_bucket,
                    swap_priority=self.swap_priority,
                    step_cache=caches[0],
                    mixed_step_cache=caches[1],
                    prefill_cache=caches[2],
                    transfer_cache=caches[3])
                runtime.allow_multistep = allow_multistep
                runtimes.append(runtime)
                instance_id += 1
        return runtimes

    @property
    def _needs_validation(self) -> bool:
        """Whether any instance class constrains admission at all (with no
        KV admission anywhere, every request is trivially servable and
        validation can skip the trace scan entirely)."""
        return any(controller is not None or manager is not None
                   for _, _, controller, manager in self._protos)

    def _validate(self, trace: Iterable[Request]) -> None:
        """Reject traces containing a request no instance class could ever
        serve (it would block the queue head forever)."""
        if not self._needs_validation:
            return
        for request in trace:
            self._validate_request(request)

    def _validate_request(self, request: Request) -> None:
        """Per-request slice of :meth:`_validate` — streaming traces
        validate each request lazily as it is drawn."""
        if len(self._protos) == 1:
            # single class: the prototype's own validation carries the
            # precise error message (and the classic path stays identical)
            _, _, controller, manager = self._protos[0]
            if controller is not None:
                controller.validate((request,))
            if manager is not None:
                manager.validate((request,))
            return
        if self.cluster.has_roles:
            # disaggregated: a request needs a place to *start* (a prefill
            # class holding its prompt, or a role-both class holding its
            # full context) and a place to *finish* (a decode-capable
            # class holding its full context)
            starts = any(
                kv_capacity_admits(c, m, request, role="prefill")
                for spec, _, c, m in self._protos
                if spec.role == "prefill")
            finishes = any(
                kv_capacity_admits(c, m, request)
                for spec, _, c, m in self._protos
                if spec.role == "decode")
            whole = any(
                kv_capacity_admits(c, m, request)
                for spec, _, c, m in self._protos
                if spec.role == "both")
            if not ((starts and (finishes or whole)) or whole):
                raise ValueError(
                    f"request {request.request_id} cannot be served by "
                    f"cluster {self.cluster} under the KV budget: it "
                    "needs a prefill-capable class holding its prompt "
                    "and a decode-capable class holding its full "
                    "context")
            return
        if not any(kv_capacity_admits(controller, manager, request)
                   for _, _, controller, manager in self._protos):
            raise ValueError(
                f"request {request.request_id} fits no instance class "
                f"of cluster {self.cluster} under the KV budget")

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, trace: Union[RequestTrace, StreamingTrace]
            ) -> Tuple[ServingMetrics, List[ServedRequest]]:
        """Serve the trace and return aggregate metrics plus per-request
        records (sorted by request id).

        A :class:`~repro.workloads.traces.StreamingTrace` is consumed
        lazily: arrivals merge into the event loop straight off the
        iterator (the stream contract says they come pre-sorted; an
        out-of-order arrival raises), and KV validation runs per request
        as it is drawn.  In ``metrics_mode="streaming"`` the returned
        record list is empty — all aggregates live in the metrics object —
        so memory stays bounded however long the trace is.

        Raises ``ValueError`` for an empty trace or one containing a request
        that could never be admitted (KV validation), and ``RuntimeError``
        if the scheduler head deadlocks (a bug, not a workload property).
        """
        streaming_trace = isinstance(trace, StreamingTrace)
        if not streaming_trace:
            if len(trace) == 0:
                raise ValueError("trace is empty")
            self._validate(trace)

        scheduler = make_scheduler(self.policy)
        runtimes = self._build_runtimes()
        self.last_kv_managers = [r.kv for r in runtimes if r.kv is not None]
        multi_class = self.cluster.is_heterogeneous
        has_roles = self.cluster.has_roles
        router = self.router
        gate = router.placement_ok if multi_class else None
        if multi_class:
            # routers may precompute placement from the trace; a
            # StreamingTrace is re-iterable by contract, so this pass does
            # not consume the engine's arrival stream
            router.prepare(runtimes, trace)
        stats = InstanceStats()
        # two-level bucketed queue (near-future ring + far heap); pops
        # come out in exactly heapq's (time, seq) order, so the replay
        # is bit-identical to the old global heap
        events = BucketedEventQueue()
        push_event, pop_event = events.push, events.pop
        peek_event_time = events.peek_time
        seq = itertools.count()
        _STEP_DONE, _HANDOFF = 1, 2

        # ---- arrival stream ----------------------------------------------
        # Arrivals never enter the event heap: the loop below lazy-merges
        # the (sorted) arrival iterator with the heap, processing an
        # arrival whenever it is due no later than the earliest event —
        # exactly the order the old push-everything-first loop produced,
        # without a million heap entries or the re-sort of an
        # already-sorted trace.
        if streaming_trace:
            validate = (self._validate_request if self._needs_validation
                        else None)

            def arrival_states() -> Iterator[RequestState]:
                last = float("-inf")
                for request in trace:
                    if request.arrival_s < last:
                        raise ValueError(
                            "streaming traces must be sorted by arrival "
                            f"time; request {request.request_id} at "
                            f"{request.arrival_s}s follows one at {last}s")
                    last = request.arrival_s
                    if validate is not None:
                        validate(request)
                    yield RequestState(request)

            arrivals = arrival_states()
        else:
            requests = (trace.requests if isinstance(trace, RequestTrace)
                        else list(trace))
            if not _is_arrival_sorted(requests):
                requests = sorted(requests,
                                  key=lambda r: (r.arrival_s, r.request_id))
            arrivals = map(RequestState, requests)
        next_state = next(arrivals, None)
        if next_state is None:
            raise ValueError("trace is empty")
        next_arrival_t = next_state.request.arrival_s
        num_arrivals = 0
        # index of next_state within the sorted request list (list-trace
        # runs only; feeds the idle-gap fold horizon below)
        arr_index = 0

        records: List[ServedRequest] = []
        collector: Optional[StreamingMetricsCollector] = None
        if self.metrics_mode == "streaming":
            collector = StreamingMetricsCollector(
                slo=self.slo, quantile_error=self.quantile_error,
                class_of_instance={r.instance_id: r.class_label
                                   for r in runtimes})
            record = collector.add
        else:
            def record(state: RequestState, now: float) -> None:
                request = state.request
                records.append(ServedRequest(
                    request_id=request.request_id,
                    instance_id=state.instance_id,
                    arrival_s=request.arrival_s,
                    admitted_s=(state.admitted_s
                                if state.admitted_s is not None else now),
                    first_token_s=state.first_token_s,
                    finish_s=now,
                    prefill_len=state.prefill_len,
                    decode_len=state.decode_len,
                    tenant=request.tenant,
                    priority=request.priority,
                    preemptions=state.preemptions,
                    swap_outs=state.swap_outs,
                    handoffs=state.handoffs,
                ))

        # single-class non-paged pools take the straight-line path in the
        # main loop: a completed step only ever re-dispatches its own
        # instance, so the pump/dispatch closures are inlined out of the
        # hot loop
        fast_completer = (not multi_class and not self._paged
                          and not has_roles)

        # ---- idle-gap fold horizon ---------------------------------------
        # In the fast regime with no KV admission gate anywhere (every
        # runtime ``_admits_all``) and a materialized trace, an arrival
        # that lands while some *other* instance is idle is absorbed by
        # that instance the moment it arrives (the arrival pump offers
        # idle instances the queue in id order, and an admit-all idle
        # instance always takes the head), so the queue stays empty and
        # none of the folding instance's skipped boundaries could have
        # admitted anything.  A folding instance may therefore run past
        # the next ``spare`` arrivals — one per other idle instance — and
        # stop only at the first arrival that could actually reach *its*
        # queue.  This extends fast-forward folding across idle-cluster
        # gaps; timestamps are unchanged because the fold still walks
        # boundary by boundary, it just stops later.
        horizon_fn: Optional[Callable[[InstanceRuntime], float]] = None
        if (fast_completer and self.multistep and not streaming_trace
                and self._protos[0][2] is None):
            fold_requests: List[Request] = requests
            num_fold_requests = len(fold_requests)

            def _fold_horizon(active: InstanceRuntime) -> float:
                if next_state is None:
                    return float("inf")
                spare = 0
                for r in runtimes:
                    if not r.busy and r is not active:
                        spare += 1
                if spare == 0:
                    return next_arrival_t
                absorbed_until = arr_index + spare
                if absorbed_until >= num_fold_requests:
                    return float("inf")
                return fold_requests[absorbed_until].arrival_s

            horizon_fn = _fold_horizon

        def dispatch(runtime: InstanceRuntime, now: float) -> None:
            launch = runtime.dispatch(scheduler, now, stats, gate=gate,
                                      horizon_s=next_arrival_t,
                                      horizon_fn=horizon_fn)
            if launch is not None:
                completes = launch.completes_at_s
                if completes is None:
                    completes = now + launch.duration_s
                push_event((completes, next(seq), _STEP_DONE,
                            launch.payload))

        def pump(completer: Optional[InstanceRuntime], now: float) -> None:
            """Offer the queue to every instance at a step boundary.

            Single-class pools replay the exact pre-cluster order: the
            completing instance first, then — paged mode only, where
            swap affinity can strand work on an idle instance — every idle
            instance; arrivals offer to idle instances in id order.
            Heterogeneous pools let the router order all boundary
            instances (idle ones are always woken: a vetoed head must be
            able to reach its preferred class the moment it has a
            boundary).
            """
            if not multi_class:
                if completer is not None:
                    dispatch(completer, now)
                    if self._paged and len(scheduler):
                        for runtime in runtimes:
                            if not runtime.busy:
                                dispatch(runtime, now)
                elif self._paged:
                    for runtime in runtimes:
                        if not runtime.busy:
                            dispatch(runtime, now)
                else:
                    # without paged KV an idle instance holds no batch and
                    # no parked work, so once the queue drains the
                    # remaining idle dispatches would be no-ops — skip them
                    qlen = scheduler.__len__
                    for runtime in runtimes:
                        if not qlen():
                            break
                        if not runtime.busy:
                            dispatch(runtime, now)
                return
            candidates = [r for r in runtimes
                          if r is completer or not r.busy]
            for runtime in router.dispatch_order(candidates, scheduler.peek()):
                if runtime is completer or not runtime.busy:
                    dispatch(runtime, now)

        def launch_handoffs(runtime: InstanceRuntime, now: float) -> None:
            """Route every prompt the completed step finished on a
            prefill-role instance: import its KV into the least-loaded
            decode-capable instance's host tier (so the blocks always live
            on exactly one instance) and schedule the request's arrival in
            the queue at its ready offset — the runtime serializes
            same-step transfers over the one PCIe link, so the offsets
            already stack."""
            batch: List[Event] = []
            for state, cached_tokens, ready_s in runtime.take_handoffs():
                target = router.handoff_target(runtimes, state)
                if target is None:  # pragma: no cover - validation forbids
                    raise RuntimeError(
                        f"no decode-capable instance can hold request "
                        f"{state.request.request_id}; validate() should "
                        "have rejected this trace")
                target.kv.import_handoff(state.request.request_id,
                                         cached_tokens)
                state.swapped_on = target.instance_id
                state.handoff_pending = True
                batch.append((now + ready_s, next(seq), _HANDOFF, state))
            if batch:
                # one boundary's handoffs post together (they share the
                # step's timestamp base and resolve buckets in one pass)
                events.push_many(batch)

        # ---- shadow validation (opt-in, read-only) -----------------------
        sanitizer = EngineSanitizer() if self.sanitize else None

        def sanitize_check(now: float, event: object) -> None:
            """Re-verify the engine invariants after one processed event
            (only ever called with the sanitizer enabled)."""
            assert sanitizer is not None  # mypy narrowing  # repro-lint: disable=R005
            completed = len(records) if collector is None else collector.count
            in_flight = sum(1 for entry in events if entry[2] == _HANDOFF)
            sanitizer.after_event(
                now, event, scheduler=scheduler, runtimes=runtimes,
                num_arrivals=num_arrivals, completed=completed,
                in_flight_handoffs=in_flight)

        while True:
            if next_state is not None and (
                    not events or next_arrival_t <= peek_event_time()):
                now = next_arrival_t
                scheduler.push(next_state)
                num_arrivals += 1
                arrived = next_state
                # peel the following arrival *before* pumping so the
                # dispatch horizon already points past this one
                next_state = next(arrivals, None)
                next_arrival_t = (next_state.request.arrival_s
                                  if next_state is not None
                                  else float("inf"))
                arr_index += 1
                pump(None, now)
                if sanitizer is not None:
                    sanitize_check(now, ("arrival",
                                         arrived.request.request_id, now))
                continue
            if not events:
                break
            now, _, kind, payload = pop_event()
            if kind == _HANDOFF:
                lifecycle.transition(payload, "handoff_arrive")
                scheduler.push(payload)
                pump(None, now)
                if sanitizer is not None:
                    sanitize_check(now, ("handoff",
                                         payload.request.request_id, now))
            else:
                runtime = payload[1]
                for state in runtime.complete_step(payload, now, stats):
                    record(state, now)
                if fast_completer:
                    launch = runtime.dispatch(scheduler, now, stats, None,
                                              next_arrival_t,
                                              horizon_fn=horizon_fn)
                    if launch is not None:
                        completes = launch.completes_at_s
                        if completes is None:
                            completes = now + launch.duration_s
                        push_event((completes, next(seq), _STEP_DONE,
                                    launch.payload))
                else:
                    if has_roles:
                        launch_handoffs(runtime, now)
                    pump(runtime, now)
                if sanitizer is not None:
                    sanitize_check(now, ("step-done",
                                         runtime.instance_id, now))

        completed = len(records) if collector is None else collector.count
        if completed != num_arrivals:
            raise RuntimeError(
                f"engine stalled: {num_arrivals - completed} requests "
                "never finished (scheduler head permanently blocked)")

        self._save_pricing_caches()
        if collector is not None:
            return self._metrics_streaming(collector, runtimes, stats), []
        if not _is_id_sorted(records):
            records.sort(key=lambda r: r.request_id)
        return self._metrics(records, runtimes, stats), records

    # ------------------------------------------------------------------
    # metrics assembly
    # ------------------------------------------------------------------
    def _kv_pool_shape(self) -> Tuple[int, int]:
        """``(kv_block_size, kv_total_blocks)`` of the paged pools (0, 0
        outside paged mode)."""
        if self._kv_mode != "paged":
            return 0, 0
        managers = self.last_kv_managers
        # the pop()s are order-independent: only taken on singleton sets
        block_sizes = {m.block_size_tokens for m in managers}
        kv_block_size = (block_sizes.pop()  # repro-lint: disable=R006
                         if len(block_sizes) == 1 else 0)
        # per-instance pool size on a single class; the cluster-wide
        # total when classes have different pools
        totals = {m.total_blocks for m in managers}
        kv_total_blocks = (totals.pop() if len(totals) == 1  # repro-lint: disable=R006
                           else sum(m.total_blocks for m in managers))
        return kv_block_size, kv_total_blocks

    def _metrics(self, records: List[ServedRequest],
                 runtimes: List[InstanceRuntime],
                 stats: InstanceStats) -> ServingMetrics:
        makespan = max(r.finish_s for r in records)
        pool_time = makespan * self.num_instances
        managers = self.last_kv_managers
        per_class = self._per_class(records, runtimes, makespan)
        kv_block_size, kv_total_blocks = self._kv_pool_shape()
        return ServingMetrics(
            num_requests=len(records),
            num_instances=self.num_instances,
            num_nodes_per_instance=self.num_nodes_per_instance,
            makespan_s=makespan,
            generated_tokens=sum(r.decode_len for r in records),
            queueing_delays_s=[r.queueing_delay_s for r in records],
            end_to_end_latencies_s=[r.end_to_end_latency_s for r in records],
            service_times_s=[r.service_time_s for r in records],
            ttfts_s=[r.ttft_s for r in records if r.ttft_s is not None],
            tpots_s=[r.tpot_s for r in records if r.ttft_s is not None],
            preemptions=sum(r.preemptions for r in records),
            policy=self.policy,
            prefill_mode=self.prefill_mode,
            busy_time_s=stats.busy_time,
            prefill_tokens_processed=stats.prefill_tokens,
            decode_step_time_s=stats.decode_time,
            prefill_step_time_s=stats.prefill_time,
            mixed_step_time_s=stats.mixed_time,
            kv_mode=self._kv_mode,
            kv_block_size=kv_block_size,
            kv_total_blocks=kv_total_blocks,
            mean_running_batch=(stats.batch_time / pool_time
                                if pool_time > 0 else 0.0),
            mean_kv_occupancy=(stats.kv_occ_time / pool_time
                               if pool_time > 0 else 0.0),
            peak_kv_occupancy=stats.peak_kv_occupancy,
            mean_kv_fragmentation=(stats.frag_time / stats.busy_time
                                   if stats.busy_time > 0 else 0.0),
            swap_out_count=sum(m.swap_out_count for m in managers),
            swap_in_count=sum(m.swap_in_count for m in managers),
            swapped_bytes=sum(m.swapped_bytes_total for m in managers),
            swap_time_s=stats.swap_time_s,
            handoff_count=sum(r.stats.handoff_out_count for r in runtimes),
            handoff_time_s=sum(r.stats.handoff_time_s for r in runtimes),
            kv_prefix_sharing=self.kv_prefix_sharing,
            prefix_hits=sum(m.prefix_hits for m in managers),
            prefill_tokens_saved=sum(m.prefix_tokens_reused
                                     for m in managers),
            cow_copies=sum(m.cow_copies for m in managers),
            mean_kv_shared_fraction=(stats.shared_kv_time / stats.busy_time
                                     if stats.busy_time > 0 else 0.0),
            cluster=str(self.cluster),
            router=self.router.name,
            per_class=per_class,
        )

    def _per_class(self, records: List[ServedRequest],
                   runtimes: List[InstanceRuntime],
                   makespan: float) -> List[InstanceClassMetrics]:
        """Aggregate per-runtime accumulators and records by instance
        class (spec order).  Records with ``instance_id=None`` never ran on
        any instance and are excluded."""
        by_label: Dict[str, List[InstanceRuntime]] = {}
        for runtime in runtimes:
            by_label.setdefault(runtime.class_label, []).append(runtime)
        out: List[InstanceClassMetrics] = []
        for label, group in by_label.items():
            ids = {r.instance_id for r in group}
            class_records = [r for r in records
                             if r.instance_id is not None
                             and r.instance_id in ids]
            class_time = makespan * len(group)
            out.append(InstanceClassMetrics(
                label=label,
                num_instances=len(group),
                num_nodes=group[0].num_nodes,
                role=group[0].role,
                requests=len(class_records),
                generated_tokens=sum(r.decode_len for r in class_records),
                makespan_s=makespan,
                busy_time_s=sum(r.stats.busy_time for r in group),
                batch_time_s=sum(r.stats.batch_time for r in group),
                ttfts_s=[r.ttft_s for r in class_records
                         if r.ttft_s is not None],
                tpots_s=[r.tpot_s for r in class_records
                         if r.ttft_s is not None],
                preemptions=sum(r.preemptions for r in class_records),
                mean_kv_occupancy=(sum(r.stats.kv_occ_time for r in group)
                                   / class_time if class_time > 0 else 0.0),
                peak_kv_occupancy=max(
                    (r.stats.peak_kv_occupancy for r in group), default=0.0),
                kv_total_blocks=(group[0].kv.total_blocks
                                 if group[0].kv is not None else 0),
                swap_out_count=sum(r.kv.swap_out_count for r in group
                                   if r.kv is not None),
                swap_in_count=sum(r.kv.swap_in_count for r in group
                                  if r.kv is not None),
                prefix_hits=sum(r.kv.prefix_hits for r in group
                                if r.kv is not None),
                prefill_tokens_saved=sum(r.kv.prefix_tokens_reused
                                         for r in group
                                         if r.kv is not None),
                handoffs_out=sum(r.stats.handoff_out_count for r in group),
                handoffs_in=sum(r.stats.handoff_in_count for r in group),
                handoff_time_s=sum(r.stats.handoff_time_s for r in group),
            ))
        return out

    def _metrics_streaming(self, collector: StreamingMetricsCollector,
                           runtimes: List[InstanceRuntime],
                           stats: InstanceStats) -> ServingMetrics:
        """Streaming-mode metrics assembly: counters and step accounting
        are exact (identical to full mode), latency distributions come as
        :class:`~repro.serving.metrics.StreamingQuantile` aggregates, and
        the per-request lists stay empty."""
        makespan = collector.max_finish_s
        pool_time = makespan * self.num_instances
        managers = self.last_kv_managers
        kv_block_size, kv_total_blocks = self._kv_pool_shape()
        return ServingMetrics(
            num_requests=collector.count,
            num_instances=self.num_instances,
            num_nodes_per_instance=self.num_nodes_per_instance,
            makespan_s=makespan,
            generated_tokens=collector.generated_tokens,
            preemptions=collector.preemptions,
            policy=self.policy,
            prefill_mode=self.prefill_mode,
            busy_time_s=stats.busy_time,
            prefill_tokens_processed=stats.prefill_tokens,
            decode_step_time_s=stats.decode_time,
            prefill_step_time_s=stats.prefill_time,
            mixed_step_time_s=stats.mixed_time,
            kv_mode=self._kv_mode,
            kv_block_size=kv_block_size,
            kv_total_blocks=kv_total_blocks,
            mean_running_batch=(stats.batch_time / pool_time
                                if pool_time > 0 else 0.0),
            mean_kv_occupancy=(stats.kv_occ_time / pool_time
                               if pool_time > 0 else 0.0),
            peak_kv_occupancy=stats.peak_kv_occupancy,
            mean_kv_fragmentation=(stats.frag_time / stats.busy_time
                                   if stats.busy_time > 0 else 0.0),
            swap_out_count=sum(m.swap_out_count for m in managers),
            swap_in_count=sum(m.swap_in_count for m in managers),
            swapped_bytes=sum(m.swapped_bytes_total for m in managers),
            swap_time_s=stats.swap_time_s,
            handoff_count=sum(r.stats.handoff_out_count for r in runtimes),
            handoff_time_s=sum(r.stats.handoff_time_s for r in runtimes),
            kv_prefix_sharing=self.kv_prefix_sharing,
            prefix_hits=sum(m.prefix_hits for m in managers),
            prefill_tokens_saved=sum(m.prefix_tokens_reused
                                     for m in managers),
            cow_copies=sum(m.cow_copies for m in managers),
            mean_kv_shared_fraction=(stats.shared_kv_time / stats.busy_time
                                     if stats.busy_time > 0 else 0.0),
            cluster=str(self.cluster),
            router=self.router.name,
            per_class=self._per_class_streaming(collector, runtimes,
                                                makespan),
            metrics_mode="streaming",
            streams=collector.streams(),
            slo_pin=collector.slo,
            slo_good_requests=collector.slo_good,
        )

    def _per_class_streaming(self, collector: StreamingMetricsCollector,
                             runtimes: List[InstanceRuntime],
                             makespan: float) -> List[InstanceClassMetrics]:
        """Per-class aggregates without per-request records: request and
        token counters come from the collector's per-class tallies, the
        time-weighted accumulators from the per-runtime stats (exactly as
        in full mode).  Per-class latency *percentiles* are full-fidelity
        only; the mean TTFT survives via the count/sum pair."""
        by_label: Dict[str, List[InstanceRuntime]] = {}
        for runtime in runtimes:
            by_label.setdefault(runtime.class_label, []).append(runtime)
        out: List[InstanceClassMetrics] = []
        for label, group in by_label.items():
            tally = collector.per_class.get(label, [0, 0, 0, 0, 0.0])
            class_time = makespan * len(group)
            out.append(InstanceClassMetrics(
                label=label,
                num_instances=len(group),
                num_nodes=group[0].num_nodes,
                role=group[0].role,
                requests=tally[0],
                generated_tokens=tally[1],
                makespan_s=makespan,
                busy_time_s=sum(r.stats.busy_time for r in group),
                batch_time_s=sum(r.stats.batch_time for r in group),
                ttft_count=tally[3],
                ttft_sum_s=tally[4],
                preemptions=tally[2],
                mean_kv_occupancy=(sum(r.stats.kv_occ_time for r in group)
                                   / class_time if class_time > 0 else 0.0),
                peak_kv_occupancy=max(
                    (r.stats.peak_kv_occupancy for r in group), default=0.0),
                kv_total_blocks=(group[0].kv.total_blocks
                                 if group[0].kv is not None else 0),
                swap_out_count=sum(r.kv.swap_out_count for r in group
                                   if r.kv is not None),
                swap_in_count=sum(r.kv.swap_in_count for r in group
                                  if r.kv is not None),
                prefix_hits=sum(r.kv.prefix_hits for r in group
                                if r.kv is not None),
                prefill_tokens_saved=sum(r.kv.prefix_tokens_reused
                                         for r in group
                                         if r.kv is not None),
                handoffs_out=sum(r.stats.handoff_out_count for r in group),
                handoffs_in=sum(r.stats.handoff_in_count for r in group),
                handoff_time_s=sum(r.stats.handoff_time_s for r in group),
            ))
        return out
