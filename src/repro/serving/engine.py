"""Token-level serving engine with continuous batching and preemption.

Where :class:`repro.serving.simulator.ServingSimulator` treats each request as
one opaque service-time blob, this engine advances every instance one *step*
at a time — a prefill chunk for one request or a single decode step for the
whole running batch — using the step-level core API
(:meth:`repro.core.multi_node.LoopLynxSystem.decode_step_latency_s`).  That
granularity is what makes production serving behaviour expressible:

* **continuous batching** — requests join the running batch at any step
  boundary and leave the moment their last token is generated (no
  batch-of-requests barrier);
* **pluggable scheduling** — admission order comes from a
  :class:`~repro.serving.schedulers.SchedulerPolicy` (FIFO, SJF, priority);
* **KV-capacity admission** — with a
  :class:`~repro.serving.schedulers.KVAdmissionController`, requests queue
  while the cache is full instead of overflowing it;
* **preemption** — the priority policy may evict lower-priority running work;
  the victim loses its KV cache and restarts from prefill when re-admitted;
* **token-level metrics** — time-to-first-token and time-per-output-token
  exist because individual token emissions have timestamps.

The discrete-event loop reuses the heap/sequence-counter idiom of
:mod:`repro.dataflow.engine`: a single time-ordered event heap over request
arrivals and per-instance step completions, so results are exact and
reproducible (no wall-clock time).

Timing conventions match the whole-request simulator so the two agree when
batching is off: prefill emits no output token (the paper's token-serial
pipeline), the first output token appears at the end of the first decode
step, and a request with ``decode_len`` tokens runs ``decode_len`` decode
steps.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.multi_node import LoopLynxSystem
from repro.serving.metrics import ServingMetrics
from repro.serving.schedulers import (
    KVAdmissionController,
    SchedulerPolicy,
    make_scheduler,
)
from repro.workloads.traces import Request, RequestTrace


@dataclass(frozen=True)
class ServedRequest:
    """Token-level timing record of one served request."""

    request_id: int
    instance_id: int
    arrival_s: float
    admitted_s: float
    first_token_s: Optional[float]
    finish_s: float
    prefill_len: int
    decode_len: int
    tenant: str = "default"
    priority: int = 0
    preemptions: int = 0

    @property
    def queueing_delay_s(self) -> float:
        """Time from arrival until first admission into a batch."""
        return self.admitted_s - self.arrival_s

    @property
    def service_time_s(self) -> float:
        return self.finish_s - self.admitted_s

    @property
    def end_to_end_latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token (None when the request generated nothing)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token after the first."""
        if self.first_token_s is None or self.decode_len <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.decode_len - 1)


class _RequestState:
    """Mutable in-flight bookkeeping for one request."""

    __slots__ = ("request", "prefill_done", "decode_done", "admitted_s",
                 "last_admitted_s", "first_token_s", "preemptions",
                 "instance_id")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.prefill_done = 0
        self.decode_done = 0
        self.admitted_s: Optional[float] = None
        self.last_admitted_s = 0.0
        self.first_token_s: Optional[float] = None
        self.preemptions = 0
        self.instance_id = -1

    @property
    def prefill_remaining(self) -> int:
        return self.request.prefill_len - self.prefill_done

    @property
    def context_len(self) -> int:
        """Cached positions the next decode step attends over."""
        return self.prefill_done + self.decode_done

    def reset_progress(self) -> None:
        """Drop all computed state (preemption releases the KV cache)."""
        self.prefill_done = 0
        self.decode_done = 0


@dataclass
class _Instance:
    """One LoopLynx deployment running a batch of requests."""

    instance_id: int
    batch: List[_RequestState] = field(default_factory=list)
    kv_used_tokens: int = 0
    busy: bool = False


class TokenServingEngine:
    """Discrete-event simulation of a pool of instances at step granularity.

    Parameters
    ----------
    num_instances, num_nodes_per_instance, system:
        Pool shape, as in :class:`~repro.serving.simulator.ServingSimulator`.
    policy:
        Scheduler policy name (``fifo``, ``sjf``, ``priority``) or a
        :class:`SchedulerPolicy` factory-produced instance per run is built
        from the name.
    max_batch_size:
        Decode-batch ceiling per instance; 1 disables batching (the
        compatibility regime matching the whole-request simulator).
    prefill_chunk_tokens:
        Prompt tokens processed per prefill step.  Smaller chunks interleave
        prefill with running decodes sooner; ``None`` runs each prompt to
        completion in one step.
    kv_controller:
        Optional :class:`KVAdmissionController`; when set, admission reserves
        worst-case KV capacity and requests queue while the cache is full.
    context_bucket:
        Decode-step timings are memoized with the context length rounded up
        to this multiple (1 = exact; larger buckets trade a conservative
        over-estimate for far fewer cycle-model evaluations).
    """

    def __init__(self, num_instances: int = 1, num_nodes_per_instance: int = 2,
                 system: Optional[LoopLynxSystem] = None,
                 policy: str = "fifo",
                 max_batch_size: int = 8,
                 prefill_chunk_tokens: Optional[int] = 64,
                 kv_controller: Optional[KVAdmissionController] = None,
                 context_bucket: int = 32) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive")
        if context_bucket <= 0:
            raise ValueError("context_bucket must be positive")
        self.num_instances = num_instances
        self.num_nodes_per_instance = num_nodes_per_instance
        self.system = system or LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        self.policy = policy
        make_scheduler(policy)  # fail fast on unknown names
        self.max_batch_size = max_batch_size
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.kv_controller = kv_controller
        self.context_bucket = context_bucket
        self._step_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # step timing (memoized cycle-model evaluations)
    # ------------------------------------------------------------------
    def _bucketed(self, context_len: int) -> int:
        bucket = self.context_bucket
        if bucket <= 1 or context_len == 0:
            return context_len
        return -(-context_len // bucket) * bucket

    def _step_latency_s(self, context_len: int, batch_size: int) -> float:
        key = (self._bucketed(context_len), batch_size)
        if key not in self._step_cache:
            self._step_cache[key] = self.system.decode_step_latency_s(
                key[0], batch_size)
        return self._step_cache[key]

    def _prefill_chunk_latency_s(self, start_pos: int, chunk_len: int) -> float:
        """Token-serial prefill of ``chunk_len`` prompt tokens starting at
        cached position ``start_pos`` (same per-position cost as a decode
        step, which is how the paper's pipeline streams prompts)."""
        return sum(self._step_latency_s(pos, 1)
                   for pos in range(start_pos, start_pos + chunk_len))

    def _head_fits_after_eviction(self, instance: _Instance,
                                  victim: _RequestState,
                                  head: _RequestState) -> bool:
        """Would evicting ``victim`` make ``head`` admissible?  The slot is
        always freed; with admission control the freed KV reservation must
        also cover the head's."""
        if self.kv_controller is None:
            return True
        freed = (instance.kv_used_tokens
                 - self.kv_controller.reservation_tokens(victim.request))
        return self.kv_controller.fits(head.request, freed)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, trace: RequestTrace) -> Tuple[ServingMetrics, List[ServedRequest]]:
        """Serve the trace and return aggregate metrics plus per-request
        records (sorted by request id)."""
        if len(trace) == 0:
            raise ValueError("trace is empty")
        if self.kv_controller is not None:
            self.kv_controller.validate(trace)

        scheduler = make_scheduler(self.policy)
        instances = [_Instance(i) for i in range(self.num_instances)]
        events: List[Tuple[float, int, int, object]] = []
        seq = itertools.count()
        _ARRIVAL, _STEP_DONE = 0, 1
        for request in sorted(trace, key=lambda r: (r.arrival_s, r.request_id)):
            heapq.heappush(events, (request.arrival_s, next(seq), _ARRIVAL,
                                    _RequestState(request)))

        records: List[ServedRequest] = []

        def release(instance: _Instance, state: _RequestState) -> None:
            if self.kv_controller is not None:
                instance.kv_used_tokens -= \
                    self.kv_controller.reservation_tokens(state.request)

        def dispatch(instance: _Instance, now: float) -> None:
            """Admit/preempt at a step boundary, then launch the next step."""
            admitted = True
            while admitted:
                admitted = False
                # admissions from the head of the waiting queue
                while len(instance.batch) < self.max_batch_size:
                    head = scheduler.peek()
                    if head is None:
                        break
                    if (self.kv_controller is not None
                            and not self.kv_controller.fits(
                                head.request, instance.kv_used_tokens)):
                        break
                    scheduler.pop()
                    if head.admitted_s is None:
                        head.admitted_s = now
                    head.last_admitted_s = now
                    head.instance_id = instance.instance_id
                    if self.kv_controller is not None:
                        instance.kv_used_tokens += \
                            self.kv_controller.reservation_tokens(head.request)
                    instance.batch.append(head)
                    admitted = True
                # preemption: a blocked head (no batch slot, or KV capacity
                # exhausted) may evict strictly lower-priority work — but only
                # when evicting one victim actually makes the head admissible;
                # otherwise the victim's computed state would be thrown away
                # for nothing
                head = scheduler.peek()
                if head is not None and instance.batch:
                    slots_full = len(instance.batch) >= self.max_batch_size
                    kv_full = (self.kv_controller is not None
                               and not self.kv_controller.fits(
                                   head.request, instance.kv_used_tokens))
                    victim = None
                    if slots_full or kv_full:
                        victim = scheduler.preemption_victim(
                            instance.batch, head)
                    if (victim is not None
                            and self._head_fits_after_eviction(
                                instance, victim, head)):
                        instance.batch.remove(victim)
                        release(instance, victim)
                        victim.reset_progress()
                        victim.preemptions += 1
                        scheduler.push(victim)
                        admitted = True  # retry admission for the head

            if not instance.batch:
                instance.busy = False
                return
            prefilling = next((s for s in instance.batch
                               if s.prefill_remaining > 0), None)
            if prefilling is not None:
                chunk = prefilling.prefill_remaining
                if self.prefill_chunk_tokens is not None:
                    chunk = min(chunk, self.prefill_chunk_tokens)
                duration = self._prefill_chunk_latency_s(
                    prefilling.prefill_done, chunk)
                payload = ("prefill", instance, prefilling, chunk)
            else:
                context = max(s.context_len for s in instance.batch)
                duration = self._step_latency_s(context, len(instance.batch))
                payload = ("decode", instance, list(instance.batch), 0)
            instance.busy = True
            heapq.heappush(events, (now + duration, next(seq), _STEP_DONE,
                                    payload))

        def complete_step(payload, now: float) -> _Instance:
            kind, instance, target, chunk = payload
            if kind == "prefill":
                target.prefill_done += chunk
                if (target.prefill_remaining == 0
                        and target.request.decode_len == 0):
                    finish(instance, target, now)
            else:
                for state in target:
                    state.decode_done += 1
                    if state.first_token_s is None:
                        state.first_token_s = now
                    if state.decode_done >= state.request.decode_len:
                        finish(instance, state, now)
            return instance

        def finish(instance: _Instance, state: _RequestState, now: float) -> None:
            instance.batch.remove(state)
            release(instance, state)
            request = state.request
            records.append(ServedRequest(
                request_id=request.request_id,
                instance_id=state.instance_id,
                arrival_s=request.arrival_s,
                admitted_s=state.admitted_s if state.admitted_s is not None else now,
                first_token_s=state.first_token_s,
                finish_s=now,
                prefill_len=request.prefill_len,
                decode_len=request.decode_len,
                tenant=request.tenant,
                priority=request.priority,
                preemptions=state.preemptions,
            ))

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                scheduler.push(payload)
                for instance in instances:
                    if not instance.busy:
                        dispatch(instance, now)
            else:
                instance = complete_step(payload, now)
                dispatch(instance, now)

        if len(records) != len(trace):
            raise RuntimeError(
                f"engine stalled: {len(trace) - len(records)} requests "
                "never finished (scheduler head permanently blocked)")

        records.sort(key=lambda r: r.request_id)
        makespan = max(r.finish_s for r in records)
        metrics = ServingMetrics(
            num_requests=len(records),
            num_instances=self.num_instances,
            num_nodes_per_instance=self.num_nodes_per_instance,
            makespan_s=makespan,
            generated_tokens=sum(r.decode_len for r in records),
            queueing_delays_s=[r.queueing_delay_s for r in records],
            end_to_end_latencies_s=[r.end_to_end_latency_s for r in records],
            service_times_s=[r.service_time_s for r in records],
            ttfts_s=[r.ttft_s for r in records if r.ttft_s is not None],
            tpots_s=[r.tpot_s for r in records if r.ttft_s is not None],
            preemptions=sum(r.preemptions for r in records),
            policy=self.policy,
        )
        return metrics, records
