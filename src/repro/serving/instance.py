"""Per-instance serving runtime: one LoopLynx deployment at step granularity.

This module is the *instance* half of the serving engine's two-layer split:

* :class:`InstanceRuntime` (here) owns everything that happens **inside one
  instance** — the running batch, step formation (pure decode, exclusive
  prefill chunks, or token-budgeted mixed steps), KV-capacity admission
  gates (worst-case reservation or paged block growth), and preemption
  mechanics (swap-to-host or discard-and-recompute).  Every runtime owns its
  own :class:`~repro.core.multi_node.LoopLynxSystem`, so instances in one
  cluster may differ in node count, KV budget and block pool;
* the *cluster* half (:mod:`repro.serving.cluster` +
  :class:`~repro.serving.engine.TokenServingEngine`) owns everything that
  happens **between** instances: the shared waiting queue, routing of work
  to instances, and the discrete-event clock.

The boundary is the *step boundary*: the engine calls :meth:`dispatch` when
an instance is at one (idle, or just completed a step) and the runtime
returns the next step to execute — the engine never reaches into a batch
mid-step, and the runtime never touches the event heap.

All the logic here is extracted verbatim from the pre-cluster
``TokenServingEngine`` (PR 1–3); homogeneous pools remain bit-identical to
those engines, a property pinned by golden-timestamp tests.

Units match the engine: seconds (simulated clock), tokens (lengths), cached
positions or blocks per node (KV), bytes summed over nodes (swap traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.multi_node import LoopLynxSystem
from repro.memory.paged_kv import PagedKVManager
from repro.serving import lifecycle
from repro.serving.cluster import INSTANCE_ROLES
from repro.serving.schedulers import KVAdmissionController, SchedulerPolicy
from repro.units import Blocks, Seconds, Tokens
from repro.workloads.traces import Request


def kv_capacity_admits(kv_controller: Optional[KVAdmissionController],
                       kv: Optional[PagedKVManager],
                       request: Request,
                       role: str = "both") -> bool:
    """Could a KV configuration serve ``request`` running alone and empty?

    The single source of truth for whole-request feasibility, shared by
    the engine's trace validation, each runtime's admission gate and the
    class-affinity router's feasibility bump — if these ever disagreed, a
    request could pass validation yet block the queue head forever.

    ``role`` bounds the context the instance must hold: a ``"prefill"``
    instance hands the KV off the moment the prompt is computed, so only
    the prompt itself must fit; ``"decode"`` and ``"both"`` instances carry
    the request to its full context.
    """
    if kv_controller is not None:
        tokens = (min(request.prefill_len, kv_controller.layout.max_seq_len)
                  if role == "prefill"
                  else kv_controller.reservation_tokens(request))
        return tokens <= kv_controller.capacity_tokens
    if kv is not None:
        tokens = (min(request.prefill_len, kv.layout.max_seq_len)
                  if role == "prefill"
                  else kv.max_request_tokens(request))
        return kv.blocks_needed(tokens) <= kv.total_blocks
    return True


class RequestState:
    """Mutable in-flight bookkeeping for one request."""

    __slots__ = ("request", "prefill_len", "decode_len", "prefill_done",
                 "decode_done", "admitted_s",
                 "last_admitted_s", "first_token_s", "preemptions",
                 "swap_outs", "instance_id", "swapped_on", "handoffs",
                 "handoff_pending", "phase")

    def __init__(self, request: Request) -> None:
        self.request = request
        # request lengths cached as plain ints: the step-formation loop
        # reads them once per batch member per step, and two attribute
        # hops through the frozen Request/Scenario pair are measurable
        # at a million requests
        self.prefill_len = request.prefill_len
        self.decode_len = request.decode_len
        self.prefill_done = 0
        self.decode_done = 0
        self.admitted_s: Optional[float] = None
        self.last_admitted_s = 0.0
        self.first_token_s: Optional[float] = None
        self.preemptions = 0
        self.swap_outs = 0
        #: Prefill→decode handoffs this request went through (0 outside
        #: disaggregated clusters; >1 only if a recompute preemption sent
        #: it back through the prefill pool).
        self.handoffs = 0
        #: True between a handoff's KV import and the decode instance's
        #: swap-in — lets the resuming instance attribute that transfer to
        #: handoff accounting rather than preemption traffic.
        self.handoff_pending = False
        #: Instance that served (or is serving) this request; None until the
        #: first admission — a request that never ran keeps None, and the
        #: engine surfaces that as ``ServedRequest.instance_id = None``
        #: rather than a fake id.
        self.instance_id: Optional[int] = None
        #: Instance holding this request's host-tier blocks after a swap-out
        #: (None otherwise).  A swapped request has instance affinity: its KV
        #: lives in that instance's host pool, so only that instance may
        #: resume it.
        self.swapped_on: Optional[int] = None
        #: Where in the declared request state machine this request sits
        #: (see :mod:`repro.serving.lifecycle`); every later write goes
        #: through ``lifecycle.transition`` — simcheck's L-pass rejects
        #: any other assignment.
        self.phase = lifecycle.INITIAL_PHASE

    @property
    def prefill_remaining(self) -> int:
        return self.prefill_len - self.prefill_done

    @property
    def context_len(self) -> Tokens:
        """Cached positions the next decode step attends over."""
        return self.prefill_done + self.decode_done

    def reset_progress(self) -> None:
        """Drop all computed state (a discarding preemption releases the KV
        cache, so prefill must be recomputed on re-admission)."""
        self.prefill_done = 0
        self.decode_done = 0


@dataclass
class InstanceStats:
    """Time-weighted occupancy accumulators for one instance (or, summed,
    for a whole run — the engine keeps one global instance and one per
    runtime so per-class metrics come for free)."""

    batch_time: float = 0.0      # Σ advancing requests × step seconds
    busy_time: float = 0.0       # Σ step seconds
    kv_occ_time: float = 0.0     # Σ occupancy fraction × step seconds
    frag_time: float = 0.0       # Σ fragmentation fraction × step seconds
    shared_kv_time: float = 0.0  # Σ shared/cached block fraction × step secs
    peak_kv_occupancy: float = 0.0
    swap_time_s: Seconds = 0.0     # Σ PCIe transfer seconds spent swapping
    prefill_tokens: Tokens = 0      # prompt tokens computed (recomputes count)
    decode_time: float = 0.0     # Σ pure-decode step seconds
    prefill_time: float = 0.0    # Σ pure-prefill step seconds
    mixed_time: float = 0.0      # Σ mixed prefill+decode step seconds
    # prefill→decode handoffs (disaggregated clusters; accumulated on the
    # per-runtime stats only — the engine sums runtimes for cluster totals)
    handoff_out_count: int = 0   # prompts exported to a decode instance
    handoff_in_count: int = 0    # handed-off prompts resumed here
    handoff_time_s: Seconds = 0.0  # Σ PCIe seconds of handoff transfers


@dataclass
class StepLaunch:
    """One step an instance is about to execute, priced and planned.

    The engine turns this into a step-completion event ``duration_s`` ahead
    of the current clock; ``payload`` round-trips back into
    :meth:`InstanceRuntime.complete_step`.  A fast-forwarded launch (several
    provably identical decode steps folded into one event) carries the
    absolute completion time in ``completes_at_s`` — accumulated one step
    at a time so the float arithmetic matches the event-per-step chain
    bit for bit.
    """

    duration_s: Seconds
    payload: Tuple
    completes_at_s: Optional[Seconds] = None


class InstanceRuntime:
    """One LoopLynx deployment running a batch of requests at step
    granularity.

    Parameters
    ----------
    instance_id:
        Position of this instance in the cluster (stable across the run).
    system:
        The instance's own cycle model; node count, and therefore step
        timing, is per-instance state — this is what lets one cluster mix
        1/2/4-node instances.
    class_label:
        Instance-class tag (e.g. ``"2n"``) used for per-class metrics and
        class-affinity routing; instances built from the same
        :class:`~repro.serving.cluster.InstanceSpec` share it.
    role:
        Serving role (``"both"``, ``"prefill"``, ``"decode"``).  A prefill
        runtime only admits requests whose prompt is not yet computed and
        hands each finished prompt's paged KV blocks off instead of
        decoding; a decode runtime only admits requests whose prompt is
        done (their KV arrives via handoff).  Both restricted roles
        require a paged block pool — the handoff *is* a block-table move —
        and ``"both"`` is the historical, bit-identical behaviour.
    max_batch_size, prefill_chunk_tokens, prefill_mode,
    mixed_step_token_budget, preemption_mode, context_bucket:
        Step-formation knobs, exactly as on the engine (see
        :class:`~repro.serving.engine.TokenServingEngine`).
    kv_controller:
        Reservation-mode admission gate (may be shared across instances of
        one class; it is stateless, the per-instance reservation count lives
        here in ``kv_used_tokens``).
    kv:
        This instance's own paged block pool (never shared), or None.
    swap_priority:
        When True (paged swap mode), preemption victims are parked on this
        instance and resumed ahead of new admissions — their KV is already
        paid for, so admitting fresh work first would just churn the pool.
    step_cache, mixed_step_cache, prefill_cache, transfer_cache:
        Memoization dicts for step, prefill-chunk and swap/handoff-transfer
        timings; instances of the same class share them (the cycle model
        and the PCIe pricing are pure functions of shape, so sharing only
        saves evaluations — cache hits are bit-identical to cold computes).
    """

    def __init__(self, instance_id: int, system: LoopLynxSystem, *,
                 class_label: str = "",
                 role: str = "both",
                 max_batch_size: int = 8,
                 prefill_chunk_tokens: Optional[int] = 64,
                 prefill_mode: str = "exclusive",
                 mixed_step_token_budget: int = 256,
                 kv_controller: Optional[KVAdmissionController] = None,
                 kv: Optional[PagedKVManager] = None,
                 preemption_mode: str = "swap",
                 context_bucket: int = 32,
                 swap_priority: bool = False,
                 step_cache: Optional[Dict] = None,
                 mixed_step_cache: Optional[Dict] = None,
                 prefill_cache: Optional[Dict] = None,
                 transfer_cache: Optional[Dict] = None) -> None:
        self.instance_id = instance_id
        self.system = system
        self.num_nodes = system.num_nodes
        self.class_label = class_label or f"{system.num_nodes}n"
        if role not in INSTANCE_ROLES:
            raise ValueError(f"unknown instance role {role!r}; "
                             f"known: {', '.join(INSTANCE_ROLES)}")
        if role != "both" and kv is None:
            raise ValueError(
                "prefill/decode roles hand off paged KV block tables; "
                "build the runtime with a PagedKVManager (kv=...)")
        self.role = role
        self.max_batch_size = max_batch_size
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.prefill_mode = prefill_mode
        self.mixed_step_token_budget = mixed_step_token_budget
        self.kv_controller = kv_controller
        self.kv = kv
        self.preemption_mode = preemption_mode
        self.context_bucket = context_bucket
        self.swap_priority = swap_priority
        self._step_cache: Dict[Tuple[int, int], float] = (
            step_cache if step_cache is not None else {})
        self._mixed_step_cache: Dict[Tuple[int, int, int], float] = (
            mixed_step_cache if mixed_step_cache is not None else {})
        self._prefill_cache: Dict[Tuple[int, int], float] = (
            prefill_cache if prefill_cache is not None else {})
        self._transfer_cache: Dict[int, float] = (
            transfer_cache if transfer_cache is not None else {})
        #: Set by the engine when fast-forwarding batched decode steps is
        #: provably identical to one-event-per-step execution (single-class
        #: pools without paged KV; see :meth:`dispatch`).
        self.allow_multistep = False
        #: True when every waiting request is trivially admissible here —
        #: no role constraint and no KV gate of either kind — letting the
        #: admission loop skip the per-head checks.
        self._admits_all = (role == "both" and kv_controller is None
                            and kv is None)
        # ---- mutable per-run state ----
        self.batch: List[RequestState] = []
        #: Batch members whose prompt is not fully computed — maintained
        #: incrementally so step formation skips the per-step batch scan.
        self._num_prefilling = 0
        self.kv_used_tokens = 0
        self.busy = False
        #: Pending swap-transfer seconds to serialize before the next step.
        self.pending_delay_s = 0.0
        #: Swap-priority holding pen: this instance's swapped-out victims,
        #: resumed ahead of new admissions (eviction order).
        self.parked: List[RequestState] = []
        #: Requests ever admitted here (re-admissions count) — the
        #: round-robin router's rotation key.
        self.admission_count = 0
        #: Handoffs produced by the last completed step: ``(state,
        #: cached_tokens, transfer_s)`` records the engine drains via
        #: :meth:`take_handoffs` and turns into handoff events.
        self.pending_handoffs: List[Tuple[RequestState, int, float]] = []
        self.stats = InstanceStats()

    # ------------------------------------------------------------------
    # step timing (memoized cycle-model evaluations)
    # ------------------------------------------------------------------
    def _bucketed(self, context_len: int) -> int:
        bucket = self.context_bucket
        if bucket <= 1 or context_len == 0:
            return context_len
        return -(-context_len // bucket) * bucket

    def step_latency_s(self, context_len: Tokens, batch_size: int) -> Seconds:
        """Seconds for one decode step over ``context_len`` cached positions
        with ``batch_size`` co-resident requests (memoized per bucket)."""
        bucket = self.context_bucket
        if bucket > 1 and context_len:
            context_len = -(-context_len // bucket) * bucket
        key = (context_len, batch_size)
        cached = self._step_cache.get(key)
        if cached is None:
            cached = self._step_cache[key] = \
                self.system.decode_step_latency_s(context_len, batch_size)
        return cached

    def prefill_chunk_latency_s(self, start_pos: int, chunk_len: Tokens) -> Seconds:
        """Seconds of token-serial prefill for ``chunk_len`` prompt tokens
        starting at cached position ``start_pos`` (same per-position cost as
        a decode step, which is how the paper's pipeline streams prompts).
        Memoized on ``(start_pos, chunk_len)``: the per-position sum is a
        pure function of the chunk shape, so a cache hit returns the exact
        float a cold compute would."""
        key = (start_pos, chunk_len)
        cached = self._prefill_cache.get(key)
        if cached is None:
            cached = self._prefill_cache[key] = sum(
                self.step_latency_s(pos, 1)
                for pos in range(start_pos, start_pos + chunk_len))
        return cached

    def swap_transfer_s(self, num_blocks: Blocks) -> Seconds:
        """Seconds one swap/handoff transfer of ``num_blocks`` device
        blocks occupies the PCIe link — the block manager's pricing,
        memoized per block count (it is a pure function of the count and
        the class's fixed block geometry)."""
        cached = self._transfer_cache.get(num_blocks)
        if cached is None:
            cached = self._transfer_cache[num_blocks] = \
                self.kv.swap_transfer_s(num_blocks)
        return cached

    def mixed_step_latency_s(self, max_context: int, num_decode: int,
                             prefill_tokens: Tokens) -> Seconds:
        """Seconds for one mixed step advancing ``num_decode`` requests by a
        token each while streaming ``prefill_tokens`` prompt tokens through
        the same weight pass.  ``max_context`` is the longest cached prefix
        in the step — decode contexts and prefill chunk-end positions alike
        (memoized per context bucket, like :meth:`step_latency_s`)."""
        key = (self._bucketed(max_context), num_decode, prefill_tokens)
        cached = self._mixed_step_cache.get(key)
        if cached is None:
            cached = self._mixed_step_cache[key] = \
                self.system.mixed_step_latency_s(
                    [key[0]] * num_decode, prefill_tokens,
                    prefill_context=key[0])
        return cached

    def _next_prefill_chunk(self, state: RequestState) -> int:
        """Prompt tokens ``state`` would stream in its next mixed step,
        before the step's token budget is split (per-request chunk cap and
        the whole-step budget both apply)."""
        chunk = min(state.prefill_remaining, self.mixed_step_token_budget)
        if self.prefill_chunk_tokens is not None:
            chunk = min(chunk, self.prefill_chunk_tokens)
        return chunk

    # ------------------------------------------------------------------
    # KV admission gates (mode-aware)
    # ------------------------------------------------------------------
    def _paged_admit_target(self, state: RequestState) -> int:
        """Cached positions a (non-swapped) request must cover at admission.

        Exclusive prefill claims the whole prompt plus one slot for the
        first decode append (the prompt is computed before any other step
        of the instance runs, so its blocks are needed up front).  Mixed
        prefill streams the prompt in chunk by chunk, so admission only
        claims the first chunk and the table grows per step alongside the
        decode appends.  Both are clamped to the context window.
        """
        request = state.request
        if self.prefill_mode == "mixed" and state.prefill_remaining > 0:
            tokens = state.context_len + self._next_prefill_chunk(state)
        elif self.role == "prefill":
            # a prefill instance never appends a decode token: the prompt
            # hands off the moment it completes, so no +1 growth slot
            tokens = request.prefill_len
        else:
            tokens = request.prefill_len + (1 if request.decode_len > 0 else 0)
        return min(tokens, self.kv.layout.max_seq_len)

    def _paged_admit_blocks(self, kv: PagedKVManager,
                            state: RequestState) -> int:
        """Device blocks the queue head must acquire to join the batch: the
        host-tier restore for a swapped-out request (plus any growth block
        its very next decode append needs), or its prompt allocation."""
        rid = state.request.request_id
        if kv.holds(rid) and kv.table(rid).is_swapped:
            restore = kv.table(rid).host_blocks
            if self.prefill_mode == "mixed" and state.prefill_remaining > 0:
                # a request swapped out mid-prefill appends a whole chunk in
                # its next mixed step, not a single decode token; budgeting
                # only context+1 would re-admit it without room to grow and
                # re-evict it at the same boundary (churn, PCIe both ways)
                next_tokens = state.context_len + self._next_prefill_chunk(state)
            else:
                next_tokens = state.context_len + 1
            next_target = min(next_tokens, kv.layout.max_seq_len)
            return restore + max(0, kv.blocks_needed(next_target) - restore)
        return kv.blocks_missing(rid, self._paged_admit_target(state))

    def _paged_growth_headroom(self, kv: PagedKVManager,
                               batch: Sequence[RequestState]) -> int:
        """Blocks the current batch members will claim for their next
        decode appends.  Admission must leave this headroom free, or a
        newly admitted (or swapped-in) request would be re-evicted by
        :meth:`_ensure_decode_capacity` at the same step boundary — pure
        churn, with PCIe transfers both ways in swap mode."""
        max_seq = kv.layout.max_seq_len
        headroom = 0
        for member in batch:
            if member.prefill_remaining > 0:
                if self.prefill_mode != "mixed":
                    continue  # prompt blocks were claimed at admission
                # mixed mode grows prefilling tables per step too
                target = member.context_len + self._next_prefill_chunk(member)
            else:
                target = member.context_len + 1
            headroom += kv.blocks_missing(
                member.request.request_id, min(target, max_seq))
        return headroom

    def can_ever_serve(self, request: Request) -> bool:
        """Could this instance serve ``request`` running alone and empty?

        In a homogeneous pool the engine-level trace validation rules out
        impossible requests up front; in a heterogeneous pool a request may
        exceed the *smallest* class's capacity while fitting a larger one,
        so each instance must also refuse such requests at its own gate
        (admitting one would strand it mid-growth).  A prefill-role
        instance only ever holds the prompt (the KV hands off at prompt
        completion), so only the prompt must fit.
        """
        return kv_capacity_admits(self.kv_controller, self.kv, request,
                                  role=self.role)

    def role_admits(self, state: RequestState) -> bool:
        """Does this instance's serving role accept ``state`` at all?

        Enforced in the runtime itself (not only in the disaggregated
        router) so role constraints hold under *every* router: a prefill
        instance only takes requests whose prompt still needs computing,
        a decode instance only takes requests whose prompt is done (their
        KV arrives via handoff — or was computed here before a swap).  A
        recompute-preempted victim loses its prompt progress, so it flows
        back through the prefill pool automatically.
        """
        if self.role == "prefill":
            return state.prefill_remaining > 0
        if self.role == "decode":
            return state.prefill_remaining == 0
        return True

    def kv_admits(self, state: RequestState) -> bool:
        """Does the instance's KV capacity admit ``state`` right now?

        A swapped-out request may only be resumed by the instance whose
        host tier holds its blocks (KV state cannot teleport between
        instances); every other instance reports it inadmissible.
        """
        if self.kv_controller is not None:
            return self.kv_controller.fits(state.request, self.kv_used_tokens)
        if self.kv is not None:
            if (state.swapped_on is not None
                    and state.swapped_on != self.instance_id):
                return False
            if not self.can_ever_serve(state.request):
                return False
            kv = self.kv
            need = (self._paged_admit_blocks(kv, state)
                    + self._paged_growth_headroom(kv, self.batch))
            return need <= kv.free_blocks
        return True

    def head_fits_after_eviction(self, victim: RequestState,
                                 head: RequestState) -> bool:
        """Would evicting ``victim`` make ``head`` admissible?  The batch
        slot is always freed; with KV admission the freed capacity (token
        reservation or device blocks) must also cover the head's."""
        if self.kv_controller is not None:
            freed = (self.kv_used_tokens
                     - self.kv_controller.reservation_tokens(victim.request))
            return self.kv_controller.fits(head.request, freed)
        if self.kv is not None:
            if (head.swapped_on is not None
                    and head.swapped_on != self.instance_id):
                return False  # the head's KV lives on another instance
            if not self.can_ever_serve(head.request):
                return False
            kv = self.kv
            freed = len(kv.table(victim.request.request_id).device_blocks)
            need = (self._paged_admit_blocks(kv, head)
                    + self._paged_growth_headroom(
                        kv, [s for s in self.batch if s is not victim]))
            return need <= kv.free_blocks + freed
        return True

    @property
    def kv_free_fraction(self) -> float:
        """Free fraction of this instance's KV capacity (1.0 when admission
        is unconstrained) — the KV-aware router's ranking key."""
        if self.kv is not None:
            if self.kv.total_blocks == 0:
                return 0.0
            return self.kv.free_blocks / self.kv.total_blocks
        if self.kv_controller is not None:
            if self.kv_controller.capacity_tokens == 0:
                return 0.0
            return 1.0 - self.kv_used_tokens / self.kv_controller.capacity_tokens
        return 1.0

    @property
    def load(self) -> int:
        """Requests this instance is responsible for right now (running
        batch plus parked swap-priority victims) — the least-loaded
        router's ranking key."""
        return len(self.batch) + len(self.parked)

    def holds_swapped(self, state: RequestState) -> bool:
        """Does this instance's host tier hold ``state``'s swapped blocks?"""
        return (state.swapped_on is not None
                and state.swapped_on == self.instance_id)

    def matched_prefix_tokens(self, request: Request) -> Tokens:
        """Prompt positions this instance's prefix cache could serve for
        ``request`` right now (0 without a sharing-enabled paged pool) —
        the cache-aware router's ranking signal."""
        kv = self.kv
        if kv is None or not kv.prefix_sharing:
            return 0
        token_ids = request.prompt_token_ids
        if not token_ids:
            return 0
        return kv.match_prefix_tokens(token_ids)

    # ------------------------------------------------------------------
    # batch membership
    # ------------------------------------------------------------------
    def release(self, state: RequestState) -> None:
        """Return a finished request's KV capacity to the pool."""
        if self.kv_controller is not None:
            self.kv_used_tokens -= \
                self.kv_controller.reservation_tokens(state.request)
        if self.kv is not None:
            self.kv.free(state.request.request_id)

    def admit(self, state: RequestState, now: float) -> None:
        """Move a waiting request into the running batch, claiming KV
        capacity (and paying the swap-in transfer for a swapped-out
        victim resuming in paged ``swap`` mode)."""
        if state.phase == lifecycle.QUEUED:
            lifecycle.transition(state, "admit")
        elif state.phase == lifecycle.EVICTED_SWAP:
            # a swapped victim resumes exactly where it stopped; a
            # handed-off prompt arrives with its prefill fully computed,
            # so it takes the decode resume edge
            lifecycle.transition(
                state, "resume_swap_prefill"
                if state.prefill_len > state.prefill_done
                else "resume_swap_decode")
        else:
            lifecycle.transition(state, "readmit_recompute")
        if state.admitted_s is None:
            state.admitted_s = now
        state.last_admitted_s = now
        state.instance_id = self.instance_id
        self.admission_count += 1
        if self.kv_controller is not None:
            self.kv_used_tokens += \
                self.kv_controller.reservation_tokens(state.request)
        if self.kv is not None:
            kv = self.kv
            rid = state.request.request_id
            if kv.holds(rid) and kv.table(rid).is_swapped:
                blocks, _ = kv.swap_in(rid)
                transfer = self.swap_transfer_s(blocks)
                self.pending_delay_s += transfer
                if state.handoff_pending:
                    # the restore of a handed-off prompt is the receiving
                    # half of the handoff transfer, not preemption traffic
                    state.handoff_pending = False
                    self.stats.handoff_in_count += 1
                    self.stats.handoff_time_s += transfer
                state.swapped_on = None
            elif (kv.prefix_sharing and state.prefill_done == 0
                    and not kv.holds(rid)
                    and state.request.prompt_token_ids is not None):
                matched = kv.match_prefix_tokens(state.request.prompt_token_ids)
                if matched > 0:
                    # credit the reused prompt positions as already computed:
                    # prefill resumes at the matched offset, so both
                    # prefill_tokens_processed and TTFT genuinely drop
                    state.prefill_done = min(matched, state.prefill_len - 1)
                if kv.allocate_prefix(
                        rid, self._paged_admit_target(state),
                        state.request.prompt_token_ids) is None:
                    raise RuntimeError("admission gate admitted an "
                                       "unallocatable request")  # pragma: no cover
            elif not kv.allocate(rid, self._paged_admit_target(state)):
                raise RuntimeError("admission gate admitted an "
                                   "unallocatable request")  # pragma: no cover
        self.batch.append(state)
        if state.prefill_len > state.prefill_done:
            self._num_prefilling += 1

    def evict(self, victim: RequestState, now: float,
              scheduler: SchedulerPolicy) -> None:
        """Remove ``victim`` from the batch and re-queue it.  Paged
        ``swap`` mode parks its blocks in the host tier (PCIe transfer
        serializes with the instance's next step); every other mode
        discards its KV state and progress.  With ``swap_priority`` a
        swapped victim waits in this instance's parked list (resumed ahead
        of new admissions) instead of re-entering the shared queue."""
        self.batch.remove(victim)
        if victim.prefill_len > victim.prefill_done:
            self._num_prefilling -= 1
        swapped = False
        if self.kv is not None and self.preemption_mode == "swap":
            lifecycle.transition(
                victim, "evict_swap_prefill"
                if victim.phase == lifecycle.PREFILLING
                else "evict_swap_decode")
            blocks, _ = self.kv.swap_out(victim.request.request_id)
            self.pending_delay_s += self.swap_transfer_s(blocks)
            victim.swap_outs += 1
            victim.swapped_on = self.instance_id
            swapped = True
        else:
            lifecycle.transition(
                victim, "evict_recompute_prefill"
                if victim.phase == lifecycle.PREFILLING
                else "evict_recompute_decode")
            self.release(victim)
            victim.reset_progress()
        victim.preemptions += 1
        if swapped and self.swap_priority:
            self.parked.append(victim)
        else:
            scheduler.push(victim)

    # ------------------------------------------------------------------
    # prefill→decode handoff (prefill-role instances)
    # ------------------------------------------------------------------
    def _begin_handoff(self, state: RequestState) -> None:
        """Export a finished prompt's KV blocks for a decode instance.

        The export is a swap-out on this instance's PCIe link: the
        transfer serializes ahead of the next step here (the link is
        busy), and the engine delays the request's arrival at its decode
        instance by its *ready offset* — when one step completes several
        prompts (mixed mode), their transfers share the one link, so the
        k-th handoff is ready only after the k-1 before it have drained,
        exactly matching the serial ``pending_delay_s`` charge.  The
        decode instance pays its own swap-in when it admits the request.
        """
        lifecycle.transition(state, "handoff_export")
        self.batch.remove(state)
        num_blocks, cached_tokens, _ = \
            self.kv.export_handoff(state.request.request_id)
        transfer = self.swap_transfer_s(num_blocks)
        self.pending_delay_s += transfer
        state.handoffs += 1
        self.stats.handoff_out_count += 1
        self.stats.handoff_time_s += transfer
        ready_offset = transfer + (self.pending_handoffs[-1][2]
                                   if self.pending_handoffs else 0.0)
        self.pending_handoffs.append((state, cached_tokens, ready_offset))

    def take_handoffs(self) -> List[Tuple[RequestState, int, float]]:
        """Drain the handoffs produced by the last completed step (the
        engine routes each to a decode instance and schedules its arrival
        at its serialized ready offset ahead of the clock)."""
        handoffs, self.pending_handoffs = self.pending_handoffs, []
        return handoffs

    # ------------------------------------------------------------------
    # paged growth at step boundaries
    # ------------------------------------------------------------------
    def _grow_to(self, state: RequestState, target: int, now: float,
                 scheduler: SchedulerPolicy) -> bool:
        """Paged mode: allocate blocks so ``state`` covers ``target``
        cached positions before its next append.  When the pool runs
        dry, evict the lowest-priority, most recently admitted member of
        an *equal or lower* priority class than the grower and retry
        (its blocks swap out or drop per the preemption mode).  Capacity
        pressure never evicts a strictly higher-priority member — when
        the grower itself is the lowest class present, it is the one
        that yields (no priority inversion through block growth).

        Mixed mode additionally requires an equal-priority victim to
        have been admitted *no earlier* than the grower.  Without this,
        two requests too big to co-reside can destroy each other
        forever: the newcomer's chunk growth evicts the old resident
        (discarding its nearly-finished context), the resident
        re-admits and returns the favour, and neither ever finishes —
        a livelock chunked admission makes reachable because it admits
        on first-chunk fit rather than whole-prompt fit.  Restricting
        equal-priority eviction to members no older than the grower
        makes the oldest-admitted member of the highest class
        un-evictable, so it always advances and the run provably
        terminates.  Exclusive mode keeps the PR 2 rule unchanged (the
        bit-identical regime).

        Returns whether any member was evicted."""
        kv = self.kv
        mixed = self.prefill_mode == "mixed"
        evicted = False
        while (state in self.batch
               and not kv.allocate(state.request.request_id, target)):
            others = [s for s in self.batch if s is not state]
            if not others:
                raise RuntimeError(
                    "KV block pool cannot hold a single request; "
                    "validate() should have rejected this trace")
            candidates = [
                s for s in others
                if s.request.priority < state.request.priority
                or (s.request.priority == state.request.priority
                    and (not mixed
                         or s.last_admitted_s >= state.last_admitted_s))]
            victim = (min(candidates,
                          key=lambda s: (s.request.priority,
                                         -s.last_admitted_s))
                      if candidates else state)
            self.evict(victim, now, scheduler)
            evicted = True
        return evicted

    def _ensure_decode_capacity(self, now: float,
                                scheduler: SchedulerPolicy) -> None:
        """Paged mode, before a pure decode step: every batch member
        needs a block slot for the token position it is about to
        append."""
        max_seq = self.kv.layout.max_seq_len
        for state in list(self.batch):
            if state not in self.batch:
                continue  # already evicted to make room
            self._grow_to(state, min(state.context_len + 1, max_seq), now,
                          scheduler)

    def _plan_mixed_step(self) -> Tuple[List[RequestState],
                                        List[Tuple[RequestState, int]]]:
        """Split the mixed-step token budget over the batch: one decode
        token per running decode first, then prefill-chunk tokens for
        requests still prefilling, in admission (batch) order.  Decode
        tokens are never dropped to fit the budget; prefill chunks take
        whatever budget remains."""
        if not self._num_prefilling:
            # pure decode (the steady-state hot path): every member
            # advances, no chunks to plan
            return self.batch.copy(), []
        decoders = [s for s in self.batch if s.prefill_len == s.prefill_done]
        remaining = self.mixed_step_token_budget - len(decoders)
        chunks: List[Tuple[RequestState, int]] = []
        for state in self.batch:
            if state.prefill_len == state.prefill_done or remaining <= 0:
                continue
            chunk = min(self._next_prefill_chunk(state), remaining)
            chunks.append((state, chunk))
            remaining -= chunk
        return decoders, chunks

    def _ensure_mixed_capacity(self, now: float, scheduler: SchedulerPolicy
                               ) -> Tuple[List[RequestState],
                                          List[Tuple[RequestState, int]]]:
        """Paged mode, before a mixed step: every request advancing in
        the step needs blocks for the positions it appends (one per
        decode, a whole chunk per prefilling member).  An eviction frees
        budget and invalidates the split, so replan until one whole pass
        allocates without evicting; the batch shrinks on every eviction,
        so the loop terminates.  Returns the final ``(decoders,
        chunks)`` plan."""
        max_seq = self.kv.layout.max_seq_len
        while True:
            decoders, chunks = self._plan_mixed_step()
            evicted = False
            targets = [(s, s.context_len + 1) for s in decoders]
            targets += [(s, s.context_len + c) for s, c in chunks]
            for state, target in targets:
                if state not in self.batch:
                    continue  # already evicted to make room
                if self._grow_to(state, min(target, max_seq), now, scheduler):
                    evicted = True
            if not evicted:
                return decoders, chunks

    # ------------------------------------------------------------------
    # step boundary: admission, preemption, step formation
    # ------------------------------------------------------------------
    def dispatch(self, scheduler: SchedulerPolicy, now: float,
                 stats: InstanceStats,
                 gate: Optional[Callable[["InstanceRuntime", RequestState],
                                         bool]] = None,
                 horizon_s: Optional[Seconds] = None,
                 horizon_fn: Optional[Callable[["InstanceRuntime"], float]]
                 = None) -> Optional[StepLaunch]:
        """Admit/preempt at a step boundary, then form the next step.

        ``gate`` is the cluster router's placement veto (None on
        single-class pools): a head the gate rejects is neither admitted
        here nor preempted for — it waits for an instance the router likes.
        Returns the planned step, or None when the batch is empty (the
        instance goes idle).  Global ``stats`` and the runtime's own
        :attr:`stats` are both updated, in that order, so whole-run metrics
        accumulate in the exact event order of the pre-cluster engine while
        per-class metrics fall out of the per-runtime copies.

        ``horizon_s`` is the next trace arrival's timestamp (None when the
        engine cannot bound it).  With :attr:`allow_multistep` set, a pure
        decode step whose following step boundaries are provably inert —
        the waiting queue is empty until the horizon, or the batch is full
        under a scheduler that never preempts — is fast-forwarded: up to k
        identical steps fold into one event, with k bounded so no batch
        member finishes early and the context stays inside one pricing
        bucket.  The folded launch carries its absolute completion time in
        :attr:`StepLaunch.completes_at_s`, accumulated one step at a time
        so the timestamps match the event-per-step chain bit for bit.
        """
        batch = self.batch
        max_batch = self.max_batch_size
        while True:
            if self.parked:
                # swap-priority: resume this instance's own swapped victims
                # before admitting anything new — their blocks are a PCIe
                # round-trip away, not a recompute, and new admissions would
                # claim the very capacity the resume needs.  A parked head
                # that does not fit blocks new admissions entirely.
                admitted = False
                while self.parked and len(batch) < max_batch:
                    resume = self.parked[0]
                    if not self.kv_admits(resume):
                        break
                    self.parked.pop(0)
                    self.admit(resume, now)
                    admitted = True
                if admitted:
                    continue
                break
            # admissions from the head of the waiting queue
            head = scheduler.peek()
            if self._admits_all and gate is None:
                while head is not None and len(batch) < max_batch:
                    scheduler.pop()
                    self.admit(head, now)
                    head = scheduler.peek()
            else:
                while head is not None and len(batch) < max_batch:
                    if not self.role_admits(head):
                        break
                    if gate is not None and not gate(self, head):
                        break
                    if not self.kv_admits(head):
                        break
                    scheduler.pop()
                    self.admit(head, now)
                    head = scheduler.peek()
            # preemption: a blocked head (no batch slot, or KV capacity
            # exhausted) may evict strictly lower-priority work — but only
            # when evicting one victim actually makes the head admissible;
            # otherwise the victim's computed state would be thrown away
            # (or shuttled over PCIe) for nothing.  Schedulers that never
            # preempt make this block a provable no-op — skip it.
            if (not scheduler.never_preempts
                    and head is not None and batch
                    and self.role_admits(head)
                    and (gate is None or gate(self, head))):
                slots_full = len(batch) >= max_batch
                kv_full = not self.kv_admits(head)
                victim = None
                if slots_full or kv_full:
                    victim = scheduler.preemption_victim(batch, head)
                if (victim is not None
                        and self.head_fits_after_eviction(victim, head)):
                    self.evict(victim, now, scheduler)
                    continue  # retry admission for the head
            break

        if not batch:
            self.busy = False
            return None
        ff_members = None   # pure-decode members, when fast-forwardable
        ff_context = 0
        ff_mixed = False    # price folded steps through the mixed model
        ff_prefill = None   # chunked exclusive prefill, when foldable
        if self.prefill_mode == "mixed":
            if self.kv is not None:
                decoders, chunks = self._ensure_mixed_capacity(now, scheduler)
            else:
                decoders, chunks = self._plan_mixed_step()
            if chunks:
                prefill_tokens = sum(chunk for _, chunk in chunks)
                max_context = max(
                    [s.prefill_done + s.decode_done for s in decoders]
                    + [s.prefill_done + s.decode_done + chunk
                       for s, chunk in chunks])
                duration = self.mixed_step_latency_s(
                    max_context, len(decoders), prefill_tokens)
                payload = ("mixed", self, (decoders, chunks), prefill_tokens)
                advancing = len(decoders) + len(chunks)
                kind_attr = "mixed_time" if decoders else "prefill_time"
            else:
                # all prompts done: a mixed step degenerates to pure decode
                # (priced through the same mixed-step model, bit-identical
                # to the historical path)
                context = 0
                for s in decoders:
                    c = s.prefill_done + s.decode_done
                    if c > context:
                        context = c
                duration = self.mixed_step_latency_s(context,
                                                     len(decoders), 0)
                payload = ("mixed", self, (decoders, chunks), 0)
                advancing = len(decoders)
                kind_attr = "decode_time"
                ff_members = decoders
                ff_context = context
                ff_mixed = True
        else:
            prefilling = None
            if self._num_prefilling:
                for s in batch:
                    if s.prefill_len > s.prefill_done:
                        prefilling = s
                        break
            if prefilling is not None:
                chunk = prefilling.prefill_len - prefilling.prefill_done
                cap = self.prefill_chunk_tokens
                if cap is not None:
                    if cap < chunk:
                        chunk = cap
                    ff_prefill = prefilling
                duration = self.prefill_chunk_latency_s(
                    prefilling.prefill_done, chunk)
                payload = ("prefill", self, prefilling, chunk)
                # only the prefilling request advances; co-resident
                # decodes stall for the duration of the chunk
                advancing = 1
                kind_attr = "prefill_time"
            else:
                if self.kv is not None:
                    self._ensure_decode_capacity(now, scheduler)
                context = 0
                for s in batch:
                    c = s.prefill_done + s.decode_done
                    if c > context:
                        context = c
                members = batch.copy()
                duration = self.step_latency_s(context, len(members))
                payload = ("decode", self, members, 0)
                advancing = len(members)
                kind_attr = "decode_time"
                ff_members = members
                ff_context = context
        step_duration = duration
        pending = self.pending_delay_s
        if pending > 0.0:
            # swap transfers contend for the same HBM/PCIe datapath, so
            # they serialize ahead of the next step
            duration += pending
            self.pending_delay_s = 0.0
        steps = 1
        completes_at = None
        ff_segments = None
        if (self.allow_multistep and pending == 0.0
                and horizon_s is not None
                and (ff_members is not None or ff_prefill is not None)):
            # Fast-forward: fold provably inert step boundaries into one
            # event.  Boundaries inside the fold must change nothing —
            # no admission, preemption or step-shape change could happen at
            # them.  Two regimes qualify: the waiting queue is empty until
            # the next arrival (``horizon_s``), or the batch is full under
            # a scheduler that never preempts (a boundary then has nothing
            # to do even when requests are waiting).  A decode fold may
            # cross context-bucket boundaries and a prefill fold marches
            # the prompt chunk by chunk: every per-step price is a
            # memoized pure function of shape, so repricing at each window
            # or chunk edge reproduces the per-event chain exactly.
            limit = None
            if scheduler.peek() is None:
                # the engine's idle-gap horizon (when eligible) extends
                # the fold past arrivals that other idle instances are
                # guaranteed to absorb; it is only ever >= horizon_s
                limit = (horizon_s if horizon_fn is None
                         else horizon_fn(self))
            elif (scheduler.never_preempts
                    and len(batch) >= max_batch):
                limit = float("inf")
            if limit is not None and ff_prefill is not None:
                # chunked exclusive prefill: successive chunks of the same
                # prompt (the batch-order scan re-picks this member at
                # every inert boundary, and stalled decoders never change).
                # Chain each chunk's memoized price; completion bookkeeping
                # is the ordinary "prefill" payload with the folded token
                # total.
                state = ff_prefill
                total = payload[3]
                cap = self.prefill_chunk_tokens
                done = state.prefill_done + total
                remaining = state.prefill_len - done
                t = now + duration
                if remaining > 0 and t < limit:
                    ff_segments = [[duration, 1]]
                    while remaining > 0 and t < limit:
                        c = cap if cap < remaining else remaining
                        d = self.prefill_chunk_latency_s(done, c)
                        t += d
                        done += c
                        total += c
                        remaining -= c
                        steps += 1
                        ff_segments.append([d, 1])
                    payload = ("prefill", self, state, total)
                    completes_at = t
            elif limit is not None:
                kmax = ff_members[0].decode_len - ff_members[0].decode_done
                for s in ff_members:
                    r = s.decode_len - s.decode_done
                    if r < kmax:
                        kmax = r
                # chain the completion times one step at a time: each
                # boundary before the last must fall strictly before the
                # limit (an arrival at exactly the boundary is processed
                # first by the engine, so that boundary is a real event).
                # ff_segments collects (step duration, step count) runs so
                # the stats replay below walks the identical float chain.
                t = now + duration
                if steps < kmax and t < limit:
                    bucket = self.context_bucket
                    d = duration
                    # steps after the first that still price in its window
                    # (bucket arithmetic inlined from _bucketed)
                    win = ((-(-ff_context // bucket) * bucket - ff_context)
                           if bucket > 1 and ff_context else 0)
                    seg = [d, 1]
                    ff_segments = [seg]
                    while steps < kmax and t < limit:
                        if win == 0:
                            c = ff_context + steps
                            if ff_mixed:
                                nd = self.mixed_step_latency_s(
                                    c, advancing, 0)
                            else:
                                nd = self.step_latency_s(c, advancing)
                            win = ((-(-c // bucket) * bucket - c + 1)
                                   if bucket > 1 else 1)
                            if nd != d:
                                d = nd
                                seg = [d, 0]
                                ff_segments.append(seg)
                        t += d
                        steps += 1
                        seg[1] += 1
                        win -= 1
                if steps > 1:
                    payload = ("decode_k", self,
                               (ff_members, steps, now + duration), 0)
                    completes_at = t
        if steps == 1:
            bd = advancing * duration
            kvm = self.kv
            if kvm is not None:
                occupancy = kvm.occupancy_fraction
                frag_term = kvm.internal_fragmentation_fraction * duration
                shared_term = (kvm.shared_block_fraction * duration
                               if kvm.prefix_sharing else 0.0)
            for acc in (stats, self.stats):
                if kind_attr == "decode_time":
                    acc.decode_time += step_duration
                elif kind_attr == "prefill_time":
                    acc.prefill_time += step_duration
                else:
                    acc.mixed_time += step_duration
                if pending > 0.0:
                    acc.swap_time_s += pending
                acc.batch_time += bd
                acc.busy_time += duration
                if kvm is not None:
                    acc.kv_occ_time += occupancy * duration
                    acc.frag_time += frag_term
                    acc.shared_kv_time += shared_term
                    if occupancy > acc.peak_kv_occupancy:
                        acc.peak_kv_occupancy = occupancy
        else:
            # k folded steps: the per-step stat adds collapse to one
            # closed-form add per pricing segment (duration × count).
            # This is the one fast-forward shortcut that is not replayed
            # add-by-add: time-weighted aggregates may differ from
            # per-event execution in the last float bits, while every
            # timestamp, token count and per-request record stays exact
            # (the completion chain above still walks step by step).
            # Fast-forward requires kv is None and pending == 0, so only
            # the three time accumulators apply.
            td = 0.0
            for d_seg, n_seg in ff_segments:
                td += d_seg * n_seg
            bd = advancing * td
            decode_fold = kind_attr == "decode_time"
            for acc in (stats, self.stats):
                if decode_fold:
                    acc.decode_time += td
                else:
                    acc.prefill_time += td
                acc.batch_time += bd
                acc.busy_time += td
        self.busy = True
        return StepLaunch(duration_s=duration, payload=payload,
                          completes_at_s=completes_at)

    def _finish(self, state: RequestState,
                finished: List[RequestState]) -> None:
        self.batch.remove(state)
        self.release(state)
        finished.append(state)

    def _prefill_completed(self, state: RequestState,
                           finished: List[RequestState]) -> None:
        """A prompt just finished: a request with nothing to generate
        is done; on a prefill-role instance one with decode work hands
        its KV off instead of decoding here."""
        kv = self.kv
        if kv is not None and kv.prefix_sharing:
            # the prompt's full blocks now hold real KV — index them so
            # later matching prompts (the conversation's next turn) reuse
            # them instead of re-prefilling
            token_ids = state.request.prompt_token_ids
            if token_ids:
                kv.register_prefix(state.request.request_id, token_ids)
        if state.decode_len == 0:
            lifecycle.transition(state, "finish_prefill_only")
            self._finish(state, finished)
        elif self.role == "prefill":
            self._begin_handoff(state)
        else:
            lifecycle.transition(state, "prefill_complete")

    def complete_step(self, payload: Tuple, now: float,
                      stats: InstanceStats) -> List[RequestState]:
        """Apply one finished step's token bookkeeping and return the
        requests that completed with it (the engine records them)."""
        kind, _, target, chunk = payload
        finished: List[RequestState] = []
        if kind == "decode":
            for state in target:
                state.decode_done += 1
                if state.first_token_s is None:
                    state.first_token_s = now
                if state.decode_done >= state.decode_len:
                    lifecycle.transition(state, "finish_decode")
                    self._finish(state, finished)
        elif kind == "decode_k":
            # k folded decode steps completing at once: the first token of
            # a still-tokenless member was produced at the fold's first
            # step boundary (carried in the payload), not at ``now``
            members, steps, t_first = target
            for state in members:
                if state.first_token_s is None:
                    state.first_token_s = t_first
                state.decode_done += steps
                if state.decode_done >= state.decode_len:
                    lifecycle.transition(state, "finish_decode")
                    self._finish(state, finished)
        elif kind == "prefill":
            target.prefill_done += chunk
            stats.prefill_tokens += chunk
            self.stats.prefill_tokens += chunk
            if target.prefill_len == target.prefill_done:
                self._num_prefilling -= 1
                self._prefill_completed(target, finished)
        else:  # mixed
            decoders, chunks = target
            for state in decoders:
                state.decode_done += 1
                if state.first_token_s is None:
                    state.first_token_s = now
                if state.decode_done >= state.decode_len:
                    lifecycle.transition(state, "finish_decode")
                    self._finish(state, finished)
            for state, tokens in chunks:
                state.prefill_done += tokens
                stats.prefill_tokens += tokens
                self.stats.prefill_tokens += tokens
                if state.prefill_len == state.prefill_done:
                    self._num_prefilling -= 1
                    self._prefill_completed(state, finished)
        return finished
