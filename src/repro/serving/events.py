"""Two-level bucketed event queue for the serving engine's main loop.

The engine's event loop is dominated by pushes and pops of
``(time, seq, kind, payload)`` tuples.  A single global binary heap pays
``O(log n)`` per operation with ``n`` = every pending event in the
simulation.  But the event stream of a serving simulation is strongly
*near-sorted*: almost every event posted lands within a few step
durations of the current clock, with a thin tail (KV handoffs, far-out
arrivals folded into the loop elsewhere) landing further out.

:class:`BucketedEventQueue` exploits that shape with a calendar-queue
style split:

* a **near-future ring** of ``nb`` time buckets, each a tiny min-heap
  holding only the events that fall inside its bucket window — pushes
  into the ring cost ``O(log k)`` with ``k`` = bucket occupancy, which
  is a handful of events instead of the whole frontier;
* a **far heap** for events beyond the ring horizon (and for everything
  while the queue is still auto-tuning its bucket width).

Ordering contract — identical to ``heapq`` over the same tuples: pops
come out sorted by ``(time, seq)``.  Equal-time events are ordered by
their monotone sequence number, which is exactly the tie-break the
engine's golden-timestamp tests pin.  The queue is a drop-in
replacement: the replay is bit-identical to the heap version.

Bucket width is auto-tuned from the first events observed (a deterministic
function of simulated values only — no wall-clock, no RNG): until enough
spread has been seen, the queue degenerates to a plain heap, which is
always correct.

Invariant (why the ring's ``index % nb`` slot mapping never collides):
every ring event satisfies ``bucket(t) ∈ [base, base + nb)`` at push
time, where ``base`` is the current consumption bucket.  ``base`` only
advances past *empty* buckets, and pushes gate anything at or beyond
``base + nb`` into the far heap, so at any instant all ring events live
inside one window of width ``nb`` and each slot holds exactly one
bucket's worth of events.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterable, Iterator, List, Optional, Tuple

Event = Tuple[float, int, int, Any]

# Number of distinct event times buffered before the bucket width is
# derived from their spread; until then the queue runs in plain-heap
# mode (always correct, just not accelerated).
_WARMUP_EVENTS = 16

# The ring covers nb * width seconds of simulated future; with width
# tuned to roughly one step duration this spans several steps ahead,
# which is where nearly all step-completion events land.
_DEFAULT_RING_BUCKETS = 256


class BucketedEventQueue:
    """Min-queue over ``(time, seq, kind, payload)`` event tuples."""

    __slots__ = (
        "_nb",
        "_ring",
        "_base",
        "_ring_count",
        "_far",
        "_width",
        "_inv_width",
        "_warmup_times",
    )

    def __init__(
        self,
        width_s: Optional[float] = None,
        ring_buckets: int = _DEFAULT_RING_BUCKETS,
    ) -> None:
        if ring_buckets < 2:
            raise ValueError("ring_buckets must be >= 2")
        self._nb = ring_buckets
        self._ring: List[List[Event]] = [[] for _ in range(ring_buckets)]
        self._base = 0
        self._ring_count = 0
        self._far: List[Event] = []
        self._width = 0.0
        self._inv_width = 0.0
        # distinct event times seen while auto-tuning; None once engaged
        self._warmup_times: Optional[List[float]] = []
        if width_s is not None:
            if width_s <= 0.0:
                raise ValueError("width_s must be positive")
            self._width = width_s
            self._inv_width = 1.0 / width_s
            self._warmup_times = None

    # ------------------------------------------------------------------
    # introspection

    def __len__(self) -> int:
        return self._ring_count + len(self._far)

    def __bool__(self) -> bool:
        return (self._ring_count + len(self._far)) > 0

    def __iter__(self) -> Iterator[Event]:
        """Iterate over all pending events in arbitrary order.

        Used by invariant checks that scan the frontier (for example
        counting in-flight handoffs); callers must not rely on order.
        """
        for slot in self._ring:
            yield from slot
        yield from self._far

    # ------------------------------------------------------------------
    # internals

    def _engage(self) -> None:
        """Derive the bucket width from the warm-up sample and activate
        the ring, re-filing any buffered events."""
        times = self._warmup_times
        assert times is not None  # mypy narrowing  # repro-lint: disable=R005
        span = max(times) - min(times)
        if span <= 0.0:
            return  # degenerate stream so far; stay in heap mode
        # Aim the window so the warm-up spread (≈ one step-duration
        # frontier) occupies a small prefix of the ring, leaving most of
        # the ring for the near future.
        width = span / float(_WARMUP_EVENTS)
        self._width = width
        self._inv_width = 1.0 / width
        self._warmup_times = None
        pending = self._far
        self._far = []
        if pending:
            self._base = int(pending[0][0] * self._inv_width)
        for event in pending:
            self.push(event)

    # ------------------------------------------------------------------
    # core operations

    def push(self, event: Event) -> None:
        inv_width = self._inv_width
        if inv_width == 0.0:
            heappush(self._far, event)
            times = self._warmup_times
            if times is not None:
                t = event[0]
                if t not in times:
                    times.append(t)
                    if len(times) >= _WARMUP_EVENTS:
                        self._engage()
            return
        base = self._base
        bucket = int(event[0] * inv_width)
        if bucket >= base + self._nb:
            heappush(self._far, event)
            return
        if bucket < base:
            # The event's natural bucket has already been consumed (its
            # time is at/behind the frontier); file it in the current
            # bucket, whose internal heap restores exact ordering.
            bucket = base
        heappush(self._ring[bucket % self._nb], event)
        self._ring_count += 1

    def push_many(self, events: Iterable[Event]) -> None:
        """Post a batch of events.

        Same-timestamp batches (the common case at a step boundary:
        the step-completion plus any KV-handoff arrivals priced at the
        same instant) resolve their bucket once and append cheaply.
        """
        for event in events:
            self.push(event)

    def peek_time(self) -> float:
        """Earliest pending event time.  Queue must be non-empty."""
        far = self._far
        if self._ring_count:
            base, nb, ring = self._base, self._nb, self._ring
            slot = ring[base % nb]
            while not slot:
                base += 1
                slot = ring[base % nb]
            self._base = base
            t = slot[0][0]
            if far and far[0][0] < t:
                return far[0][0]
            return t
        return far[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest event (ties by sequence)."""
        far = self._far
        if self._ring_count:
            base, nb, ring = self._base, self._nb, self._ring
            slot = ring[base % nb]
            while not slot:
                base += 1
                slot = ring[base % nb]
            self._base = base
            if far and far[0] < slot[0]:
                return heappop(far)
            self._ring_count -= 1
            return heappop(slot)
        if far:
            return heappop(far)
        raise IndexError("pop from an empty BucketedEventQueue")
