"""Serving-level simulation of LoopLynx deployments.

The paper evaluates isolated requests; a downstream user deploying LoopLynx
for LLM serving cares about sustained behaviour under a stream of requests:
queueing delay, time-to-first-token, latency percentiles, utilization and
energy.  This package simulates a pool of LoopLynx instances fed from a
request trace at two granularities:

* :mod:`repro.serving.engine` — the token-level engine: the cluster event
  loop over arrivals, routing and step completions, with continuous
  batching, mixed prefill/decode steps, pluggable schedulers, KV-capacity
  admission (worst-case reservations or paged block allocation via
  :mod:`repro.memory.paged_kv`), and preemption with swap-to-host or
  recompute restoration;
* :mod:`repro.serving.instance` — the per-instance runtime: batch
  formation, step building and KV/preemption mechanics of one (possibly
  1/2/4-node) LoopLynx deployment;
* :mod:`repro.serving.cluster` — heterogeneous instance pools
  (:class:`InstanceSpec`/:class:`ClusterSpec`, e.g. ``"2x1n,2x2n,1x4n"``)
  and the pluggable cluster routers (round-robin, least-loaded, KV-aware,
  class-affinity);
* :mod:`repro.serving.schedulers` — FIFO / SJF / priority policies and the
  reservation-mode KV admission controller;
* :mod:`repro.serving.simulator` — the whole-request FIFO queue, kept as the
  ``fifo-exclusive`` compatibility mode and as the policy-switch front-end;
* :mod:`repro.serving.metrics` — latency/TTFT/TPOT/throughput/energy
  summaries.
"""

from repro.serving.cluster import (
    ClassAffinityRouter,
    ClusterSpec,
    InstanceSpec,
    KVAwareRouter,
    LeastLoadedRouter,
    ROUTER_NAMES,
    RoundRobinRouter,
    Router,
    make_router,
    parse_cluster_spec,
)
from repro.serving.engine import (
    DEFAULT_MIXED_STEP_TOKEN_BUDGET,
    PREEMPTION_MODES,
    PREFILL_MODES,
    ServedRequest,
    TokenServingEngine,
)
from repro.serving.instance import InstanceRuntime, RequestState
from repro.serving.metrics import (
    InstanceClassMetrics,
    ServingMetrics,
    percentile,
)
from repro.serving.schedulers import (
    FifoScheduler,
    KVAdmissionController,
    POLICY_NAMES,
    PriorityScheduler,
    SchedulerPolicy,
    ShortestJobFirstScheduler,
    make_scheduler,
)
from repro.serving.simulator import (
    FIFO_EXCLUSIVE,
    CompletedRequest,
    ServingSimulator,
)

__all__ = [
    "DEFAULT_MIXED_STEP_TOKEN_BUDGET",
    "PREEMPTION_MODES",
    "PREFILL_MODES",
    "ROUTER_NAMES",
    "ServedRequest",
    "TokenServingEngine",
    "InstanceRuntime",
    "RequestState",
    "ClusterSpec",
    "InstanceSpec",
    "parse_cluster_spec",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "KVAwareRouter",
    "ClassAffinityRouter",
    "make_router",
    "InstanceClassMetrics",
    "ServingMetrics",
    "percentile",
    "FifoScheduler",
    "KVAdmissionController",
    "POLICY_NAMES",
    "PriorityScheduler",
    "SchedulerPolicy",
    "ShortestJobFirstScheduler",
    "make_scheduler",
    "FIFO_EXCLUSIVE",
    "CompletedRequest",
    "ServingSimulator",
]
