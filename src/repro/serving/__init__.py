"""Serving-level simulation of LoopLynx deployments.

The paper evaluates isolated requests; a downstream user deploying LoopLynx
for LLM serving cares about sustained behaviour under a stream of requests:
queueing delay, latency percentiles, utilization and energy.  This package
simulates a pool of LoopLynx instances (each serving one request at a time,
as the batch-1 dataflow design dictates) fed from a request trace.

* :mod:`repro.serving.simulator` — the event-based queueing simulation;
* :mod:`repro.serving.metrics` — latency/throughput/energy summaries.
"""

from repro.serving.metrics import ServingMetrics, percentile
from repro.serving.simulator import CompletedRequest, ServingSimulator

__all__ = [
    "ServingMetrics",
    "percentile",
    "CompletedRequest",
    "ServingSimulator",
]
