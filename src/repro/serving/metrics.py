"""Serving metrics: latency percentiles, throughput, utilization, energy.

Two fidelity modes exist.  The default (``metrics_mode="full"``) keeps one
entry per request in the ``*_s`` lists, so every percentile is exact — the
regime all golden tests pin.  ``metrics_mode="streaming"`` replaces those
unbounded lists with O(1)-memory incremental aggregates
(:class:`StreamingQuantile` log-bucketed histograms plus exact
count/sum/min/max), so a million-request replay holds a few hundred
histogram buckets instead of five million floats; percentiles then carry a
bounded relative error (0.5% by construction at the default resolution)
while counters, means and extremes stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - engine imports metrics
    from repro.serving.instance import RequestState

from repro.energy.power import FpgaPowerModel
from repro.units import Blocks, Bytes, Joules, Seconds, Tokens

#: Accepted values for the engine's ``metrics_mode``.
METRICS_MODES = ("full", "streaming")


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


class StreamingQuantile:
    """Bounded-memory quantile estimator over non-negative samples.

    A log-bucketed histogram (the HDR-histogram idea): sample ``v`` lands
    in bucket ``floor(log_base(v))`` with ``base = (1 + e) / (1 - e)``, and
    a percentile query answers with the geometric centre of the bucket
    holding the requested rank — so every reported quantile is within
    relative error ``e`` of the true order statistic *by construction*,
    not in expectation like a reservoir sample.  Count, sum, min and max
    are tracked exactly; memory is one dict entry per occupied bucket
    (a few hundred for second-scale latencies at the default 0.5%).

    >>> q = StreamingQuantile()
    >>> for v in [0.1, 0.2, 0.3, 0.4]:
    ...     q.add(v)
    >>> q.count
    4
    >>> abs(q.percentile(0.5) - 0.25) <= 0.25 * 0.01
    True
    """

    __slots__ = ("relative_error", "count", "total", "min", "max",
                 "_zeros", "_buckets", "_inv_log_base", "_log_base")

    def __init__(self, relative_error: float = 0.005) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        self.relative_error = relative_error
        self._log_base = math.log((1.0 + relative_error)
                                  / (1.0 - relative_error))
        self._inv_log_base = 1.0 / self._log_base
        self._buckets: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Record one sample (non-negative; queueing delays can be 0.0)."""
        if value < 0.0:
            raise ValueError("StreamingQuantile tracks non-negative samples")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self._zeros += 1
            return
        index = math.floor(math.log(value) * self._inv_log_base)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Quantile estimate within ``relative_error`` of the exact order
        statistic (0.0 with no samples)."""
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = fraction * (self.count - 1)
        if rank <= 0:
            return float(self.min)
        if rank >= self.count - 1:
            return float(self.max)
        cumulative = self._zeros
        if rank < cumulative:
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank < cumulative:
                # geometric centre of [base^index, base^(index+1))
                centre = math.exp((index + 0.5) * self._log_base)
                return float(min(max(centre, self.min), self.max))
        return float(self.max)  # pragma: no cover - rank < count guaranteed

    def merge(self, other: "StreamingQuantile") -> None:
        """Fold another estimator of the same resolution into this one."""
        if other.relative_error != self.relative_error:
            raise ValueError("cannot merge estimators of different "
                             "resolutions")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._zeros += other._zeros
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count


@dataclass
class InstanceClassMetrics:
    """Aggregate statistics of one instance class inside a cluster run.

    A *class* is a group of identical instances (same node count, same KV
    budget — one :class:`~repro.serving.cluster.InstanceSpec`).  The engine
    emits one of these per class so heterogeneous pools can be judged class
    by class: is the big-instance class earning its nodes, are the small
    instances saturated, where do the swaps happen.  Requests whose
    ``instance_id`` is ``None`` (never ran) belong to no class and are
    excluded from every field here.

    Units match :class:`ServingMetrics`: seconds, tokens, blocks per node.
    """

    label: str
    num_instances: int
    num_nodes: int
    #: Serving role of the class (``"both"`` outside disaggregated
    #: clusters): handoff traffic only makes sense per role — prefill
    #: classes export (``handoffs_out``), decode classes import
    #: (``handoffs_in``) — and a prefill class legitimately completes
    #: zero requests while doing most of the compute.
    role: str = "both"
    requests: int = 0
    generated_tokens: Tokens = 0
    makespan_s: Seconds = 0.0
    busy_time_s: Seconds = 0.0
    batch_time_s: Seconds = 0.0
    ttfts_s: List[Seconds] = field(default_factory=list)
    tpots_s: List[Optional[Seconds]] = field(default_factory=list)
    #: Streaming-mode fallback for :attr:`mean_ttft_s` when the per-request
    #: lists are not kept (per-class percentiles are full-fidelity only).
    ttft_count: int = 0
    ttft_sum_s: Seconds = 0.0
    preemptions: int = 0
    mean_kv_occupancy: float = 0.0
    peak_kv_occupancy: float = 0.0
    kv_total_blocks: Blocks = 0
    swap_out_count: int = 0
    swap_in_count: int = 0
    #: Prefix-sharing traffic of this class's pools (zero with the
    #: feature off): prompts that reused at least one cached block, and
    #: the prefill tokens those reuses skipped.
    prefix_hits: int = 0
    prefill_tokens_saved: int = 0
    handoffs_out: int = 0
    handoffs_in: int = 0
    handoff_time_s: Seconds = 0.0
    _tpot_view: Optional[Tuple[int, List[float]]] = field(
        default=None, init=False, repr=False, compare=False)

    def _tpot_values(self) -> List[float]:
        """The non-``None`` TPOT samples, filtered once per batch of
        queries: the view is cached against the list length, so a summary
        asking for several percentiles filters once, while hand-mutated
        metrics still see fresh data."""
        cached = self._tpot_view
        if cached is None or cached[0] != len(self.tpots_s):
            cached = (len(self.tpots_s),
                      [t for t in self.tpots_s if t is not None])
            self._tpot_view = cached
        return cached[1]

    @property
    def utilization(self) -> float:
        """Fraction of this class's instance-time spent executing steps."""
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        return self.busy_time_s / capacity

    @property
    def mean_running_batch(self) -> float:
        """Time-weighted mean co-resident requests per instance of this
        class over the makespan (idle time counts as zero)."""
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        return self.batch_time_s / capacity

    @property
    def mean_ttft_s(self) -> Seconds:
        if self.ttfts_s:
            return sum(self.ttfts_s) / len(self.ttfts_s)
        if self.ttft_count:
            return self.ttft_sum_s / self.ttft_count
        return 0.0

    def ttft_percentile_s(self, fraction: float) -> Seconds:
        return percentile(self.ttfts_s, fraction)

    def tpot_percentile_s(self, fraction: float) -> Seconds:
        return percentile(self._tpot_values(), fraction)


@dataclass
class ServingMetrics:
    """Aggregate statistics of one serving simulation.

    The token-level fields (``ttfts_s``, ``tpots_s``, ``preemptions``) are
    only populated by the step-granular engine
    (:class:`repro.serving.engine.TokenServingEngine`); the whole-request
    compatibility path leaves them empty because a request-sized service blob
    has no interior token timestamps.

    ``tpots_s`` is aligned index-for-index with ``ttfts_s`` (one entry per
    request that generated a token); an entry is ``None`` for a request with
    fewer than two generated tokens, which has no inter-token gap.  ``None``
    entries are excluded from the TPOT percentiles and count as *vacuously*
    meeting the TPOT SLO in :meth:`slo_attainment` — explicitly, not by
    smuggling a 0.0 into the distribution.

    Step accounting (engine runs only):

    * ``busy_time_s`` — seconds instances spent executing steps (including
      serialized swap transfers), summed over the pool.  This is the ground
      truth behind :attr:`instance_utilization`: unlike per-request service
      times it never double-counts the time a preempted request spends
      re-queued, so the utilization it yields is ≤ 1 by construction;
    * ``prefill_tokens_processed`` — prompt tokens actually computed
      (recomputed prefills after a discarding preemption count again);
    * ``decode_step_time_s`` / ``prefill_step_time_s`` /
      ``mixed_step_time_s`` — busy seconds split by step kind (pure decode,
      pure prefill, mixed prefill+decode); the ``*_time_share`` properties
      normalize them by ``busy_time_s``.

    KV-cache occupancy fields (engine runs only):

    * ``kv_mode`` — ``"none"``, ``"reserve"`` (worst-case reservations) or
      ``"paged"`` (fixed-size block allocation);
    * ``mean_running_batch`` — time-weighted mean number of co-resident
      requests per instance over the makespan (the *batch occupancy* a KV
      regime sustains; idle time counts as zero);
    * ``mean_kv_occupancy`` / ``peak_kv_occupancy`` — time-weighted mean and
      peak fraction of the device block pool allocated (paged mode);
    * ``mean_kv_fragmentation`` — time-weighted fraction of allocated block
      capacity not covering cached tokens (partially-filled tail blocks);
    * ``swap_out_count`` / ``swap_in_count`` / ``swapped_bytes`` /
      ``swap_time_s`` — host-tier traffic of swap-based preemption:
      transfers, PCIe bytes (summed over nodes) and the seconds those
      transfers occupied instances;
    * ``handoff_count`` / ``handoff_time_s`` — prefill→decode KV handoffs
      on disaggregated clusters and the PCIe seconds they cost (export on
      the prefiller plus import on the decoder).  A handoff rides the swap
      machinery, so its transfers are *also* counted in the swap fields
      and in ``busy_time_s`` (they serialize ahead of instance steps);
      these two fields isolate the disaggregation share.
    """

    num_requests: int
    num_instances: int
    num_nodes_per_instance: int
    makespan_s: Seconds
    generated_tokens: Tokens
    queueing_delays_s: List[Seconds] = field(default_factory=list)
    end_to_end_latencies_s: List[Seconds] = field(default_factory=list)
    service_times_s: List[Seconds] = field(default_factory=list)
    ttfts_s: List[Seconds] = field(default_factory=list)
    tpots_s: List[Optional[Seconds]] = field(default_factory=list)
    preemptions: int = 0
    policy: str = "fifo-exclusive"
    prefill_mode: str = "exclusive"
    busy_time_s: Seconds = 0.0
    prefill_tokens_processed: int = 0
    decode_step_time_s: Seconds = 0.0
    prefill_step_time_s: Seconds = 0.0
    mixed_step_time_s: Seconds = 0.0
    kv_mode: str = "none"
    kv_block_size: int = 0
    kv_total_blocks: Blocks = 0
    mean_running_batch: float = 0.0
    mean_kv_occupancy: float = 0.0
    peak_kv_occupancy: float = 0.0
    mean_kv_fragmentation: float = 0.0
    swap_out_count: int = 0
    swap_in_count: int = 0
    swapped_bytes: Bytes = 0
    swap_time_s: Seconds = 0.0
    handoff_count: int = 0
    handoff_time_s: Seconds = 0.0
    #: Whether the run had hash-based prefix sharing enabled on its paged
    #: pools (the counters below stay zero with it off, but the flag
    #: distinguishes "off" from "on but nothing matched").
    kv_prefix_sharing: bool = False
    #: Requests that reused at least one cached prefix block at admission.
    prefix_hits: int = 0
    #: Prompt tokens credited as already computed by prefix reuse — prefill
    #: work the cluster did *not* redo (compare ``prefill_tokens_processed``).
    prefill_tokens_saved: int = 0
    #: Shared blocks copied on first divergent write (copy-on-write).
    cow_copies: int = 0
    #: Time-weighted fraction of the device pools holding shared or
    #: reclaimable cached blocks, normalized by busy time.
    mean_kv_shared_fraction: float = 0.0
    #: Cluster shape (e.g. ``"2x1n,1x2n"``) and routing policy of the run
    #: ("" for the whole-request simulator, which has no cluster layer).
    cluster: str = ""
    router: str = ""
    #: One entry per instance class (engine runs only; single-class pools
    #: get exactly one).  ``num_nodes_per_instance`` is 0 when classes mix
    #: node counts — per-class numbers live here instead.
    per_class: List[InstanceClassMetrics] = field(default_factory=list)
    #: ``"full"`` (per-request lists, exact percentiles — the golden
    #: regime) or ``"streaming"`` (incremental aggregates, O(1) memory).
    metrics_mode: str = "full"
    #: Streaming-mode aggregates keyed ``"queueing_delay"``, ``"latency"``,
    #: ``"service_time"``, ``"ttft"``, ``"tpot"``; ``None`` in full mode.
    #: The per-request lists stay empty when this is set — every
    #: latency/percentile accessor transparently falls through to these.
    streams: Optional[Dict[str, StreamingQuantile]] = None
    #: The (ttft_slo_s, tpot_slo_s) pair pinned at run time in streaming
    #: mode.  Joint SLO attainment needs the per-request *pair* of TTFT and
    #: TPOT, which marginal aggregates cannot recover, so streaming runs
    #: count attainment online against exactly one pinned pair.
    slo_pin: Optional[Tuple[float, float]] = None
    #: Requests meeting the pinned SLO pair (streaming mode).
    slo_good_requests: int = 0
    _tpot_view: Optional[Tuple[int, List[float]]] = field(
        default=None, init=False, repr=False, compare=False)
    _slo_cache: Optional[Tuple[int, int, float, float, float]] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def throughput_tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.num_requests / self.makespan_s

    @property
    def mean_queueing_delay_s(self) -> Seconds:
        if self.queueing_delays_s:
            return sum(self.queueing_delays_s) / len(self.queueing_delays_s)
        if self.streams is not None:
            return self.streams["queueing_delay"].mean
        return 0.0

    @property
    def instance_utilization(self) -> float:
        """Fraction of instance-time spent actually serving requests.

        Engine runs report it as ``busy_time_s / (makespan × instances)``,
        which is ≤ 1 by construction (steps never overlap on an instance and
        all finish within the makespan).  The whole-request simulator has no
        step clock, so it falls back to the per-request service-time estimate;
        that estimate would overstate utilization under preemption (a
        re-queued request's wait is inside its service time), but the
        simulator never preempts, so there it is exact.
        """
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        if self.busy_time_s > 0:
            return self.busy_time_s / capacity
        return min(sum(self.service_times_s) / capacity, 1.0)

    @property
    def decode_time_share(self) -> float:
        """Fraction of busy time spent in pure decode steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.decode_step_time_s / self.busy_time_s

    @property
    def prefill_time_share(self) -> float:
        """Fraction of busy time spent in pure prefill steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.prefill_step_time_s / self.busy_time_s

    @property
    def mixed_time_share(self) -> float:
        """Fraction of busy time spent in mixed prefill+decode steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.mixed_step_time_s / self.busy_time_s

    def latency_percentile_s(self, fraction: float) -> Seconds:
        if not self.end_to_end_latencies_s and self.streams is not None:
            return self.streams["latency"].percentile(fraction)
        return percentile(self.end_to_end_latencies_s, fraction)

    # ------------------------------------------------------------------
    # token-level metrics (engine runs only)
    # ------------------------------------------------------------------
    @property
    def has_token_metrics(self) -> bool:
        """Whether token-level (TTFT/TPOT) data exists in either mode."""
        if self.ttfts_s:
            return True
        return self.streams is not None and self.streams["ttft"].count > 0

    @property
    def mean_ttft_s(self) -> Seconds:
        if self.ttfts_s:
            return sum(self.ttfts_s) / len(self.ttfts_s)
        if self.streams is not None:
            return self.streams["ttft"].mean
        return 0.0

    def ttft_percentile_s(self, fraction: float) -> Seconds:
        """Time-to-first-token percentile (arrival to first generated token)."""
        if not self.ttfts_s and self.streams is not None:
            return self.streams["ttft"].percentile(fraction)
        return percentile(self.ttfts_s, fraction)

    def _tpot_values(self) -> List[float]:
        """The non-``None`` TPOT samples, filtered once per batch of
        queries (cached against the list length, so one summary's several
        percentile calls share a single filtering pass)."""
        cached = self._tpot_view
        if cached is None or cached[0] != len(self.tpots_s):
            cached = (len(self.tpots_s),
                      [t for t in self.tpots_s if t is not None])
            self._tpot_view = cached
        return cached[1]

    def tpot_percentile_s(self, fraction: float) -> Seconds:
        """Time-per-output-token percentile (mean inter-token gap after the
        first token, one value per request).  Requests with fewer than two
        generated tokens have no inter-token gap and are excluded instead of
        contributing a bias-inducing 0.0."""
        if not self.tpots_s and self.streams is not None:
            return self.streams["tpot"].percentile(fraction)
        return percentile(self._tpot_values(), fraction)

    def slo_attainment(self, ttft_slo_s: Seconds, tpot_slo_s: Seconds) -> float:
        """Fraction of requests meeting both the TTFT and TPOT SLOs.

        Requires token-level data; the i-th entries of ``ttfts_s`` and
        ``tpots_s`` describe the same request (the engine emits them sorted
        by request id).  A ``None`` TPOT (single-token request) meets the
        TPOT SLO vacuously — there is no inter-token gap to violate it.
        The result for one SLO pair is cached against the list lengths, so
        an attainment query followed by the goodput built on it scans the
        per-request lists once, not twice.

        Raises ``ValueError`` when both lists are populated with different
        lengths (``zip(strict=True)`` semantics, spelled out explicitly):
        silently zip-truncating mismatched hand-built metrics would pair
        entries from different requests and overstate attainment.

        In streaming mode the per-request pairs no longer exist, so
        attainment is counted online against the SLO pair pinned at run
        time (``slo_pin``); querying any other pair raises ``ValueError``
        — a silently wrong number would be worse than no number.
        """
        if not self.ttfts_s:
            if self.streams is not None:
                eligible = self.streams["ttft"].count
                if eligible == 0:
                    return 0.0
                if self.slo_pin is None:
                    raise ValueError(
                        "streaming metrics cannot answer arbitrary SLO "
                        "queries after the fact; pin (ttft_slo_s, "
                        "tpot_slo_s) on the engine run to count "
                        "attainment online")
                if (ttft_slo_s, tpot_slo_s) != self.slo_pin:
                    raise ValueError(
                        f"streaming run pinned SLOs {self.slo_pin}; "
                        f"attainment for ({ttft_slo_s}, {tpot_slo_s}) "
                        "was not counted (re-run with that pin)")
                return self.slo_good_requests / eligible
            return 0.0
        tpots: List[Optional[float]] = self.tpots_s
        if tpots and len(tpots) != len(self.ttfts_s):
            raise ValueError(
                f"ttfts_s has {len(self.ttfts_s)} entries but tpots_s has "
                f"{len(tpots)}; per-request lists must align index-for-index "
                "(use None for requests without a TPOT sample)")
        cached = self._slo_cache
        if (cached is not None
                and cached[:4] == (len(self.ttfts_s), len(tpots),
                                   ttft_slo_s, tpot_slo_s)):
            return cached[4]
        if not tpots:
            tpots = [None] * len(self.ttfts_s)
        good = sum(1 for ttft, tpot in zip(self.ttfts_s, tpots)
                   if ttft <= ttft_slo_s
                   and (tpot is None or tpot <= tpot_slo_s))
        result = good / len(self.ttfts_s)
        self._slo_cache = (len(self.ttfts_s), len(self.tpots_s),
                           ttft_slo_s, tpot_slo_s, result)
        return result

    def slo_goodput_rps(self, ttft_slo_s: Seconds, tpot_slo_s: Seconds) -> float:
        """SLO-meeting requests served per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return (self.slo_attainment(ttft_slo_s, tpot_slo_s)
                * self.num_requests / self.makespan_s)

    def energy_joules(self, power_model: Optional[FpgaPowerModel] = None,
                      nodes_per_card: int = 2) -> Joules:
        """Total deployment energy over the makespan (all instances powered).

        Heterogeneous clusters sum per-class (each class has its own node
        count, hence its own per-instance power draw); the homogeneous
        formula is the single-class special case of the same sum.
        """
        power_model = power_model or FpgaPowerModel()
        if self.per_class:
            return sum(
                power_model.total_power_watts(c.num_nodes, nodes_per_card)
                * c.num_instances * self.makespan_s
                for c in self.per_class)
        per_instance = power_model.total_power_watts(self.num_nodes_per_instance,
                                                     nodes_per_card)
        return per_instance * self.num_instances * self.makespan_s

    def tokens_per_joule(self, power_model: Optional[FpgaPowerModel] = None,
                         nodes_per_card: int = 2) -> float:
        energy = self.energy_joules(power_model, nodes_per_card)
        if energy <= 0:
            return 0.0
        return self.generated_tokens / energy

    def summary(self) -> Dict[str, float]:
        out = {
            "requests": float(self.num_requests),
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tokens_per_second,
            "requests_per_s": self.requests_per_second,
            "mean_queue_delay_s": self.mean_queueing_delay_s,
            "p50_latency_s": self.latency_percentile_s(0.50),
            "p95_latency_s": self.latency_percentile_s(0.95),
            "p99_latency_s": self.latency_percentile_s(0.99),
            "instance_utilization": self.instance_utilization,
        }
        if self.has_token_metrics:
            out.update({
                "mean_ttft_s": self.mean_ttft_s,
                "p50_ttft_s": self.ttft_percentile_s(0.50),
                "p95_ttft_s": self.ttft_percentile_s(0.95),
                "p99_ttft_s": self.ttft_percentile_s(0.99),
                "p50_tpot_s": self.tpot_percentile_s(0.50),
                "p99_tpot_s": self.tpot_percentile_s(0.99),
                "preemptions": float(self.preemptions),
            })
        if self.mean_running_batch > 0:  # engine runs only
            out["mean_running_batch"] = self.mean_running_batch
        if self.busy_time_s > 0:  # engine runs only
            out.update({
                "prefill_tokens": float(self.prefill_tokens_processed),
                "decode_time_share": self.decode_time_share,
                "prefill_time_share": self.prefill_time_share,
            })
            if self.mixed_step_time_s > 0:
                out["mixed_time_share"] = self.mixed_time_share
        if self.kv_mode == "paged":
            out.update({
                "kv_total_blocks": float(self.kv_total_blocks),
                "mean_kv_occupancy": self.mean_kv_occupancy,
                "peak_kv_occupancy": self.peak_kv_occupancy,
                "mean_kv_fragmentation": self.mean_kv_fragmentation,
                "swap_outs": float(self.swap_out_count),
                "swap_ins": float(self.swap_in_count),
                "swapped_mib": self.swapped_bytes / (1 << 20),
                "swap_time_s": self.swap_time_s,
            })
        if self.kv_prefix_sharing:  # sharing-enabled paged runs only
            out.update({
                "prefix_hits": float(self.prefix_hits),
                "prefill_tokens_saved": float(self.prefill_tokens_saved),
                "cow_copies": float(self.cow_copies),
                "mean_kv_shared_fraction": self.mean_kv_shared_fraction,
            })
        if self.handoff_count:  # disaggregated clusters only
            out.update({
                "handoffs": float(self.handoff_count),
                "handoff_time_s": self.handoff_time_s,
            })
        return out


class StreamingMetricsCollector:
    """O(1)-memory accumulator the engine feeds one finished request at a
    time in ``metrics_mode="streaming"``.

    Replaces the per-request record list: counters (requests, tokens,
    preemptions, per-class totals) and means stay exact, latency
    distributions go through :class:`StreamingQuantile`, and joint SLO
    attainment is counted online against the SLO pair pinned at
    construction (it cannot be recovered from marginal distributions
    afterwards).  ``class_of_instance`` maps instance id → class label so
    per-class counters survive without records.
    """

    __slots__ = ("count", "generated_tokens", "preemptions", "max_finish_s",
                 "slo", "slo_good", "queueing", "latency", "service",
                 "ttft", "tpot", "class_of_instance", "per_class")

    def __init__(self, slo: Optional[Tuple[float, float]] = None,
                 quantile_error: float = 0.005,
                 class_of_instance: Optional[Dict[int, str]] = None) -> None:
        self.count = 0
        self.generated_tokens = 0
        self.preemptions = 0
        self.max_finish_s = 0.0
        self.slo = slo
        self.slo_good = 0
        self.queueing = StreamingQuantile(quantile_error)
        self.latency = StreamingQuantile(quantile_error)
        self.service = StreamingQuantile(quantile_error)
        self.ttft = StreamingQuantile(quantile_error)
        self.tpot = StreamingQuantile(quantile_error)
        self.class_of_instance = class_of_instance or {}
        # label -> [requests, generated_tokens, preemptions,
        #           ttft_count, ttft_sum_s]
        self.per_class: Dict[str, List[float]] = {}

    def add(self, state: "RequestState", now: float) -> None:
        """Fold in one finished request (``state`` is the engine's
        :class:`~repro.serving.instance.RequestState` at completion)."""
        request = state.request
        arrival = request.arrival_s
        admitted = state.admitted_s if state.admitted_s is not None else now
        decode_len = state.decode_len
        self.count += 1
        self.generated_tokens += decode_len
        self.preemptions += state.preemptions
        if now > self.max_finish_s:
            self.max_finish_s = now
        self.queueing.add(admitted - arrival)
        self.latency.add(now - arrival)
        self.service.add(now - admitted)
        first_token = state.first_token_s
        ttft = tpot = None
        if first_token is not None:
            ttft = first_token - arrival
            self.ttft.add(ttft)
            if decode_len > 1:
                tpot = (now - first_token) / (decode_len - 1)
                self.tpot.add(tpot)
            slo = self.slo
            if (slo is not None and ttft <= slo[0]
                    and (tpot is None or tpot <= slo[1])):
                self.slo_good += 1
        label = self.class_of_instance.get(state.instance_id)
        if label is not None:
            entry = self.per_class.get(label)
            if entry is None:
                entry = self.per_class[label] = [0, 0, 0, 0, 0.0]
            entry[0] += 1
            entry[1] += decode_len
            entry[2] += state.preemptions
            if ttft is not None:
                entry[3] += 1
                entry[4] += ttft

    def streams(self) -> Dict[str, StreamingQuantile]:
        """The aggregate dict :class:`ServingMetrics` exposes as
        ``streams``."""
        return {"queueing_delay": self.queueing, "latency": self.latency,
                "service_time": self.service, "ttft": self.ttft,
                "tpot": self.tpot}


def merge_streaming_metrics(
        parts: Sequence[ServingMetrics]) -> ServingMetrics:
    """Fold streaming-mode metrics from same-configuration runs into one.

    This is the cross-worker aggregation primitive for sharded
    workloads: run the same engine configuration over ``k`` trace shards
    (in ``k`` sweep workers, say), then merge the ``k`` streaming
    metrics objects as if one engine had served the union of the
    traffic.  Exact counters (requests, tokens, preemptions, swap and
    handoff tallies, SLO-good counts, busy/step time accounting) sum
    exactly; the latency distributions merge their log-bucketed
    histograms, which is *lossless* relative to a single-stream
    histogram — the merged percentile equals what one collector seeing
    all samples would report, and therefore stays within the documented
    relative-error bound of the true order statistic.

    Semantics of the recombined time-weighted fields: ``makespan_s`` is
    the max over parts (shards share the t=0 origin), while the
    time-weighted means (``mean_running_batch``, ``mean_kv_occupancy``)
    recombine weighted by each part's pool time and the busy-normalized
    means (``mean_kv_fragmentation``, ``mean_kv_shared_fraction``) by
    each part's busy time — i.e. every mean remains "accumulated
    quantity over accumulated time".

    All parts must come from the same engine configuration (policy,
    cluster, router, KV recipe, SLO pin, quantile resolution); a
    mismatch raises ``ValueError``.
    """
    if not parts:
        raise ValueError("nothing to merge")
    first = parts[0]
    for m in parts:
        if m.metrics_mode != "streaming" or m.streams is None:
            raise ValueError(
                "merge_streaming_metrics only merges streaming-mode "
                "metrics (full mode carries per-request records; merge "
                "those instead)")
        config = (m.policy, m.prefill_mode, m.kv_mode, m.kv_block_size,
                  m.kv_total_blocks, m.cluster, m.router, m.num_instances,
                  m.num_nodes_per_instance, m.kv_prefix_sharing, m.slo_pin)
        if config != (first.policy, first.prefill_mode, first.kv_mode,
                      first.kv_block_size, first.kv_total_blocks,
                      first.cluster, first.router, first.num_instances,
                      first.num_nodes_per_instance,
                      first.kv_prefix_sharing, first.slo_pin):
            raise ValueError(
                "cannot merge streaming metrics from different engine "
                f"configurations: {config!r} vs first part")

    makespan = max(m.makespan_s for m in parts)
    pool_time = sum(m.makespan_s * m.num_instances for m in parts)
    busy_time = sum(m.busy_time_s for m in parts)

    streams: Dict[str, StreamingQuantile] = {}
    assert first.streams is not None  # mypy narrowing  # repro-lint: disable=R005
    for name, stream in first.streams.items():
        merged = StreamingQuantile(relative_error=stream.relative_error)
        for m in parts:
            assert m.streams is not None  # mypy narrowing  # repro-lint: disable=R005
            merged.merge(m.streams[name])
        streams[name] = merged

    by_label: Dict[str, List[InstanceClassMetrics]] = {}
    label_order: List[str] = []
    for m in parts:
        for c in m.per_class:
            if c.label not in by_label:
                by_label[c.label] = []
                label_order.append(c.label)
            by_label[c.label].append(c)
    per_class: List[InstanceClassMetrics] = []
    for label in label_order:
        group = by_label[label]
        if len(group) != len(parts):
            raise ValueError(
                f"instance class {label!r} is missing from some parts")
        head = group[0]
        class_makespan = max(c.makespan_s for c in group)
        class_pool = sum(c.makespan_s * c.num_instances for c in group)
        per_class.append(InstanceClassMetrics(
            label=head.label,
            num_instances=head.num_instances,
            num_nodes=head.num_nodes,
            role=head.role,
            requests=sum(c.requests for c in group),
            generated_tokens=sum(c.generated_tokens for c in group),
            makespan_s=class_makespan,
            busy_time_s=sum(c.busy_time_s for c in group),
            batch_time_s=sum(c.batch_time_s for c in group),
            ttft_count=sum(c.ttft_count for c in group),
            ttft_sum_s=sum(c.ttft_sum_s for c in group),
            preemptions=sum(c.preemptions for c in group),
            mean_kv_occupancy=(
                sum(c.mean_kv_occupancy * c.makespan_s * c.num_instances
                    for c in group) / class_pool if class_pool > 0 else 0.0),
            peak_kv_occupancy=max(c.peak_kv_occupancy for c in group),
            kv_total_blocks=head.kv_total_blocks,
            swap_out_count=sum(c.swap_out_count for c in group),
            swap_in_count=sum(c.swap_in_count for c in group),
            prefix_hits=sum(c.prefix_hits for c in group),
            prefill_tokens_saved=sum(c.prefill_tokens_saved
                                     for c in group),
            handoffs_out=sum(c.handoffs_out for c in group),
            handoffs_in=sum(c.handoffs_in for c in group),
            handoff_time_s=sum(c.handoff_time_s for c in group),
        ))

    return ServingMetrics(
        num_requests=sum(m.num_requests for m in parts),
        num_instances=first.num_instances,
        num_nodes_per_instance=first.num_nodes_per_instance,
        makespan_s=makespan,
        generated_tokens=sum(m.generated_tokens for m in parts),
        preemptions=sum(m.preemptions for m in parts),
        policy=first.policy,
        prefill_mode=first.prefill_mode,
        busy_time_s=busy_time,
        prefill_tokens_processed=sum(m.prefill_tokens_processed
                                     for m in parts),
        decode_step_time_s=sum(m.decode_step_time_s for m in parts),
        prefill_step_time_s=sum(m.prefill_step_time_s for m in parts),
        mixed_step_time_s=sum(m.mixed_step_time_s for m in parts),
        kv_mode=first.kv_mode,
        kv_block_size=first.kv_block_size,
        kv_total_blocks=first.kv_total_blocks,
        mean_running_batch=(
            sum(m.mean_running_batch * m.makespan_s * m.num_instances
                for m in parts) / pool_time if pool_time > 0 else 0.0),
        mean_kv_occupancy=(
            sum(m.mean_kv_occupancy * m.makespan_s * m.num_instances
                for m in parts) / pool_time if pool_time > 0 else 0.0),
        peak_kv_occupancy=max(m.peak_kv_occupancy for m in parts),
        mean_kv_fragmentation=(
            sum(m.mean_kv_fragmentation * m.busy_time_s for m in parts)
            / busy_time if busy_time > 0 else 0.0),
        swap_out_count=sum(m.swap_out_count for m in parts),
        swap_in_count=sum(m.swap_in_count for m in parts),
        swapped_bytes=sum(m.swapped_bytes for m in parts),
        swap_time_s=sum(m.swap_time_s for m in parts),
        handoff_count=sum(m.handoff_count for m in parts),
        handoff_time_s=sum(m.handoff_time_s for m in parts),
        kv_prefix_sharing=first.kv_prefix_sharing,
        prefix_hits=sum(m.prefix_hits for m in parts),
        prefill_tokens_saved=sum(m.prefill_tokens_saved for m in parts),
        cow_copies=sum(m.cow_copies for m in parts),
        mean_kv_shared_fraction=(
            sum(m.mean_kv_shared_fraction * m.busy_time_s for m in parts)
            / busy_time if busy_time > 0 else 0.0),
        cluster=first.cluster,
        router=first.router,
        per_class=per_class,
        metrics_mode="streaming",
        streams=streams,
        slo_pin=first.slo_pin,
        slo_good_requests=sum(m.slo_good_requests for m in parts),
    )
