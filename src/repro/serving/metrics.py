"""Serving metrics: latency percentiles, throughput, utilization, energy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.energy.power import FpgaPowerModel


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


@dataclass
class InstanceClassMetrics:
    """Aggregate statistics of one instance class inside a cluster run.

    A *class* is a group of identical instances (same node count, same KV
    budget — one :class:`~repro.serving.cluster.InstanceSpec`).  The engine
    emits one of these per class so heterogeneous pools can be judged class
    by class: is the big-instance class earning its nodes, are the small
    instances saturated, where do the swaps happen.  Requests whose
    ``instance_id`` is ``None`` (never ran) belong to no class and are
    excluded from every field here.

    Units match :class:`ServingMetrics`: seconds, tokens, blocks per node.
    """

    label: str
    num_instances: int
    num_nodes: int
    #: Serving role of the class (``"both"`` outside disaggregated
    #: clusters): handoff traffic only makes sense per role — prefill
    #: classes export (``handoffs_out``), decode classes import
    #: (``handoffs_in``) — and a prefill class legitimately completes
    #: zero requests while doing most of the compute.
    role: str = "both"
    requests: int = 0
    generated_tokens: int = 0
    makespan_s: float = 0.0
    busy_time_s: float = 0.0
    batch_time_s: float = 0.0
    ttfts_s: List[float] = field(default_factory=list)
    tpots_s: List[Optional[float]] = field(default_factory=list)
    preemptions: int = 0
    mean_kv_occupancy: float = 0.0
    peak_kv_occupancy: float = 0.0
    kv_total_blocks: int = 0
    swap_out_count: int = 0
    swap_in_count: int = 0
    handoffs_out: int = 0
    handoffs_in: int = 0
    handoff_time_s: float = 0.0

    @property
    def utilization(self) -> float:
        """Fraction of this class's instance-time spent executing steps."""
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        return self.busy_time_s / capacity

    @property
    def mean_running_batch(self) -> float:
        """Time-weighted mean co-resident requests per instance of this
        class over the makespan (idle time counts as zero)."""
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        return self.batch_time_s / capacity

    @property
    def mean_ttft_s(self) -> float:
        if not self.ttfts_s:
            return 0.0
        return sum(self.ttfts_s) / len(self.ttfts_s)

    def ttft_percentile_s(self, fraction: float) -> float:
        return percentile(self.ttfts_s, fraction)

    def tpot_percentile_s(self, fraction: float) -> float:
        return percentile([t for t in self.tpots_s if t is not None],
                          fraction)


@dataclass
class ServingMetrics:
    """Aggregate statistics of one serving simulation.

    The token-level fields (``ttfts_s``, ``tpots_s``, ``preemptions``) are
    only populated by the step-granular engine
    (:class:`repro.serving.engine.TokenServingEngine`); the whole-request
    compatibility path leaves them empty because a request-sized service blob
    has no interior token timestamps.

    ``tpots_s`` is aligned index-for-index with ``ttfts_s`` (one entry per
    request that generated a token); an entry is ``None`` for a request with
    fewer than two generated tokens, which has no inter-token gap.  ``None``
    entries are excluded from the TPOT percentiles and count as *vacuously*
    meeting the TPOT SLO in :meth:`slo_attainment` — explicitly, not by
    smuggling a 0.0 into the distribution.

    Step accounting (engine runs only):

    * ``busy_time_s`` — seconds instances spent executing steps (including
      serialized swap transfers), summed over the pool.  This is the ground
      truth behind :attr:`instance_utilization`: unlike per-request service
      times it never double-counts the time a preempted request spends
      re-queued, so the utilization it yields is ≤ 1 by construction;
    * ``prefill_tokens_processed`` — prompt tokens actually computed
      (recomputed prefills after a discarding preemption count again);
    * ``decode_step_time_s`` / ``prefill_step_time_s`` /
      ``mixed_step_time_s`` — busy seconds split by step kind (pure decode,
      pure prefill, mixed prefill+decode); the ``*_time_share`` properties
      normalize them by ``busy_time_s``.

    KV-cache occupancy fields (engine runs only):

    * ``kv_mode`` — ``"none"``, ``"reserve"`` (worst-case reservations) or
      ``"paged"`` (fixed-size block allocation);
    * ``mean_running_batch`` — time-weighted mean number of co-resident
      requests per instance over the makespan (the *batch occupancy* a KV
      regime sustains; idle time counts as zero);
    * ``mean_kv_occupancy`` / ``peak_kv_occupancy`` — time-weighted mean and
      peak fraction of the device block pool allocated (paged mode);
    * ``mean_kv_fragmentation`` — time-weighted fraction of allocated block
      capacity not covering cached tokens (partially-filled tail blocks);
    * ``swap_out_count`` / ``swap_in_count`` / ``swapped_bytes`` /
      ``swap_time_s`` — host-tier traffic of swap-based preemption:
      transfers, PCIe bytes (summed over nodes) and the seconds those
      transfers occupied instances;
    * ``handoff_count`` / ``handoff_time_s`` — prefill→decode KV handoffs
      on disaggregated clusters and the PCIe seconds they cost (export on
      the prefiller plus import on the decoder).  A handoff rides the swap
      machinery, so its transfers are *also* counted in the swap fields
      and in ``busy_time_s`` (they serialize ahead of instance steps);
      these two fields isolate the disaggregation share.
    """

    num_requests: int
    num_instances: int
    num_nodes_per_instance: int
    makespan_s: float
    generated_tokens: int
    queueing_delays_s: List[float] = field(default_factory=list)
    end_to_end_latencies_s: List[float] = field(default_factory=list)
    service_times_s: List[float] = field(default_factory=list)
    ttfts_s: List[float] = field(default_factory=list)
    tpots_s: List[Optional[float]] = field(default_factory=list)
    preemptions: int = 0
    policy: str = "fifo-exclusive"
    prefill_mode: str = "exclusive"
    busy_time_s: float = 0.0
    prefill_tokens_processed: int = 0
    decode_step_time_s: float = 0.0
    prefill_step_time_s: float = 0.0
    mixed_step_time_s: float = 0.0
    kv_mode: str = "none"
    kv_block_size: int = 0
    kv_total_blocks: int = 0
    mean_running_batch: float = 0.0
    mean_kv_occupancy: float = 0.0
    peak_kv_occupancy: float = 0.0
    mean_kv_fragmentation: float = 0.0
    swap_out_count: int = 0
    swap_in_count: int = 0
    swapped_bytes: int = 0
    swap_time_s: float = 0.0
    handoff_count: int = 0
    handoff_time_s: float = 0.0
    #: Cluster shape (e.g. ``"2x1n,1x2n"``) and routing policy of the run
    #: ("" for the whole-request simulator, which has no cluster layer).
    cluster: str = ""
    router: str = ""
    #: One entry per instance class (engine runs only; single-class pools
    #: get exactly one).  ``num_nodes_per_instance`` is 0 when classes mix
    #: node counts — per-class numbers live here instead.
    per_class: List[InstanceClassMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def throughput_tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.num_requests / self.makespan_s

    @property
    def mean_queueing_delay_s(self) -> float:
        if not self.queueing_delays_s:
            return 0.0
        return sum(self.queueing_delays_s) / len(self.queueing_delays_s)

    @property
    def instance_utilization(self) -> float:
        """Fraction of instance-time spent actually serving requests.

        Engine runs report it as ``busy_time_s / (makespan × instances)``,
        which is ≤ 1 by construction (steps never overlap on an instance and
        all finish within the makespan).  The whole-request simulator has no
        step clock, so it falls back to the per-request service-time estimate;
        that estimate would overstate utilization under preemption (a
        re-queued request's wait is inside its service time), but the
        simulator never preempts, so there it is exact.
        """
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        if self.busy_time_s > 0:
            return self.busy_time_s / capacity
        return min(sum(self.service_times_s) / capacity, 1.0)

    @property
    def decode_time_share(self) -> float:
        """Fraction of busy time spent in pure decode steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.decode_step_time_s / self.busy_time_s

    @property
    def prefill_time_share(self) -> float:
        """Fraction of busy time spent in pure prefill steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.prefill_step_time_s / self.busy_time_s

    @property
    def mixed_time_share(self) -> float:
        """Fraction of busy time spent in mixed prefill+decode steps."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.mixed_step_time_s / self.busy_time_s

    def latency_percentile_s(self, fraction: float) -> float:
        return percentile(self.end_to_end_latencies_s, fraction)

    # ------------------------------------------------------------------
    # token-level metrics (engine runs only)
    # ------------------------------------------------------------------
    @property
    def mean_ttft_s(self) -> float:
        if not self.ttfts_s:
            return 0.0
        return sum(self.ttfts_s) / len(self.ttfts_s)

    def ttft_percentile_s(self, fraction: float) -> float:
        """Time-to-first-token percentile (arrival to first generated token)."""
        return percentile(self.ttfts_s, fraction)

    def tpot_percentile_s(self, fraction: float) -> float:
        """Time-per-output-token percentile (mean inter-token gap after the
        first token, one value per request).  Requests with fewer than two
        generated tokens have no inter-token gap and are excluded instead of
        contributing a bias-inducing 0.0."""
        return percentile([t for t in self.tpots_s if t is not None], fraction)

    def slo_attainment(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """Fraction of requests meeting both the TTFT and TPOT SLOs.

        Requires token-level data; the i-th entries of ``ttfts_s`` and
        ``tpots_s`` describe the same request (the engine emits them sorted
        by request id).  A ``None`` TPOT (single-token request) meets the
        TPOT SLO vacuously — there is no inter-token gap to violate it.

        Raises ``ValueError`` when both lists are populated with different
        lengths (``zip(strict=True)`` semantics, spelled out for Python 3.9):
        silently zip-truncating mismatched hand-built metrics would pair
        entries from different requests and overstate attainment.
        """
        if not self.ttfts_s:
            return 0.0
        tpots: List[Optional[float]] = self.tpots_s
        if tpots and len(tpots) != len(self.ttfts_s):
            raise ValueError(
                f"ttfts_s has {len(self.ttfts_s)} entries but tpots_s has "
                f"{len(tpots)}; per-request lists must align index-for-index "
                "(use None for requests without a TPOT sample)")
        if not tpots:
            tpots = [None] * len(self.ttfts_s)
        good = sum(1 for ttft, tpot in zip(self.ttfts_s, tpots)
                   if ttft <= ttft_slo_s
                   and (tpot is None or tpot <= tpot_slo_s))
        return good / len(self.ttfts_s)

    def slo_goodput_rps(self, ttft_slo_s: float, tpot_slo_s: float) -> float:
        """SLO-meeting requests served per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return (self.slo_attainment(ttft_slo_s, tpot_slo_s)
                * self.num_requests / self.makespan_s)

    def energy_joules(self, power_model: Optional[FpgaPowerModel] = None,
                      nodes_per_card: int = 2) -> float:
        """Total deployment energy over the makespan (all instances powered).

        Heterogeneous clusters sum per-class (each class has its own node
        count, hence its own per-instance power draw); the homogeneous
        formula is the single-class special case of the same sum.
        """
        power_model = power_model or FpgaPowerModel()
        if self.per_class:
            return sum(
                power_model.total_power_watts(c.num_nodes, nodes_per_card)
                * c.num_instances * self.makespan_s
                for c in self.per_class)
        per_instance = power_model.total_power_watts(self.num_nodes_per_instance,
                                                     nodes_per_card)
        return per_instance * self.num_instances * self.makespan_s

    def tokens_per_joule(self, power_model: Optional[FpgaPowerModel] = None,
                         nodes_per_card: int = 2) -> float:
        energy = self.energy_joules(power_model, nodes_per_card)
        if energy <= 0:
            return 0.0
        return self.generated_tokens / energy

    def summary(self) -> Dict[str, float]:
        out = {
            "requests": float(self.num_requests),
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tokens_per_second,
            "requests_per_s": self.requests_per_second,
            "mean_queue_delay_s": self.mean_queueing_delay_s,
            "p50_latency_s": self.latency_percentile_s(0.50),
            "p95_latency_s": self.latency_percentile_s(0.95),
            "p99_latency_s": self.latency_percentile_s(0.99),
            "instance_utilization": self.instance_utilization,
        }
        if self.ttfts_s:
            out.update({
                "mean_ttft_s": self.mean_ttft_s,
                "p50_ttft_s": self.ttft_percentile_s(0.50),
                "p95_ttft_s": self.ttft_percentile_s(0.95),
                "p99_ttft_s": self.ttft_percentile_s(0.99),
                "p50_tpot_s": self.tpot_percentile_s(0.50),
                "p99_tpot_s": self.tpot_percentile_s(0.99),
                "preemptions": float(self.preemptions),
            })
        if self.mean_running_batch > 0:  # engine runs only
            out["mean_running_batch"] = self.mean_running_batch
        if self.busy_time_s > 0:  # engine runs only
            out.update({
                "prefill_tokens": float(self.prefill_tokens_processed),
                "decode_time_share": self.decode_time_share,
                "prefill_time_share": self.prefill_time_share,
            })
            if self.mixed_step_time_s > 0:
                out["mixed_time_share"] = self.mixed_time_share
        if self.kv_mode == "paged":
            out.update({
                "kv_total_blocks": float(self.kv_total_blocks),
                "mean_kv_occupancy": self.mean_kv_occupancy,
                "peak_kv_occupancy": self.peak_kv_occupancy,
                "mean_kv_fragmentation": self.mean_kv_fragmentation,
                "swap_outs": float(self.swap_out_count),
                "swap_ins": float(self.swap_in_count),
                "swapped_mib": self.swapped_bytes / (1 << 20),
                "swap_time_s": self.swap_time_s,
            })
        if self.handoff_count:  # disaggregated clusters only
            out.update({
                "handoffs": float(self.handoff_count),
                "handoff_time_s": self.handoff_time_s,
            })
        return out
