"""Serving metrics: latency percentiles, throughput, utilization, energy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.energy.power import FpgaPowerModel


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


@dataclass
class ServingMetrics:
    """Aggregate statistics of one serving simulation."""

    num_requests: int
    num_instances: int
    num_nodes_per_instance: int
    makespan_s: float
    generated_tokens: int
    queueing_delays_s: List[float] = field(default_factory=list)
    end_to_end_latencies_s: List[float] = field(default_factory=list)
    service_times_s: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def throughput_tokens_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def requests_per_second(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.num_requests / self.makespan_s

    @property
    def mean_queueing_delay_s(self) -> float:
        if not self.queueing_delays_s:
            return 0.0
        return sum(self.queueing_delays_s) / len(self.queueing_delays_s)

    @property
    def instance_utilization(self) -> float:
        """Fraction of instance-time spent actually serving requests."""
        capacity = self.makespan_s * self.num_instances
        if capacity <= 0:
            return 0.0
        return min(sum(self.service_times_s) / capacity, 1.0)

    def latency_percentile_s(self, fraction: float) -> float:
        return percentile(self.end_to_end_latencies_s, fraction)

    def energy_joules(self, power_model: Optional[FpgaPowerModel] = None,
                      nodes_per_card: int = 2) -> float:
        """Total deployment energy over the makespan (all instances powered)."""
        power_model = power_model or FpgaPowerModel()
        per_instance = power_model.total_power_watts(self.num_nodes_per_instance,
                                                     nodes_per_card)
        return per_instance * self.num_instances * self.makespan_s

    def tokens_per_joule(self, power_model: Optional[FpgaPowerModel] = None,
                         nodes_per_card: int = 2) -> float:
        energy = self.energy_joules(power_model, nodes_per_card)
        if energy <= 0:
            return 0.0
        return self.generated_tokens / energy

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(self.num_requests),
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tokens_per_second,
            "requests_per_s": self.requests_per_second,
            "mean_queue_delay_s": self.mean_queueing_delay_s,
            "p50_latency_s": self.latency_percentile_s(0.50),
            "p95_latency_s": self.latency_percentile_s(0.95),
            "p99_latency_s": self.latency_percentile_s(0.99),
            "instance_utilization": self.instance_utilization,
        }
