"""Heterogeneous instance pools and the pluggable cluster-routing layer.

A serving deployment is rarely a row of identical boxes: mixing a few big
(many-node, fast-prefill) instances with many small (cheap, plentiful) ones
serves a mixed request population better than either extreme — *if* the
cluster routes each request to an instance class that suits it.  This module
provides the two pieces the engine needs for that:

* **cluster shape** — :class:`InstanceSpec` describes one *class* of
  instances (how many, how many accelerator nodes each, optional per-node
  KV-budget override, optional serving role) and :class:`ClusterSpec` is an
  ordered list of them.  The text form follows the grammar
  ``<count>x<nodes>n[@<size>MiB][:<role>]``: ``"2x1n,2x2n,1x4n"`` is two
  1-node, two 2-node and one 4-node instance, ``"2x2n@32MiB"`` overrides
  the per-node KV budget of that class, and ``"1x4n:prefill,4x1n:decode"``
  is a *disaggregated* cluster — the 4-node class only prefills and hands
  each finished prompt's paged KV blocks to a 1-node decode instance over
  PCIe.  Specs round-trip through :func:`parse_cluster_spec` and are what
  the ``serve --instances`` flag accepts;
* **routing** — a :class:`Router` decides, at every event boundary, the
  order in which instances at a step boundary get to pull work from the
  shared waiting queue, and (via :meth:`Router.placement_ok`) may veto
  placing a specific request on a specific instance class.

Routing model
-------------

The cluster keeps **one shared waiting queue** (the scheduler policy's
heap); requests are never pinned to a per-instance queue.  Routing happens
at *dispatch* time: when an event leaves one or more instances at a step
boundary, the router orders them, and each admits greedily from the queue
head in that order (subject to its KV gate and the router's placement
veto).  Two properties fall out:

* **homogeneous pools are router-independent** — with a single instance
  class there is nothing to differentiate, so the engine runs the exact
  pre-cluster dispatch order and stays bit-identical to the PR 1–3 engines
  (pinned by golden-timestamp tests across every router);
* **no request is ever dropped or duplicated** — routing only reorders
  *who pulls next*; the queue, admission and completion bookkeeping are the
  same single-pool machinery regardless of router (pinned by conservation
  property tests).

Provided routers (``serve --router``):

* ``round_robin`` — rotate first pick by cumulative admissions, so every
  instance gets a fair share of requests;
* ``least_loaded`` — fewest responsible requests first (running batch plus
  parked swap-priority victims);
* ``kv_aware`` — freest KV capacity first; an instance holding the queue
  head's swapped-out blocks always gets first pick (swap affinity);
* ``class_affinity`` — SJF-style size matching: short prompts to small
  instances, long prompts to big ones, with the prompt-length thresholds
  derived from the trace so each class's share of prompts matches its share
  of cluster nodes;
* ``disaggregated`` — role matching for prefill/decode-tagged clusters:
  fresh requests go to prefill-capable instances, handed-off requests to
  the decode instance holding their KV, least-loaded first within a role;
* ``prefix_aware`` — cache-status-aware: the instance whose prefix index
  holds the longest match for the queue head's prompt pulls first (swap
  affinity still wins outright; ties fall back to least-loaded).  Only
  useful with ``--kv-prefix-sharing``; without it every match is zero and
  the router degrades to least-loaded.

Units: node counts are accelerator nodes per instance, KV budgets are bytes
per node, prompt lengths are tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.units import Bytes

if TYPE_CHECKING:  # pragma: no cover - cluster is imported by instance
    from repro.serving.instance import InstanceRuntime, RequestState
    from repro.workloads.traces import Request

#: Router sort key: heterogeneous tuples of ints/floats compared
#: lexicographically (ties always break on ``instance_id`` afterwards).
RankKey = Tuple[float, ...]

#: Router names accepted by the engine and the ``serve --router`` flag.
ROUTER_NAMES = ("round_robin", "least_loaded", "kv_aware", "class_affinity",
                "disaggregated", "prefix_aware")

#: Serving roles an :class:`InstanceSpec` may carry.  ``"both"`` (default)
#: serves requests end-to-end; ``"prefill"`` computes prompts only and hands
#: the finished KV off; ``"decode"`` imports handed-off KV and generates.
INSTANCE_ROLES = ("both", "prefill", "decode")

_SPEC_PATTERN = re.compile(
    r"^(\d+)x(\d+)n(?:@(\d+(?:\.\d+)?)MiB)?(?::(\w+))?$")


@dataclass(frozen=True)
class InstanceSpec:
    """One class of identical instances inside a cluster.

    ``kv_budget_bytes`` optionally overrides the per-node KV byte budget of
    this class only (None inherits the cluster-wide default, which itself
    defaults to each node's HBM share net of weights — note that the same
    byte budget holds a *different* number of cached tokens per class,
    because each node of a bigger instance stores fewer heads per token).

    ``role`` tags the class for disaggregated serving: ``"prefill"``
    instances compute prompts and hand each finished prompt's paged KV
    blocks to a decode-capable instance; ``"decode"`` instances only accept
    requests whose prompt is already computed; ``"both"`` (the default)
    serves requests end-to-end, exactly as before roles existed.
    """

    count: int
    num_nodes: int
    kv_budget_bytes: Optional[Bytes] = None
    role: str = "both"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("instance count must be positive")
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.kv_budget_bytes is not None and self.kv_budget_bytes < 0:
            raise ValueError("kv_budget_bytes cannot be negative")
        if self.role not in INSTANCE_ROLES:
            raise ValueError(f"unknown instance role {self.role!r}; "
                             f"known: {', '.join(INSTANCE_ROLES)}")

    @property
    def label(self) -> str:
        """Class label used in metrics and routing (e.g. ``"2n"``; the
        per-class KV-budget override and the serving role are part of the
        class identity, so they show up in the label — two same-node-count
        classes with different budgets or roles must not collapse into one
        metrics row)."""
        label = f"{self.num_nodes}n"
        if self.kv_budget_bytes is not None:
            label += f"/{self.kv_budget_bytes / (1 << 20):g}MiB"
        if self.role != "both":
            label += f":{self.role}"
        return label

    @property
    def total_nodes(self) -> int:
        return self.count * self.num_nodes

    def __str__(self) -> str:
        text = f"{self.count}x{self.num_nodes}n"
        if self.kv_budget_bytes is not None:
            text += f"@{self.kv_budget_bytes / (1 << 20):g}MiB"
        if self.role != "both":
            text += f":{self.role}"
        return text


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered list of instance classes; instance ids are assigned in
    spec order (spec 0's instances first), which keeps single-class
    clusters identical to the flat ``num_instances`` pools they replace."""

    specs: Tuple[InstanceSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("cluster needs at least one instance spec")

    @staticmethod
    def homogeneous(num_instances: int, num_nodes: int) -> "ClusterSpec":
        """The single-class cluster equivalent to the classic
        ``num_instances`` × ``num_nodes_per_instance`` pool."""
        return ClusterSpec((InstanceSpec(num_instances, num_nodes),))

    @property
    def num_instances(self) -> int:
        return sum(spec.count for spec in self.specs)

    @property
    def total_nodes(self) -> int:
        """Accelerator nodes across the whole cluster — the budget a
        node-equivalent homogeneous pool must match for fair comparisons."""
        return sum(spec.total_nodes for spec in self.specs)

    @property
    def is_heterogeneous(self) -> bool:
        """True when the pool mixes instance classes — the regime where the
        router is consulted.  Single-class pools keep the exact pre-cluster
        dispatch order (and therefore bit-identical timestamps).  Serving
        roles are part of class identity: a disaggregated cluster is
        heterogeneous even when every instance has the same node count."""
        return len({(s.num_nodes, s.kv_budget_bytes, s.role)
                    for s in self.specs}) > 1

    @property
    def has_roles(self) -> bool:
        """True when any class carries a prefill/decode role — the
        disaggregated regime, where finished prompts hand their KV off."""
        return any(spec.role != "both" for spec in self.specs)

    @property
    def labels(self) -> List[str]:
        """Distinct class labels in spec order."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.label not in seen:
                seen.append(spec.label)
        return seen

    def instance_classes(self) -> List[Tuple[int, InstanceSpec]]:
        """``(instance_id, spec)`` for every instance, ids in spec order."""
        out: List[Tuple[int, InstanceSpec]] = []
        instance_id = 0
        for spec in self.specs:
            for _ in range(spec.count):
                out.append((instance_id, spec))
                instance_id += 1
        return out

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)


def parse_cluster_spec(text: str) -> ClusterSpec:
    """Parse ``"2x1n,2x2n,1x4n"`` into a :class:`ClusterSpec`.

    Each comma-separated entry is ``<count>x<nodes>n[@<size>MiB][:<role>]``:
    an optional ``@<size>MiB`` overrides the class's per-node KV byte
    budget, an optional ``:<role>`` (``prefill`` / ``decode`` / ``both``)
    tags it for disaggregated serving.  ``str()`` of the result round-trips
    back through this parser.  Raises ``ValueError`` naming the malformed
    entry.
    """
    if not text or not text.strip():
        raise ValueError("empty cluster spec")
    specs: List[InstanceSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        match = _SPEC_PATTERN.match(entry)
        if match is None:
            raise ValueError(
                f"bad instance spec {entry!r}: expected "
                "<count>x<nodes>n[@<size>MiB][:<role>], e.g. '2x1n' (two "
                "one-node instances), '2x2n@32MiB' (KV-budget override) or "
                "'1x4n:prefill' (disaggregated role)")
        budget = (None if match.group(3) is None
                  else round(float(match.group(3)) * (1 << 20)))
        role = match.group(4) or "both"
        if role not in INSTANCE_ROLES:
            raise ValueError(
                f"bad instance spec {entry!r}: unknown role {role!r}; "
                f"known: {', '.join(INSTANCE_ROLES)}")
        try:
            specs.append(InstanceSpec(count=int(match.group(1)),
                                      num_nodes=int(match.group(2)),
                                      kv_budget_bytes=budget,
                                      role=role))
        except ValueError as exc:
            raise ValueError(f"bad instance spec {entry!r}: {exc}") from None
    return ClusterSpec(tuple(specs))


# ---------------------------------------------------------------------------
# routers
# ---------------------------------------------------------------------------
class Router:
    """Cluster-routing policy: who pulls from the shared queue, and where
    may a given request land.

    The engine consults a router only on heterogeneous pools (see the
    module docstring); all hooks are deterministic functions of cluster
    state, so runs stay exactly reproducible.

    Subclasses override :meth:`rank`; ties always break on ``instance_id``
    so every router degenerates to the pre-cluster dispatch order when its
    ranking key cannot distinguish instances.
    """

    name = "base"

    def prepare(self, runtimes: Sequence["InstanceRuntime"],
                trace: Iterable["Request"]) -> None:
        """Called once per run before the clock starts, with the built
        instance runtimes and the full trace (routers may precompute
        per-request placement from it — the same oracle standing the SJF
        scheduler uses)."""

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        """Sort key for one boundary instance (smaller dispatches first);
        ``head`` is the current queue head (may be None)."""
        return ()

    def dispatch_order(self, candidates: List["InstanceRuntime"],
                       head: Optional["RequestState"]
                       ) -> List["InstanceRuntime"]:
        """Order the instances at a step boundary for this event."""
        return sorted(candidates,
                      key=lambda r: (self.rank(r, head), r.instance_id))

    def placement_ok(self, runtime: "InstanceRuntime",
                     state: "RequestState") -> bool:
        """May ``state`` be admitted on ``runtime``?  A vetoed head is not
        admitted (nor preempted for) there and waits for an instance the
        router accepts; routers must accept at least one class that can
        serve the request, or the run would stall."""
        return True

    def handoff_target(self, runtimes: Sequence["InstanceRuntime"],
                       state: "RequestState") -> Optional["InstanceRuntime"]:
        """The decode-capable instance a finished prompt's KV should move
        to: the least-loaded one whose pool can hold the request at full
        context (ties by instance id).  Returns None when no decode-capable
        instance fits — the engine treats that as a bug, because trace
        validation already proved one exists."""
        candidates = [r for r in runtimes
                      if r.role in ("decode", "both")
                      and r.can_ever_serve(state.request)]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.load, r.instance_id))


class RoundRobinRouter(Router):
    """Fair rotation: the instance that has admitted the fewest requests so
    far pulls first (cumulative admissions; ties by instance id)."""

    name = "round_robin"

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        return (runtime.admission_count,)


class LeastLoadedRouter(Router):
    """The instance responsible for the fewest requests right now (running
    batch plus parked swap-priority victims) pulls first."""

    name = "least_loaded"

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        return (runtime.load,)


class KVAwareRouter(Router):
    """The instance with the freest KV capacity pulls first; an instance
    holding the queue head's swapped-out blocks always outranks the rest
    (swap affinity — nobody else could resume that request anyway)."""

    name = "kv_aware"

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        affinity = 0 if (head is not None
                         and runtime.holds_swapped(head)) else 1
        return (affinity, -runtime.kv_free_fraction)


class PrefixAwareRouter(Router):
    """Cache-status-aware routing: the instance holding the longest
    registered prefix of the queue head's prompt pulls first, so multi-turn
    follow-ups land where their KV blocks already live (rtp-llm's flexlb
    policy).  Swap affinity still outranks everything — only the holder can
    resume a swapped request — and ties fall back to least-loaded."""

    name = "prefix_aware"

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        affinity = 0 if (head is not None
                         and runtime.holds_swapped(head)) else 1
        matched = (runtime.matched_prefix_tokens(head.request)
                   if head is not None else 0)
        return (affinity, -matched, runtime.load)


class ClassAffinityRouter(Router):
    """SJF-style size matching: short prompts to small instances, long
    prompts to big ones.

    At :meth:`prepare` time the router sorts the trace by prompt length and
    cuts it at the largest *relative* jumps between consecutive lengths
    (K-1 cuts for K classes): on multi-tenant traffic those jumps are the
    boundaries between traffic modes, so a handful of long bulk prompts
    lands in the big class and the interactive mass in the small one.  A
    cut may not strand a class: every boundary must leave the classes
    below it at least half their node-share of requests, so a freak jump
    near the bottom of a unimodal distribution cannot assign the whole
    trace to the big class (when no jump qualifies, the boundary falls
    back to the node-share quantile itself).  Using the trace is the same
    oracle standing the SJF scheduler uses for job sizes (a stand-in for a
    prompt-length predictor, which production routers have for free: the
    prompt is in hand before routing).

    Placement is asymmetric:

    * **downward is forbidden** — a request preferring a big class is never
      placed on a smaller instance.  One long prompt's exclusive prefill
      would stall every short request resident there, which is exactly the
      tail this router exists to remove;
    * **upward is free** — a short request may land on a bigger instance.
      The :meth:`rank` order dispatches small classes first and idle
      instances take part in every dispatch round, so shorts only reach
      the big class when no small instance is at a boundary with room —
      spilling there is then strictly better than waiting.

    The net effect on a mixed workload: the small classes serve a
    long-prompt-free diet (their short requests never stall behind a bulk
    prefill), while the big class's fast prefill absorbs the bulk prompts
    plus whatever interactive overflow the smalls cannot take.  Two safety
    valves keep placement live: a request whose preferred class cannot
    hold it (KV capacity) is bumped to the smallest class that can, and a
    swapped-out request always routes to the instance holding its blocks
    regardless of class.
    """

    name = "class_affinity"

    def __init__(self) -> None:
        #: request_id -> preferred class key (num_nodes).
        self._preferred: Dict[int, int] = {}

    def prepare(self, runtimes: Sequence["InstanceRuntime"],
                trace: Iterable["Request"]) -> None:
        # size preferences steer *fresh* requests, and on a role-tagged
        # cluster only prefill-capable instances may take those — sizing
        # the cuts by decode-only classes would prefer classes whose role
        # gate then refuses every fresh request, stalling the queue head
        # forever (handed-off requests bypass the size rule via their
        # swapped_on pin, so decode classes need no preference here)
        placeable = [r for r in runtimes if r.role in ("prefill", "both")]
        by_class: Dict[int, List["InstanceRuntime"]] = {}
        for runtime in placeable:
            by_class.setdefault(runtime.num_nodes, []).append(runtime)
        class_nodes = sorted(by_class)
        ordered = sorted(trace, key=lambda r: (r.prefill_len, r.request_id))
        # cut the sorted prompt lengths at the largest relative jumps (mode
        # boundaries on multi-tenant traffic); relative rather than
        # absolute so the cuts are scale-free.  A zero-length prompt below
        # a positive one is an infinite relative jump — the strongest
        # possible mode boundary — not a division-by-zero crash, and a
        # single-request or all-equal-length trace simply has no jumps
        # (every boundary falls back to its node-share quantile).
        lengths = [r.prefill_len for r in ordered]
        jumps = [(lengths[i] / lengths[i - 1] if lengths[i - 1] > 0
                  else float("inf"), i)
                 for i in range(1, len(ordered))
                 if lengths[i] > lengths[i - 1]]
        jumps.sort(key=lambda jump: (-jump[0], jump[1]))
        total_nodes = sum(nodes * len(by_class[nodes])
                          for nodes in class_nodes)
        cuts: List[int] = []
        share = 0
        for nodes in class_nodes[:-1]:
            share += nodes * len(by_class[nodes])
            # the classes below this boundary must keep at least half
            # their node-share of requests — a freak jump near the bottom
            # of a unimodal distribution must not strand the small classes
            floor = len(ordered) * share / (2 * total_nodes)
            previous = cuts[-1] if cuts else 0
            cut = next((i for _, i in jumps if i > previous and i >= floor),
                       None)
            if cut is None:  # no qualifying jump: node-share quantile
                cut = max(previous + 1,
                          round(len(ordered) * share / total_nodes))
            cuts.append(cut)
        self._preferred = {}
        class_index = 0
        for position, request in enumerate(ordered):
            while class_index < len(cuts) and position >= cuts[class_index]:
                class_index += 1
            nodes = class_nodes[min(class_index, len(class_nodes) - 1)]
            # feasibility bump: some instance of the preferred node class
            # must be able to serve the request alone; otherwise prefer
            # the smallest node class that can (searching both directions
            # — a big class may carry the smaller KV budget), so a request
            # validation accepted is never vetoed everywhere
            if not any(rt.can_ever_serve(request) for rt in by_class[nodes]):
                nodes = next(
                    (candidate for candidate in class_nodes
                     if any(rt.can_ever_serve(request)
                            for rt in by_class[candidate])),
                    nodes)
            self._preferred[request.request_id] = nodes

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        # small classes first: they pick up their short requests before a
        # big instance (dispatched later) sweeps the queue
        return (runtime.num_nodes,)

    def placement_ok(self, runtime: "InstanceRuntime",
                     state: "RequestState") -> bool:
        if state.swapped_on is not None:
            return state.swapped_on == runtime.instance_id
        preferred = self._preferred.get(state.request.request_id)
        if preferred is None:  # unseen request (not in the prepared trace)
            return True
        if runtime.role == "decode":
            # the size preference only ranks prefill-capable classes (see
            # prepare); a decode instance's own role gate decides what it
            # may take, and vetoing here on size would compare against a
            # scale it was never part of
            return True
        # never downward (a long prompt would stall a smaller instance);
        # upward spill is free — rank order already biases shorts to the
        # small classes whenever one is at a boundary
        return runtime.num_nodes >= preferred


class DisaggregatedRouter(Router):
    """Role matching for prefill/decode-tagged clusters.

    Fresh requests (prompt not yet computed) route to prefill-capable
    instances; a handed-off request routes to the decode instance whose
    host tier holds its KV (nobody else could resume it).  Within a role
    the least-loaded instance pulls first, so decode load spreads evenly
    across the small instances while the prefill class drains the prompt
    queue.  On a role-less cluster every instance is role-``both``, the
    role test never discriminates, and the router degenerates to
    least-loaded ordering.

    The role *constraints* themselves (a decode instance never runs a
    prefill, a prefill instance never decodes) are enforced by the
    instance runtimes, not here — they hold under every router; this
    router adds the ordering that makes a disaggregated cluster perform.
    """

    name = "disaggregated"

    @staticmethod
    def _role_matches(runtime: "InstanceRuntime",
                      head: "RequestState") -> bool:
        if head.swapped_on is not None:
            return head.swapped_on == runtime.instance_id
        if head.prefill_remaining > 0:
            return runtime.role in ("prefill", "both")
        return runtime.role in ("decode", "both")

    def rank(self, runtime: "InstanceRuntime",
             head: Optional["RequestState"]) -> RankKey:
        match = 0 if (head is not None
                      and self._role_matches(runtime, head)) else 1
        return (match, runtime.load)

    def placement_ok(self, runtime: "InstanceRuntime",
                     state: "RequestState") -> bool:
        return self._role_matches(runtime, state)


def make_router(router: Union[str, Router]) -> Router:
    """Instantiate a router by name (or pass a :class:`Router` through)."""
    if isinstance(router, Router):
        return router
    routers = {
        "round_robin": RoundRobinRouter,
        "least_loaded": LeastLoadedRouter,
        "kv_aware": KVAwareRouter,
        "class_affinity": ClassAffinityRouter,
        "disaggregated": DisaggregatedRouter,
        "prefix_aware": PrefixAwareRouter,
    }
    if router not in routers:
        raise ValueError(f"unknown router {router!r}; "
                         f"known: {', '.join(sorted(routers))}")
    return routers[router]()
