"""Parallel configuration sweeps over the serving simulator.

Every multi-config surface in the repo — the ``--compare-*`` CLI paths,
the benchmark grids, the capacity-planning studies — boils down to the
same shape: *run the same trace through N engine configurations and
compare the metrics*.  The configurations are independent, so the
sweep is embarrassingly parallel; this module is the one place that
knows how to fan it out safely.

The pieces:

* :func:`expand_sweep` turns a declarative spec — a trace, a base
  config, and either a cartesian ``grid`` of axes or an explicit
  ``configs`` list — into a deterministic list of :class:`SweepJob`\\ s.
* :func:`run_jobs` executes jobs serially (``workers<=1``) or over a
  ``ProcessPoolExecutor``.  Both paths run the *identical* job function
  in deterministic job order, so parallel results are bit-identical to
  serial — pinned by test.
* Each worker ships back a :class:`JobResult` holding the picklable
  ``metrics.summary()`` dict (and optionally the full
  :class:`~repro.serving.metrics.ServingMetrics`); a config that raises
  mid-run comes back as a structured :class:`JobFailure` entry instead
  of killing its siblings.

Determinism contract: all randomness lives in trace construction, and
every job carries its trace seed explicitly (:attr:`SweepJob.seed`), so
a worker process never depends on inherited RNG state — the property
lint rule R007 exists to keep it that way.
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.serving.metrics import ServingMetrics, merge_streaming_metrics
from repro.workloads.traces import RequestTrace
from repro.units import Seconds

#: Named trace generators a :class:`TraceSpec` can reference.  Specs
#: carry (name, kwargs) instead of a materialized trace so each worker
#: rebuilds its trace locally — cheaper than pickling 100k requests
#: across the process boundary, and the seed travels in the open.
TRACE_GENERATORS = {
    "synthetic": "synthetic_trace",
    "bursty": "bursty_trace",
    "azure": "synthetic_azure_trace",
    "multi_turn": "multi_turn_trace",
    "multi_tenant": "multi_tenant_trace",
    "bursty_multi_tenant": "bursty_multi_tenant_trace",
}


@dataclass(frozen=True)
class TraceSpec:
    """A trace by recipe: generator name plus keyword arguments."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in TRACE_GENERATORS:
            raise ValueError(
                f"unknown trace generator {self.name!r}; known: "
                f"{', '.join(sorted(TRACE_GENERATORS))}")

    @property
    def seed(self) -> int:
        return int(self.params.get("seed", 0))

    def with_seed(self, seed: int) -> "TraceSpec":
        params = dict(self.params)
        params["seed"] = seed
        return TraceSpec(self.name, params)

    def build(self) -> RequestTrace:
        from repro.workloads import traces as trace_module
        generator = getattr(trace_module, TRACE_GENERATORS[self.name])
        trace = generator(**dict(self.params))
        if not isinstance(trace, RequestTrace):
            trace = RequestTrace(requests=list(trace))
        return trace


@dataclass(frozen=True)
class SweepJob:
    """One expanded configuration: a trace recipe plus run_policy kwargs.

    ``seed`` is the explicit per-job seed handoff (the trace seed for
    recipe jobs, 0 for jobs over a pre-built trace, whose arrivals are
    data, not randomness) — workers must not rely on inherited RNG
    state.
    """

    index: int
    label: str
    trace: Union[TraceSpec, RequestTrace]
    params: Mapping[str, Any]
    seed: int = 0


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a config that raised mid-run."""

    error_type: str
    message: str
    traceback: str


@dataclass(frozen=True)
class JobResult:
    """Outcome of one sweep job, shipped back picklable from a worker."""

    index: int
    label: str
    params: Mapping[str, Any]
    seed: int
    summary: Optional[Dict[str, float]] = None
    metrics: Optional[ServingMetrics] = None
    failure: Optional[JobFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def summary_key(self) -> str:
        """Canonical byte string of the summary (bit-identity compares)."""
        return json.dumps(self.summary, sort_keys=True)


@dataclass(frozen=True)
class SweepOutcome:
    """All job results (input order) plus sweep-level accounting."""

    results: List[JobResult]
    workers: int
    wall_s: Seconds

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def raise_failures(self) -> None:
        """Re-raise the first failure (comparison helpers want the old
        fail-fast behavior, not a partial table)."""
        for result in self.results:
            if result.failure is not None:
                raise RuntimeError(
                    f"sweep config {result.label!r} failed with "
                    f"{result.failure.error_type}: "
                    f"{result.failure.message}\n{result.failure.traceback}")

    def merged_metrics(self) -> ServingMetrics:
        """Merge successful shard results (streaming mode, same config,
        run with ``keep_metrics=True``) into one aggregate."""
        parts = [r.metrics for r in self.results if r.metrics is not None]
        if len(parts) != len(self.results):
            raise ValueError(
                "merged_metrics needs every job to have succeeded with "
                "keep_metrics=True")
        return merge_streaming_metrics(parts)


def _coerce_trace(trace: Any) -> Union[TraceSpec, RequestTrace]:
    if isinstance(trace, (TraceSpec, RequestTrace)):
        return trace
    if isinstance(trace, Mapping):
        if "name" not in trace:
            raise ValueError(
                "sweep trace mapping needs a 'name' key naming the "
                f"generator (one of: {', '.join(sorted(TRACE_GENERATORS))})")
        params = {k: v for k, v in trace.items() if k != "name"}
        return TraceSpec(str(trace["name"]), params)
    raise TypeError(
        "sweep trace must be a TraceSpec, a RequestTrace, or a mapping "
        "with a 'name' key")


def expand_sweep(spec: Mapping[str, Any]) -> List[SweepJob]:
    """Expand a declarative sweep spec into a deterministic job list.

    Spec keys:

    * ``trace`` (required): a :class:`TraceSpec`, a mapping like
      ``{"name": "azure", "num_requests": 100_000, "seed": 0}``, or a
      pre-built :class:`~repro.workloads.traces.RequestTrace`.
    * ``base`` (optional): keyword arguments applied to every config
      (anything :func:`repro.analysis.serving.run_policy` accepts).
    * ``grid`` (exclusive with ``configs``): mapping of axis name to a
      list of values; the cartesian product is taken in definition
      order, last axis fastest.  The special axis ``trace_seed`` sweeps
      the trace generator's seed instead of an engine knob.
    * ``configs`` (exclusive with ``grid``): explicit list of config
      mappings, each optionally carrying a ``label``.

    Unknown top-level keys raise; so does an empty expansion.
    """
    known = {"trace", "base", "grid", "configs"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ValueError(f"unknown sweep spec keys: {', '.join(unknown)}")
    if "trace" not in spec:
        raise ValueError("sweep spec needs a 'trace'")
    trace = _coerce_trace(spec["trace"])
    base: Dict[str, Any] = dict(spec.get("base", {}))
    grid = spec.get("grid")
    configs = spec.get("configs")
    if (grid is None) == (configs is None):
        raise ValueError("sweep spec needs exactly one of 'grid' or "
                         "'configs'")

    expanded: List[Tuple[str, Dict[str, Any]]] = []
    if grid is not None:
        if not isinstance(grid, Mapping) or not grid:
            raise ValueError("'grid' must be a non-empty mapping of "
                             "axis name to a list of values")
        axes: List[Tuple[str, List[Any]]] = []
        for name, values in grid.items():
            values = list(values)
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
            axes.append((str(name), values))
        combos: List[Dict[str, Any]] = [{}]
        for name, values in axes:
            combos = [dict(combo, **{name: value})
                      for combo in combos for value in values]
        for combo in combos:
            label = ",".join(f"{k}={combo[k]}" for k, _ in axes)
            expanded.append((label, combo))
    else:
        if not isinstance(configs, Sequence) or not configs:
            raise ValueError("'configs' must be a non-empty list of "
                             "config mappings")
        for i, config in enumerate(configs):
            config = dict(config)
            label = str(config.pop("label", f"config[{i}]"))
            expanded.append((label, config))

    jobs: List[SweepJob] = []
    for index, (label, overrides) in enumerate(expanded):
        params = dict(base)
        params.update(overrides)
        job_trace = trace
        trace_seed = params.pop("trace_seed", None)
        if trace_seed is not None:
            if not isinstance(job_trace, TraceSpec):
                raise ValueError(
                    "the 'trace_seed' axis needs a trace recipe (a "
                    "TraceSpec / mapping), not a pre-built trace")
            job_trace = job_trace.with_seed(int(trace_seed))
        seed = job_trace.seed if isinstance(job_trace, TraceSpec) else 0
        jobs.append(SweepJob(index=index, label=label, trace=job_trace,
                             params=params, seed=seed))
    return jobs


def _execute_job(packed: Tuple[SweepJob, bool]) -> JobResult:
    """Run one job; never raises — failures come back structured.

    Runs identically in-process (serial path) and in a pool worker: the
    bit-identical-to-serial guarantee is this function being the single
    execution path.
    """
    job, keep_metrics = packed
    try:
        from repro.analysis.serving import run_policy
        trace = (job.trace.build() if isinstance(job.trace, TraceSpec)
                 else job.trace)
        metrics, _records = run_policy(trace, **dict(job.params))
        return JobResult(
            index=job.index, label=job.label, params=job.params,
            seed=job.seed, summary=metrics.summary(),
            metrics=metrics if keep_metrics else None)
    except Exception as exc:
        return JobResult(
            index=job.index, label=job.label, params=job.params,
            seed=job.seed,
            failure=JobFailure(error_type=type(exc).__name__,
                               message=str(exc),
                               traceback=traceback.format_exc()))


def run_jobs(jobs: Iterable[SweepJob], workers: int = 1,
             keep_metrics: bool = False) -> SweepOutcome:
    """Execute jobs, serially or over a process pool.

    ``workers <= 1`` runs in-process; anything larger fans out over a
    ``ProcessPoolExecutor`` (capped at the job count).  Results come
    back in job order either way, and per-config outputs are
    bit-identical between the two paths.  A failing config yields a
    structured failure entry; sibling jobs always complete.
    """
    job_list = list(jobs)
    if not job_list:
        raise ValueError("no jobs to run")
    packed = [(job, keep_metrics) for job in job_list]
    start = time.perf_counter()  # repro-lint: disable=R002 — host wall time of the sweep itself, never a simulated timestamp
    if workers <= 1 or len(job_list) == 1:
        results = [_execute_job(item) for item in packed]
        effective = 1
    else:
        effective = min(workers, len(job_list))
        # every job carries its seed explicitly (SweepJob.seed), so no
        # per-worker initializer seeding is needed
        with ProcessPoolExecutor(max_workers=effective) as pool:  # repro-lint: disable=R007
            results = list(pool.map(_execute_job, packed))
    wall_s = time.perf_counter() - start  # repro-lint: disable=R002 — host wall time of the sweep itself, never a simulated timestamp
    return SweepOutcome(results=results, workers=effective, wall_s=wall_s)


def run_sweep(spec: Mapping[str, Any], workers: int = 1,
              keep_metrics: bool = False) -> SweepOutcome:
    """Expand ``spec`` (see :func:`expand_sweep`) and run it."""
    return run_jobs(expand_sweep(spec), workers=workers,
                    keep_metrics=keep_metrics)
