"""Typed error hierarchy for runtime invariant violations.

Library code must not guard real invariants with bare ``assert`` — those
checks vanish under ``python -O`` and the repro-lint rule R005 rejects
them.  This module gives the replacement ``raise`` statements a common
root so callers (and the test suite) can catch "the simulator detected an
internal inconsistency" as one category, distinct from bad user input
(``ValueError``) or environmental failures.

The hierarchy is deliberately shallow:

``ReproError``
    Root of everything this package raises for *internal* defects.

``InvariantError``
    A structural invariant did not hold (block accounting, process
    results, conservation counts).  Raised by library code at the point
    of detection.

``SanitizerError``
    Raised only by the opt-in shadow validator in :mod:`repro.sanitize`,
    with the offending engine event attached — see ``docs/development.md``.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["ReproError", "InvariantError", "SanitizerError"]


class ReproError(RuntimeError):
    """Root for internal-defect errors raised by :mod:`repro`."""


class InvariantError(ReproError):
    """A structural runtime invariant did not hold."""


class SanitizerError(InvariantError):
    """An invariant broke during shadow validation of an engine run.

    Attributes
    ----------
    event:
        The ``(time_s, seq, kind, payload)`` engine event (or a
        human-readable stand-in such as ``("arrival", request_id)``)
        after which the violation was detected; ``None`` when the
        violation was found outside event handling.
    check:
        Short machine-readable name of the failed check, e.g.
        ``"event-time-monotonic"`` or ``"kv-block-conservation"``.
    """

    def __init__(self, message: str, *, check: str,
                 event: Optional[Any] = None) -> None:
        detail = f"[{check}] {message}"
        if event is not None:
            detail += f" (offending event: {event!r})"
        super().__init__(detail)
        self.check = check
        self.event = event
