"""A from-scratch NumPy GPT-2 with KV cache and optional W8A8 execution.

The model keeps the exact GPT-2 block structure (pre-LayerNorm, causal
multi-head attention, GELU MLP, learned positional embeddings, weight-tied LM
head) but uses **synthetic seeded weights**: the paper's latency and energy
results do not depend on the weight values, and the functional tests only
need structural equivalence between this reference and the accelerator's
datapath.

Two execution modes:

* ``forward`` — float64 reference;
* ``forward_quantized`` — W8A8 execution of every linear layer with
  SmoothQuant smoothing, int8 GEMM with int32/int64 accumulation and
  requantization.  This is the path the accelerator's functional model is
  compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.kv_cache import KVCache
from repro.model.config import ModelConfig, layer_linear_specs
from repro.model.layers import causal_attention, gelu, layer_norm, softmax, split_heads
from repro.quant.gemm import int8_gemm
from repro.quant.int8 import quantize_per_channel, quantize_per_tensor
from repro.quant.smoothquant import SmoothQuantCalibration


@dataclass
class BlockWeights:
    """Weights of one transformer block."""

    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    qkv_weight: np.ndarray      # [3*d_model, d_model]
    qkv_bias: np.ndarray
    attn_proj_weight: np.ndarray  # [d_model, d_model]
    attn_proj_bias: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    mlp_fc_weight: np.ndarray   # [d_ff, d_model]
    mlp_fc_bias: np.ndarray
    mlp_proj_weight: np.ndarray  # [d_model, d_ff]
    mlp_proj_bias: np.ndarray

    def linear_weights(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Map from linear-layer name to (weight, bias)."""
        return {
            "qkv": (self.qkv_weight, self.qkv_bias),
            "attn_proj": (self.attn_proj_weight, self.attn_proj_bias),
            "mlp_fc": (self.mlp_fc_weight, self.mlp_fc_bias),
            "mlp_proj": (self.mlp_proj_weight, self.mlp_proj_bias),
        }


@dataclass
class GPT2Weights:
    """Full parameter set with synthetic, seeded initialization."""

    config: ModelConfig
    token_embedding: np.ndarray   # [vocab, d_model]
    position_embedding: np.ndarray  # [max_seq, d_model]
    blocks: List[BlockWeights]
    final_ln_gamma: np.ndarray
    final_ln_beta: np.ndarray

    @staticmethod
    def random(config: ModelConfig, seed: int = 0, scale: float = 0.02) -> "GPT2Weights":
        """GPT-2-style initialization (normal, std=0.02) from a fixed seed."""
        rng = np.random.default_rng(seed)

        def normal(*shape: int) -> np.ndarray:
            return rng.normal(0.0, scale, size=shape)

        blocks: List[BlockWeights] = []
        for _ in range(config.num_layers):
            blocks.append(BlockWeights(
                ln1_gamma=np.ones(config.d_model),
                ln1_beta=np.zeros(config.d_model),
                qkv_weight=normal(config.qkv_out_features, config.d_model),
                qkv_bias=np.zeros(config.qkv_out_features),
                attn_proj_weight=normal(config.d_model, config.d_model),
                attn_proj_bias=np.zeros(config.d_model),
                ln2_gamma=np.ones(config.d_model),
                ln2_beta=np.zeros(config.d_model),
                mlp_fc_weight=normal(config.d_ff, config.d_model),
                mlp_fc_bias=np.zeros(config.d_ff),
                mlp_proj_weight=normal(config.d_model, config.d_ff),
                mlp_proj_bias=np.zeros(config.d_model),
            ))
        return GPT2Weights(
            config=config,
            token_embedding=normal(config.vocab_size, config.d_model),
            position_embedding=normal(config.max_seq_len, config.d_model),
            blocks=blocks,
            final_ln_gamma=np.ones(config.d_model),
            final_ln_beta=np.zeros(config.d_model),
        )

    def parameter_count(self) -> int:
        total = self.token_embedding.size + self.position_embedding.size
        total += self.final_ln_gamma.size + self.final_ln_beta.size
        for block in self.blocks:
            for array in (block.ln1_gamma, block.ln1_beta, block.qkv_weight,
                          block.qkv_bias, block.attn_proj_weight, block.attn_proj_bias,
                          block.ln2_gamma, block.ln2_beta, block.mlp_fc_weight,
                          block.mlp_fc_bias, block.mlp_proj_weight, block.mlp_proj_bias):
                total += array.size
        return int(total)


class GPT2Model:
    """Functional GPT-2 with an external KV cache.

    Parameters
    ----------
    config:
        Model configuration.
    weights:
        Parameter set; when omitted, seeded random weights are created.
    seed:
        Seed for synthetic weights.
    """

    def __init__(self, config: ModelConfig, weights: Optional[GPT2Weights] = None,
                 seed: int = 0) -> None:
        self.config = config
        self.weights = weights or GPT2Weights.random(config, seed=seed)
        if self.weights.config != config:
            raise ValueError("weights were built for a different configuration")
        self._quantized_layers: Optional[Dict[Tuple[int, str], Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # embedding / head
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray, position_offset: int = 0) -> np.ndarray:
        """Token + position embeddings: ``[seq] -> [seq, d_model]``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError("token_ids must be 1-D")
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        positions = np.arange(position_offset, position_offset + token_ids.size)
        if positions.size and positions[-1] >= self.config.max_seq_len:
            raise ValueError("sequence exceeds max_seq_len")
        return (self.weights.token_embedding[token_ids]
                + self.weights.position_embedding[positions])

    def lm_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Weight-tied LM head: ``[seq, d_model] -> [seq, vocab]``."""
        hidden = layer_norm(hidden, self.weights.final_ln_gamma,
                            self.weights.final_ln_beta, self.config.layer_norm_eps)
        return hidden @ self.weights.token_embedding.T

    # ------------------------------------------------------------------
    # float reference forward
    # ------------------------------------------------------------------
    def _block_forward(self, layer: int, hidden: np.ndarray, cache: Optional[KVCache],
                       position_offset: int) -> np.ndarray:
        config = self.config
        block = self.weights.blocks[layer]
        seq = hidden.shape[0]

        normed = layer_norm(hidden, block.ln1_gamma, block.ln1_beta, config.layer_norm_eps)
        qkv = normed @ block.qkv_weight.T + block.qkv_bias
        query, key, value = np.split(qkv, 3, axis=-1)

        if cache is not None:
            key_heads = split_heads(key, config.num_heads)      # [H, seq, hd]
            value_heads = split_heads(value, config.num_heads)
            cache.append_block(layer, key_heads, value_heads, start=position_offset)
            cached_k = cache._keys[layer, :, : position_offset + seq, :]
            cached_v = cache._values[layer, :, : position_offset + seq, :]
            keys_full = cached_k.transpose(1, 0, 2).reshape(position_offset + seq, config.d_model)
            values_full = cached_v.transpose(1, 0, 2).reshape(position_offset + seq, config.d_model)
        else:
            keys_full, values_full = key, value

        attn = causal_attention(query, keys_full, values_full, config.num_heads)
        attn = attn @ block.attn_proj_weight.T + block.attn_proj_bias
        hidden = hidden + attn

        normed = layer_norm(hidden, block.ln2_gamma, block.ln2_beta, config.layer_norm_eps)
        mlp = gelu(normed @ block.mlp_fc_weight.T + block.mlp_fc_bias)
        mlp = mlp @ block.mlp_proj_weight.T + block.mlp_proj_bias
        return hidden + mlp

    def forward(self, token_ids: np.ndarray, cache: Optional[KVCache] = None,
                position_offset: int = 0) -> np.ndarray:
        """Run ``token_ids`` through the stack.  Returns logits ``[seq, vocab]``.

        With a cache, previously cached positions are attended to and the new
        K/V are appended (the caller advances the cache length afterwards via
        ``cache.advance(len(token_ids))``).
        """
        hidden = self.embed(token_ids, position_offset)
        for layer in range(self.config.num_layers):
            hidden = self._block_forward(layer, hidden, cache, position_offset)
        return self.lm_logits(hidden)

    def new_cache(self, dtype=np.float64) -> KVCache:
        return KVCache(self.config.num_layers, self.config.num_heads,
                       self.config.head_dim, self.config.max_seq_len, dtype=dtype)

    # ------------------------------------------------------------------
    # W8A8 quantized forward
    # ------------------------------------------------------------------
    def calibrate_quantization(self, sample_token_ids: Optional[np.ndarray] = None,
                               alpha: float = 0.5) -> SmoothQuantCalibration:
        """Run a short float forward pass to collect SmoothQuant calibration
        statistics for every linear layer, then freeze per-layer int8 weights.
        """
        config = self.config
        if sample_token_ids is None:
            rng = np.random.default_rng(1234)
            sample_token_ids = rng.integers(
                0, config.vocab_size, size=min(16, config.max_seq_len))
        sample_token_ids = np.asarray(sample_token_ids, dtype=np.int64)
        calibration = SmoothQuantCalibration(alpha=alpha)

        hidden = self.embed(sample_token_ids, 0)
        for layer in range(config.num_layers):
            block = self.weights.blocks[layer]
            normed = layer_norm(hidden, block.ln1_gamma, block.ln1_beta,
                                config.layer_norm_eps)
            calibration.observe(f"block{layer}.qkv", normed)
            qkv = normed @ block.qkv_weight.T + block.qkv_bias
            query, key, value = np.split(qkv, 3, axis=-1)
            attn = causal_attention(query, key, value, config.num_heads)
            calibration.observe(f"block{layer}.attn_proj", attn)
            attn = attn @ block.attn_proj_weight.T + block.attn_proj_bias
            hidden = hidden + attn
            normed = layer_norm(hidden, block.ln2_gamma, block.ln2_beta,
                                config.layer_norm_eps)
            calibration.observe(f"block{layer}.mlp_fc", normed)
            mlp_hidden = gelu(normed @ block.mlp_fc_weight.T + block.mlp_fc_bias)
            calibration.observe(f"block{layer}.mlp_proj", mlp_hidden)
            mlp = mlp_hidden @ block.mlp_proj_weight.T + block.mlp_proj_bias
            hidden = hidden + mlp

        self._freeze_quantized_layers(calibration)
        return calibration

    def _freeze_quantized_layers(self, calibration: SmoothQuantCalibration) -> None:
        quantized: Dict[Tuple[int, str], Dict[str, object]] = {}
        for layer in range(self.config.num_layers):
            block = self.weights.blocks[layer]
            for name, (weight, bias) in block.linear_weights().items():
                key = f"block{layer}.{name}"
                q_weight, act_scale, factors = calibration.quantize_layer(key, weight)
                quantized[(layer, name)] = {
                    "weight_q": q_weight,
                    "bias": bias,
                    "activation_scale": act_scale,
                    "smoothing": factors,
                }
        self._quantized_layers = quantized

    @property
    def is_calibrated(self) -> bool:
        return self._quantized_layers is not None

    def quantized_linear(self, layer: int, name: str, activations: np.ndarray) -> np.ndarray:
        """Execute one linear layer through the W8A8 path and return floats.

        This is the reference the accelerator's functional MP-kernel datapath
        is checked against: smooth the activations, quantize per-tensor,
        int8 GEMM with wide accumulation, dequantize with per-channel weight
        scales, add bias.
        """
        if self._quantized_layers is None:
            raise RuntimeError("call calibrate_quantization() first")
        entry = self._quantized_layers[(layer, name)]
        weight_q = entry["weight_q"]
        activations = np.asarray(activations, dtype=np.float64)
        single = activations.ndim == 1
        if single:
            activations = activations[None, :]
        smoothed = activations / entry["smoothing"][None, :]
        act_scale = float(entry["activation_scale"])
        act_q = quantize_per_tensor(smoothed, scale=act_scale)
        accumulator = int8_gemm(act_q.data, weight_q.data.T)
        result = (accumulator.astype(np.float64) * act_scale
                  * weight_q.scale[None, :]) + entry["bias"][None, :]
        return result[0] if single else result

    def forward_quantized(self, token_ids: np.ndarray, cache: Optional[KVCache] = None,
                          position_offset: int = 0) -> np.ndarray:
        """W8A8 forward pass (linear layers quantized, attention/LN in float).

        The structure matches the accelerator: linear layers run on the int8
        MAC path, layer norm / softmax / residual stay in higher precision.
        """
        if self._quantized_layers is None:
            raise RuntimeError("call calibrate_quantization() first")
        config = self.config
        hidden = self.embed(token_ids, position_offset)
        seq = hidden.shape[0]
        for layer in range(config.num_layers):
            block = self.weights.blocks[layer]
            normed = layer_norm(hidden, block.ln1_gamma, block.ln1_beta,
                                config.layer_norm_eps)
            qkv = self.quantized_linear(layer, "qkv", normed)
            query, key, value = np.split(qkv, 3, axis=-1)
            if cache is not None:
                key_heads = split_heads(key, config.num_heads)
                value_heads = split_heads(value, config.num_heads)
                cache.append_block(layer, key_heads, value_heads, start=position_offset)
                cached_k = cache._keys[layer, :, : position_offset + seq, :]
                cached_v = cache._values[layer, :, : position_offset + seq, :]
                keys_full = cached_k.transpose(1, 0, 2).reshape(
                    position_offset + seq, config.d_model)
                values_full = cached_v.transpose(1, 0, 2).reshape(
                    position_offset + seq, config.d_model)
            else:
                keys_full, values_full = key, value
            attn = causal_attention(query, keys_full, values_full, config.num_heads)
            attn = self.quantized_linear(layer, "attn_proj", attn)
            hidden = hidden + attn

            normed = layer_norm(hidden, block.ln2_gamma, block.ln2_beta,
                                config.layer_norm_eps)
            mlp_hidden = gelu(self.quantized_linear(layer, "mlp_fc", normed))
            mlp = self.quantized_linear(layer, "mlp_proj", mlp_hidden)
            hidden = hidden + mlp
        return self.lm_logits(hidden)
