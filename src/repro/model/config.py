"""Model configuration and per-layer operation inventory.

:class:`ModelConfig` describes a GPT-2-style decoder-only transformer.  The
presets include the GPT-2 345M ("medium") configuration the paper evaluates
and two small configurations used by the functional tests (they keep the
numerics cheap while exercising identical code paths).

The linear-layer inventory (:func:`layer_linear_specs`) is what the
performance models consume: every linear layer's dimensions, and therefore
its int8 weight bytes and MAC count, per transformer block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class LinearLayerSpec:
    """One linear layer inside a transformer block.

    Attributes
    ----------
    name:
        Layer identifier (``qkv``, ``attn_proj``, ``mlp_fc``, ``mlp_proj``).
    in_features, out_features:
        Matrix dimensions (weight is ``[out_features, in_features]``).
    parallel_axis:
        How the layer is split under the paper's model-parallel scheme:
        weights are distributed along the **output** dimension, so every
        layer here uses ``"output"``; kept as a field so alternative schemes
        can be explored in the design-space examples.
    """

    name: str
    in_features: int
    out_features: int
    parallel_axis: str = "output"

    @property
    def weight_elements(self) -> int:
        return self.in_features * self.out_features

    def weight_bytes(self, bytes_per_weight: int = 1) -> int:
        """Weight storage (int8 by default, matching W8A8)."""
        return self.weight_elements * bytes_per_weight

    def macs_per_token(self) -> int:
        """Multiply-accumulate operations for one token through this layer."""
        return self.weight_elements

    def out_features_per_node(self, num_nodes: int) -> int:
        """Output features computed by one node when split across ``num_nodes``."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return -(-self.out_features // num_nodes)


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer configuration.

    The default values are irrelevant — use the presets.
    """

    name: str = "gpt2-medium"
    num_layers: int = 24
    d_model: int = 1024
    num_heads: int = 16
    d_ff: int = 4096
    vocab_size: int = 50257
    max_seq_len: int = 1024
    layer_norm_eps: float = 1e-5

    def __post_init__(self) -> None:
        if min(self.num_layers, self.d_model, self.num_heads, self.d_ff,
               self.vocab_size, self.max_seq_len) <= 0:
            raise ValueError("all model dimensions must be positive")
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} is not divisible by num_heads={self.num_heads}")

    # ------------------------------------------------------------------
    # derived dimensions
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.d_model // self.num_heads

    @property
    def qkv_out_features(self) -> int:
        return 3 * self.d_model

    # ------------------------------------------------------------------
    # parameter / operation accounting
    # ------------------------------------------------------------------
    def linear_weight_elements_per_layer(self) -> int:
        """Weight elements of the four linear layers in one block."""
        return sum(spec.weight_elements for spec in layer_linear_specs(self))

    def linear_weight_bytes_per_layer(self, bytes_per_weight: int = 1) -> int:
        return self.linear_weight_elements_per_layer() * bytes_per_weight

    def linear_weight_bytes_total(self, bytes_per_weight: int = 1) -> int:
        """Linear-layer weight bytes across all blocks (what a decode step
        streams from HBM)."""
        return self.num_layers * self.linear_weight_bytes_per_layer(bytes_per_weight)

    def linear_macs_per_token(self) -> int:
        """MACs per generated token spent in linear layers (all blocks)."""
        return self.num_layers * self.linear_weight_elements_per_layer()

    def attention_macs_per_token(self, seq_len: int) -> int:
        """MACs per generated token spent in attention score + token mixing
        over a cached sequence of ``seq_len`` positions (all blocks)."""
        if seq_len < 0:
            raise ValueError("negative sequence length")
        per_layer = 2 * seq_len * self.d_model  # QK^T and attn @ V
        return self.num_layers * per_layer

    def kv_bytes_per_token(self, bytes_per_element: int = 1) -> int:
        """KV-cache bytes appended per generated token (all blocks)."""
        return self.num_layers * 2 * self.d_model * bytes_per_element

    def kv_read_bytes_per_decode_step(self, seq_len: int,
                                      bytes_per_element: int = 1) -> int:
        """KV-cache bytes read during one decode step at context ``seq_len``."""
        return self.num_layers * 2 * self.d_model * seq_len * bytes_per_element

    def embedding_parameters(self) -> int:
        return self.vocab_size * self.d_model + self.max_seq_len * self.d_model

    def total_parameters(self) -> int:
        """Approximate parameter count (weights + biases + LN affine +
        embeddings), used only for sanity checks and reporting."""
        per_layer = self.linear_weight_elements_per_layer()
        per_layer += 4 * self.d_model + self.qkv_out_features + self.d_ff  # biases
        per_layer += 2 * 2 * self.d_model  # two LayerNorms (gamma, beta)
        final_ln = 2 * self.d_model
        return self.num_layers * per_layer + self.embedding_parameters() + final_ln

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @staticmethod
    def gpt2_medium() -> "ModelConfig":
        """GPT-2 345M — the model evaluated in the paper."""
        return ModelConfig(name="gpt2-medium", num_layers=24, d_model=1024,
                           num_heads=16, d_ff=4096, vocab_size=50257,
                           max_seq_len=1024)

    @staticmethod
    def gpt2_small() -> "ModelConfig":
        """GPT-2 124M — used in the design-space exploration example."""
        return ModelConfig(name="gpt2-small", num_layers=12, d_model=768,
                           num_heads=12, d_ff=3072, vocab_size=50257,
                           max_seq_len=1024)

    @staticmethod
    def gpt2_large() -> "ModelConfig":
        """GPT-2 774M — used to project scaling beyond the paper's model."""
        return ModelConfig(name="gpt2-large", num_layers=36, d_model=1280,
                           num_heads=20, d_ff=5120, vocab_size=50257,
                           max_seq_len=1024)

    @staticmethod
    def tiny() -> "ModelConfig":
        """A functional-test configuration: tiny but structurally identical."""
        return ModelConfig(name="tiny", num_layers=2, d_model=64, num_heads=4,
                           d_ff=128, vocab_size=256, max_seq_len=64)

    @staticmethod
    def mini() -> "ModelConfig":
        """A slightly larger test configuration for integration tests."""
        return ModelConfig(name="mini", num_layers=4, d_model=128, num_heads=8,
                           d_ff=512, vocab_size=512, max_seq_len=128)


def layer_linear_specs(config: ModelConfig) -> List[LinearLayerSpec]:
    """The four linear layers of one transformer block, in execution order.

    These correspond to the stages the LoopLynx scheduler walks through when
    reusing the Fused MP kernel: QKV projection, attention output projection,
    MLP up-projection (fc), MLP down-projection.
    """
    return [
        LinearLayerSpec("qkv", config.d_model, config.qkv_out_features),
        LinearLayerSpec("attn_proj", config.d_model, config.d_model),
        LinearLayerSpec("mlp_fc", config.d_model, config.d_ff),
        LinearLayerSpec("mlp_proj", config.d_ff, config.d_model),
    ]
