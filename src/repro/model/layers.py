"""Functional transformer layers (NumPy reference).

These are the mathematical definitions the accelerator's functional datapath
is validated against: layer normalization, GELU, softmax, and causal
multi-head attention with an external KV cache.  They operate on float64
arrays; the quantized execution path lives in :mod:`repro.model.gpt2` and
:mod:`repro.core.functional`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    """Layer normalization over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + eps)
    return normalized * np.asarray(gamma, dtype=np.float64) + np.asarray(beta, dtype=np.float64)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by GPT-2)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax.

    The two-pass structure (global max+sum of exponents, then the weighted
    scores) is exactly why the paper's head-wise pipelining matters: the
    reduction pass for head ``i-1`` is hidden behind the score computation of
    head ``i``.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def causal_mask(query_len: int, key_len: int) -> np.ndarray:
    """Boolean mask that keeps position ``q`` attending only to keys
    ``<= q + (key_len - query_len)`` (the standard causal mask with a cache
    offset).  ``True`` marks positions that are **kept**."""
    if query_len <= 0 or key_len <= 0:
        raise ValueError("mask dimensions must be positive")
    offset = key_len - query_len
    if offset < 0:
        raise ValueError("key_len must be >= query_len when using a KV cache")
    rows = np.arange(query_len)[:, None]
    cols = np.arange(key_len)[None, :]
    return cols <= rows + offset


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """``[seq, d_model] -> [num_heads, seq, head_dim]``."""
    seq, d_model = x.shape
    if d_model % num_heads != 0:
        raise ValueError("d_model not divisible by num_heads")
    head_dim = d_model // num_heads
    return x.reshape(seq, num_heads, head_dim).transpose(1, 0, 2)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``[num_heads, seq, head_dim] -> [seq, d_model]``."""
    num_heads, seq, head_dim = x.shape
    return x.transpose(1, 0, 2).reshape(seq, num_heads * head_dim)


def causal_attention(query: np.ndarray, keys: np.ndarray, values: np.ndarray,
                     num_heads: int,
                     mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Multi-head scaled-dot-product attention with a causal mask.

    Parameters
    ----------
    query:
        ``[q_len, d_model]`` — the new positions being processed.
    keys, values:
        ``[k_len, d_model]`` — cached + current keys/values (k_len >= q_len).
    num_heads:
        Number of attention heads.
    mask:
        Optional override of the causal mask, shape ``[q_len, k_len]`` with
        ``True`` marking kept positions.

    Returns
    -------
    ``[q_len, d_model]`` attention output (before the output projection).
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if query.ndim != 2 or keys.ndim != 2 or values.ndim != 2:
        raise ValueError("query/keys/values must be 2-D [seq, d_model]")
    if keys.shape != values.shape:
        raise ValueError("keys and values must have identical shapes")
    if query.shape[1] != keys.shape[1]:
        raise ValueError("query and keys must share d_model")
    q_len, d_model = query.shape
    k_len = keys.shape[0]
    head_dim = d_model // num_heads
    if mask is None:
        mask = causal_mask(q_len, k_len)
    elif mask.shape != (q_len, k_len):
        raise ValueError(f"mask shape {mask.shape} does not match ({q_len}, {k_len})")

    q_heads = split_heads(query, num_heads)            # [H, q, hd]
    k_heads = split_heads(keys, num_heads)             # [H, k, hd]
    v_heads = split_heads(values, num_heads)           # [H, k, hd]

    scores = q_heads @ k_heads.transpose(0, 2, 1)      # [H, q, k]
    scores = scores / np.sqrt(float(head_dim))
    scores = np.where(mask[None, :, :], scores, -1e30)
    weights = softmax(scores, axis=-1)                 # [H, q, k]
    context = weights @ v_heads                        # [H, q, hd]
    return merge_heads(context)


def attention_single_head(query: np.ndarray, keys: np.ndarray, values: np.ndarray,
                          scale: Optional[float] = None) -> np.ndarray:
    """Single-head attention for one query vector against cached K/V.

    This mirrors the per-head computation of the Fused MHA kernel during
    decode (one token, one head at a time, head-wise pipelined).  Shapes:
    ``query [head_dim]``, ``keys/values [seq, head_dim]`` -> ``[head_dim]``.
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if query.ndim != 1 or keys.ndim != 2 or values.ndim != 2:
        raise ValueError("expected query [hd], keys/values [seq, hd]")
    if keys.shape != values.shape or keys.shape[1] != query.shape[0]:
        raise ValueError("inconsistent attention shapes")
    if scale is None:
        scale = 1.0 / np.sqrt(float(query.shape[0]))
    scores = keys @ query * scale                      # [seq]
    weights = softmax(scores, axis=-1)
    return weights @ values                            # [head_dim]
