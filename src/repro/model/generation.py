"""Prefill + auto-regressive decode loop (paper Fig. 1).

The generation driver mirrors the system flow described in the paper: the
host embeds the prompt, the prefill stage fills the KV cache (the output of
every prefill step except the last is discarded), then the decode stage
produces tokens auto-regressively until the requested length or an
end-of-sequence id is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.memory.kv_cache import KVCache
from repro.model.gpt2 import GPT2Model


@dataclass
class GenerationResult:
    """Outcome of a prefill + decode run."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    prefill_steps: int
    decode_steps: int
    stopped_on_eos: bool = False

    @property
    def all_tokens(self) -> List[int]:
        return list(self.prompt_tokens) + list(self.generated_tokens)

    @property
    def num_generated(self) -> int:
        return len(self.generated_tokens)


def _select_token(logits: np.ndarray, greedy: bool, rng: Optional[np.random.Generator],
                  temperature: float) -> int:
    """Pick the next token from the last position's logits."""
    last = np.asarray(logits)[-1]
    if greedy or rng is None:
        return int(np.argmax(last))
    if temperature <= 0:
        raise ValueError("temperature must be positive for sampling")
    scaled = last / temperature
    scaled = scaled - np.max(scaled)
    probs = np.exp(scaled)
    probs = probs / probs.sum()
    return int(rng.choice(last.size, p=probs))


def prefill_then_decode(model: GPT2Model, prompt_tokens: Sequence[int],
                        max_new_tokens: int, eos_token: Optional[int] = None,
                        greedy: bool = True, seed: Optional[int] = None,
                        temperature: float = 1.0, quantized: bool = False,
                        step_callback: Optional[Callable[[str, int], None]] = None
                        ) -> GenerationResult:
    """Run the two-stage inference flow of Fig. 1 with a KV cache.

    Parameters
    ----------
    model:
        The functional GPT-2 model.
    prompt_tokens:
        Prompt token ids (the prefill stage input).
    max_new_tokens:
        Decode-stage budget.
    eos_token:
        Optional end-of-sequence id that stops decoding early.
    greedy:
        Greedy decoding (True) or temperature sampling (False).
    quantized:
        Use the W8A8 forward path (requires prior calibration).
    step_callback:
        Optional ``callback(stage, step)`` hook; the examples use it to show
        progress and the tests use it to count stage transitions.
    """
    prompt = [int(t) for t in prompt_tokens]
    if not prompt:
        raise ValueError("prompt must contain at least one token")
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens cannot be negative")
    if len(prompt) + max_new_tokens > model.config.max_seq_len:
        raise ValueError(
            f"prompt ({len(prompt)}) + max_new_tokens ({max_new_tokens}) exceeds "
            f"max_seq_len ({model.config.max_seq_len})")

    forward = model.forward_quantized if quantized else model.forward
    rng = np.random.default_rng(seed) if seed is not None else None
    cache = model.new_cache()

    # ----- prefill stage: fill the KV cache with the whole prompt ---------
    logits = forward(np.array(prompt, dtype=np.int64), cache=cache, position_offset=0)
    cache.advance(len(prompt))
    if step_callback is not None:
        step_callback("prefill", len(prompt))

    generated: List[int] = []
    stopped = False
    next_token = _select_token(logits, greedy, rng, temperature)

    # ----- decode stage: one token at a time, reusing the cache -----------
    for step in range(max_new_tokens):
        generated.append(next_token)
        if step_callback is not None:
            step_callback("decode", step)
        if eos_token is not None and next_token == eos_token:
            stopped = True
            break
        if len(prompt) + len(generated) >= model.config.max_seq_len:
            break
        logits = forward(np.array([next_token], dtype=np.int64), cache=cache,
                         position_offset=cache.length)
        cache.advance(1)
        next_token = _select_token(logits, greedy, rng, temperature)

    return GenerationResult(prompt_tokens=prompt, generated_tokens=generated,
                            prefill_steps=len(prompt), decode_steps=len(generated),
                            stopped_on_eos=stopped)


def generate(model: GPT2Model, prompt_tokens: Sequence[int], max_new_tokens: int,
             **kwargs) -> List[int]:
    """Convenience wrapper returning only the generated token ids."""
    result = prefill_then_decode(model, prompt_tokens, max_new_tokens, **kwargs)
    return result.generated_tokens
