"""A deterministic byte-level tokenizer.

GPT-2 uses a byte-pair-encoding vocabulary that requires external merge
tables.  The examples in this repository only need a reversible mapping from
text to token ids within the model's vocabulary, so this tokenizer maps each
UTF-8 byte to its own id (0..255) and reserves id 256 as an end-of-sequence
marker when the vocabulary is large enough.  It is exact, dependency-free and
round-trips arbitrary text, which is all the end-to-end examples and tests
require.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ByteTokenizer:
    """Maps text to byte-level token ids bounded by a vocabulary size."""

    NUM_BYTES = 256

    def __init__(self, vocab_size: int = 50257) -> None:
        if vocab_size < self.NUM_BYTES:
            raise ValueError(
                f"vocab_size must be at least {self.NUM_BYTES}, got {vocab_size}")
        self.vocab_size = vocab_size

    @property
    def eos_token(self) -> Optional[int]:
        """End-of-sequence id (the first id after the byte range), when the
        vocabulary has room for it."""
        return self.NUM_BYTES if self.vocab_size > self.NUM_BYTES else None

    def encode(self, text: str, add_eos: bool = False) -> List[int]:
        """Encode text to token ids."""
        ids = [int(b) for b in text.encode("utf-8")]
        if add_eos:
            if self.eos_token is None:
                raise ValueError("vocabulary has no room for an EOS token")
            ids.append(self.eos_token)
        return ids

    def decode(self, token_ids: Sequence[int]) -> str:
        """Decode token ids back to text; non-byte ids (e.g. EOS) are skipped."""
        data = bytes(t for t in token_ids if 0 <= t < self.NUM_BYTES)
        return data.decode("utf-8", errors="replace")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteTokenizer(vocab_size={self.vocab_size})"
