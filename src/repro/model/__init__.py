"""LLM substrate: a from-scratch NumPy GPT-2 implementation.

The paper evaluates LoopLynx on GPT-2 (345M).  This package provides the
functional reference the accelerator's datapath is checked against and the
architectural description (layer/dimension/FLOP/byte counts) that drives the
performance models:

* :mod:`repro.model.config` — :class:`ModelConfig` with the GPT-2 345M preset
  and small test presets, plus per-layer operation inventories;
* :mod:`repro.model.layers` — layer normalization, causal multi-head
  attention with KV cache, GELU MLP;
* :mod:`repro.model.gpt2` — the full transformer stack with synthetic
  (seeded) weights and an optional W8A8 execution mode;
* :mod:`repro.model.generation` — the prefill + auto-regressive decode loop
  (Fig. 1 of the paper);
* :mod:`repro.model.tokenizer` — a deterministic byte-pair-free tokenizer so
  examples can run end to end without external vocabulary files.
"""

from repro.model.config import ModelConfig, LinearLayerSpec, layer_linear_specs
from repro.model.gpt2 import GPT2Model, GPT2Weights
from repro.model.generation import GenerationResult, generate, prefill_then_decode
from repro.model.layers import (
    causal_attention,
    gelu,
    layer_norm,
    softmax,
)
from repro.model.tokenizer import ByteTokenizer

__all__ = [
    "ModelConfig",
    "LinearLayerSpec",
    "layer_linear_specs",
    "GPT2Model",
    "GPT2Weights",
    "GenerationResult",
    "generate",
    "prefill_then_decode",
    "causal_attention",
    "gelu",
    "layer_norm",
    "softmax",
    "ByteTokenizer",
]
