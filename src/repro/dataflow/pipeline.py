"""Analytical pipeline-composition helpers.

The LoopLynx latency model composes per-stage cycle counts in three ways:

* **sequential** — stages execute back to back (temporal architectures, or a
  spatial task-level pipeline that cannot be filled during decode);
* **pipelined** — a stream of blocks flows through cascaded stages, so total
  latency is dominated by the slowest stage (intra-kernel pipeline inside a
  macro dataflow kernel);
* **overlapped** — two independent stages execute concurrently and only the
  longer one contributes (e.g. the Fused LN&Res kernel overlapping layer
  normalization with the residual addition, or hiding ring-network
  synchronization behind block matrix multiplication).

These helpers are exercised both analytically and against the event-driven
engine (tests cross-check the formulas with :func:`repro.dataflow.kernel.run_linear_chain`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class StageTiming:
    """Cycle timing of one pipeline stage.

    Attributes
    ----------
    name:
        Stage identifier (used in breakdowns).
    latency:
        Cycles from the first input of one item to its last output
        (pipeline depth × clock period, in cycles).
    interval:
        Initiation interval: cycles between accepting successive items.
        For a fully pipelined stage this is the per-item throughput cost.
    """

    name: str
    latency: int
    interval: int

    def __post_init__(self) -> None:
        if self.latency < 0 or self.interval < 0:
            raise ValueError(f"negative timing in stage {self.name!r}")
        if self.interval > self.latency and self.latency > 0:
            # an initiation interval longer than the stage latency is legal in
            # principle (stall-dominated stage) but almost always a modelling
            # bug, so normalize by treating latency as at least the interval.
            object.__setattr__(self, "latency", self.interval)


@dataclass
class PipelineStage:
    """A stage processing ``items`` work items with a given timing."""

    timing: StageTiming
    items: int = 1

    @property
    def total_cycles(self) -> int:
        """Cycles for this stage to process all of its items in isolation."""
        if self.items <= 0:
            return 0
        return self.timing.latency + (self.items - 1) * self.timing.interval


def sequential_latency(stages: Sequence[PipelineStage]) -> int:
    """Total cycles when the stages execute strictly one after another."""
    return sum(stage.total_cycles for stage in stages)


def pipeline_latency(stages: Sequence[PipelineStage], items: Optional[int] = None) -> int:
    """Cycles for ``items`` work items to flow through cascaded, fully
    overlapping stages (a classic dataflow/task-level pipeline).

    The items parameter overrides the per-stage item count; when omitted, all
    stages must agree on their item count.  The formula is the standard
    pipeline fill + steady-state drain:

    ``sum(latencies) + (items - 1) * max(interval)``
    """
    stages = list(stages)
    if not stages:
        return 0
    if items is None:
        counts = {stage.items for stage in stages}
        if len(counts) != 1:
            raise ValueError(
                f"stages disagree on item counts {sorted(counts)}; pass items explicitly")
        # order-independent: the guard above ensures a singleton set
        items = counts.pop()  # repro-lint: disable=R006
    if items <= 0:
        return 0
    fill = sum(stage.timing.latency for stage in stages)
    bottleneck = max(stage.timing.interval for stage in stages)
    return fill + (items - 1) * bottleneck


def overlapped_latency(cycle_counts: Iterable[int]) -> int:
    """Cycles when several independent operations execute fully in parallel:
    only the longest one is visible."""
    counts = list(cycle_counts)
    if not counts:
        return 0
    if any(c < 0 for c in counts):
        raise ValueError("negative cycle count")
    return max(counts)


def hidden_latency(compute_cycles: int, transfer_cycles: int,
                   blocks: int = 1) -> Tuple[int, int]:
    """Model the paper's *transmission latency hiding* (Fig. 4(c)).

    A matrix operation is split into ``blocks`` block-multiplications; the
    synchronization (transfer) of block *i* overlaps with the computation of
    block *i+1*.  Only the transfer of the **last** block is exposed.

    Parameters
    ----------
    compute_cycles:
        Total computation cycles across all blocks.
    transfer_cycles:
        Total transfer cycles across all blocks.
    blocks:
        Number of blocks the operation is split into.

    Returns
    -------
    (total_cycles, exposed_transfer_cycles)
    """
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    if compute_cycles < 0 or transfer_cycles < 0:
        raise ValueError("negative cycle count")
    per_block_compute = compute_cycles / blocks
    per_block_transfer = transfer_cycles / blocks
    # steady state: each block's transfer hides behind the next block's
    # compute; when transfer is slower than compute the surplus is exposed on
    # every block except it pipelines, so the critical path is governed by the
    # max of the two rates, plus the first compute and the last transfer.
    if blocks == 1:
        total = compute_cycles + transfer_cycles
        return int(round(total)), int(round(transfer_cycles))
    steady = (blocks - 1) * max(per_block_compute, per_block_transfer)
    total = per_block_compute + steady + per_block_transfer
    exposed = total - compute_cycles
    return int(round(total)), int(round(max(exposed, 0.0)))


@dataclass
class LatencyBreakdown:
    """Named cycle contributions that sum to a total.

    Used throughout the accelerator model to report where cycles go
    (linear layers, attention, critical-path operators, exposed
    synchronization, ...), feeding the Fig. 5 reproduction.
    """

    contributions: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, cycles: float) -> None:
        self.contributions[name] = self.contributions.get(name, 0.0) + float(cycles)

    def merge(self, other: "LatencyBreakdown", scale: float = 1.0) -> None:
        for name, cycles in other.contributions.items():
            self.add(name, cycles * scale)

    @property
    def total(self) -> float:
        return sum(self.contributions.values())

    def fraction(self, name: str) -> float:
        total = self.total
        if total <= 0:
            return 0.0
        return self.contributions.get(name, 0.0) / total

    def as_dict(self) -> Dict[str, float]:
        return dict(self.contributions)

    def scaled(self, factor: float) -> "LatencyBreakdown":
        out = LatencyBreakdown()
        for name, cycles in self.contributions.items():
            out.add(name, cycles * factor)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.0f}" for k, v in sorted(self.contributions.items()))
        return f"LatencyBreakdown(total={self.total:.0f}, {parts})"
