"""Dataflow simulation substrate.

This package stands in for the Vitis HLS dataflow fabric used by the paper.
It provides a small discrete-event simulation engine (:mod:`repro.dataflow.engine`),
FIFO channels with bounded depth (:mod:`repro.dataflow.fifo`), kernel process
abstractions (:mod:`repro.dataflow.kernel`), pipeline composition helpers that
model overlap / initiation intervals (:mod:`repro.dataflow.pipeline`), and a
trace recorder used by the latency-breakdown analysis
(:mod:`repro.dataflow.trace`).

The LoopLynx macro dataflow kernels in :mod:`repro.core.kernels` are built on
top of these primitives: each hardware kernel is expressed as a set of pipeline
stages with a latency and an initiation interval, and the engine computes the
overlapped schedule exactly the way a free-running HLS dataflow region would.
"""

from repro.dataflow.engine import Event, SimulationEngine
from repro.dataflow.fifo import Fifo, FifoClosed, FifoFull, FifoEmpty
from repro.dataflow.kernel import KernelProcess, KernelPort
from repro.dataflow.pipeline import (
    PipelineStage,
    StageTiming,
    overlapped_latency,
    pipeline_latency,
    sequential_latency,
)
from repro.dataflow.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "SimulationEngine",
    "Fifo",
    "FifoClosed",
    "FifoFull",
    "FifoEmpty",
    "KernelProcess",
    "KernelPort",
    "PipelineStage",
    "StageTiming",
    "overlapped_latency",
    "pipeline_latency",
    "sequential_latency",
    "TraceEvent",
    "TraceRecorder",
]
