"""Trace recording for dataflow simulations.

The recorder collects ``(unit, event, cycle)`` tuples during an event-driven
simulation.  The analysis package uses traces to compute per-unit busy
intervals, overlap factors and Gantt-style summaries, which back the
latency-breakdown figure (Fig. 5) and the utilization discussion in the paper
(temporal vs. spatial vs. hybrid area utilization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event emitted by a simulated unit."""

    unit: str
    kind: str
    cycle: int


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records and derives summaries."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, unit: str, kind: str, cycle: int) -> None:
        self.events.append(TraceEvent(unit=unit, kind=kind, cycle=int(cycle)))

    def __len__(self) -> int:
        return len(self.events)

    def units(self) -> List[str]:
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.unit, None)
        return list(seen)

    def events_for(self, unit: str) -> List[TraceEvent]:
        return [event for event in self.events if event.unit == unit]

    # ------------------------------------------------------------------
    # interval analysis
    # ------------------------------------------------------------------
    def busy_interval(self, unit: str) -> Optional[Tuple[int, int]]:
        """Return the ``(start, stop)`` cycle interval of a unit, derived from
        its 'start'/'stop' events, or ``None`` if the unit never ran."""
        start: Optional[int] = None
        stop: Optional[int] = None
        for event in self.events_for(unit):
            if event.kind == "start" and start is None:
                start = event.cycle
            elif event.kind == "stop":
                stop = event.cycle
        if start is None:
            return None
        if stop is None:
            stop = max(event.cycle for event in self.events_for(unit))
        return (start, stop)

    def busy_cycles(self, unit: str) -> int:
        interval = self.busy_interval(unit)
        if interval is None:
            return 0
        return max(0, interval[1] - interval[0])

    def makespan(self) -> int:
        """Total simulated span covered by the trace."""
        if not self.events:
            return 0
        cycles = [event.cycle for event in self.events]
        return max(cycles) - min(cycles)

    def overlap_fraction(self, unit_a: str, unit_b: str) -> float:
        """Fraction of unit_a's busy interval during which unit_b was also
        busy.  Used to verify that, e.g., layer normalization and residual
        addition genuinely overlap in the fused LN&Res kernel model."""
        a = self.busy_interval(unit_a)
        b = self.busy_interval(unit_b)
        if a is None or b is None:
            return 0.0
        a_len = a[1] - a[0]
        if a_len <= 0:
            return 0.0
        lo = max(a[0], b[0])
        hi = min(a[1], b[1])
        return max(0, hi - lo) / a_len

    def utilization(self, total_cycles: Optional[int] = None) -> Dict[str, float]:
        """Per-unit busy fraction relative to ``total_cycles`` (defaults to
        the trace makespan)."""
        span = total_cycles if total_cycles is not None else self.makespan()
        if span <= 0:
            return {unit: 0.0 for unit in self.units()}
        return {unit: self.busy_cycles(unit) / span for unit in self.units()}

    def gantt_rows(self) -> List[Tuple[str, int, int]]:
        """Return ``(unit, start, stop)`` rows sorted by start cycle, suitable
        for textual Gantt rendering in the examples."""
        rows: List[Tuple[str, int, int]] = []
        for unit in self.units():
            interval = self.busy_interval(unit)
            if interval is not None:
                rows.append((unit, interval[0], interval[1]))
        rows.sort(key=lambda row: (row[1], row[0]))
        return rows
