"""Bounded FIFO channels connecting macro dataflow kernel stages.

In the LoopLynx hardware all units inside a macro dataflow kernel (DMA engine,
matrix-processing unit, quantization unit, router, ...) are decoupled through
HLS stream FIFOs; the paper credits this decoupling for the achievable
285 MHz clock.  The :class:`Fifo` here mirrors the semantics needed by the
cycle-level simulation: bounded depth, blocking push when full, blocking pop
when empty, and an explicit *close* signal so downstream consumers can detect
end-of-stream.

Two interfaces are provided:

* an **immediate** interface (:meth:`Fifo.try_push` / :meth:`Fifo.try_pop`)
  used by analytical code and tests;
* a **process** interface (:meth:`Fifo.push` / :meth:`Fifo.pop`) returning
  generator commands for use inside :class:`repro.dataflow.engine.SimulationEngine`
  processes (``yield from fifo.push(engine, item)``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple


class FifoError(RuntimeError):
    """Base class for FIFO errors."""


class FifoFull(FifoError):
    """Raised by the immediate interface when pushing into a full FIFO."""


class FifoEmpty(FifoError):
    """Raised by the immediate interface when popping from an empty FIFO."""


class FifoClosed(FifoError):
    """Raised when pushing into a closed FIFO or popping a closed, drained one."""


class Fifo:
    """A bounded, closable FIFO channel.

    Parameters
    ----------
    depth:
        Maximum number of elements held at once.  ``depth <= 0`` is rejected:
        HLS streams always have at least depth 1 (the paper's kernels use
        depth 2 skid buffers between units).
    name:
        Human-readable name used in error messages and traces.
    """

    def __init__(self, depth: int = 2, name: str = "fifo") -> None:
        if depth <= 0:
            raise ValueError(f"FIFO depth must be positive, got {depth}")
        self.depth = int(depth)
        self.name = name
        self._items: Deque[Any] = deque()
        self._closed = False
        # occupancy statistics for utilization analysis
        self._peak_occupancy = 0
        self._total_pushed = 0
        self._total_popped = 0

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def drained(self) -> bool:
        """True when the FIFO is closed and every item has been consumed."""
        return self._closed and not self._items

    @property
    def peak_occupancy(self) -> int:
        return self._peak_occupancy

    @property
    def total_pushed(self) -> int:
        return self._total_pushed

    @property
    def total_popped(self) -> int:
        return self._total_popped

    # ------------------------------------------------------------------
    # immediate interface
    # ------------------------------------------------------------------
    def try_push(self, item: Any) -> None:
        if self._closed:
            raise FifoClosed(f"push into closed FIFO {self.name!r}")
        if self.full:
            raise FifoFull(f"push into full FIFO {self.name!r} (depth={self.depth})")
        self._items.append(item)
        self._total_pushed += 1
        self._peak_occupancy = max(self._peak_occupancy, len(self._items))

    def try_pop(self) -> Any:
        if not self._items:
            if self._closed:
                raise FifoClosed(f"pop from closed, drained FIFO {self.name!r}")
            raise FifoEmpty(f"pop from empty FIFO {self.name!r}")
        self._total_popped += 1
        return self._items.popleft()

    def close(self) -> None:
        """Signal end-of-stream.  Items already enqueued remain poppable."""
        self._closed = True

    def drain(self) -> List[Any]:
        """Pop every element currently enqueued (immediate interface)."""
        out = list(self._items)
        self._total_popped += len(self._items)
        self._items.clear()
        return out

    # ------------------------------------------------------------------
    # process interface (for SimulationEngine generators)
    # ------------------------------------------------------------------
    def push(self, item: Any) -> Generator[Tuple[str, Any], Any, None]:
        """Generator helper: block until space is available, then push."""
        if self._closed:
            raise FifoClosed(f"push into closed FIFO {self.name!r}")
        if self.full:
            yield ("wait_until", lambda: not self.full or self._closed)
            if self._closed:
                raise FifoClosed(f"FIFO {self.name!r} closed while waiting to push")
        self.try_push(item)

    def pop(self) -> Generator[Tuple[str, Any], Any, Any]:
        """Generator helper: block until an item (or close) arrives, then pop.

        Returns the popped item, or raises :class:`FifoClosed` if the FIFO is
        closed and drained.
        """
        if self.empty and not self._closed:
            yield ("wait_until", lambda: not self.empty or self._closed)
        if self.empty and self._closed:
            raise FifoClosed(f"pop from closed, drained FIFO {self.name!r}")
        return self.try_pop()

    def pop_or_none(self) -> Generator[Tuple[str, Any], Any, Optional[Any]]:
        """Like :meth:`pop` but returns ``None`` on end-of-stream instead of
        raising, which keeps consumer loops simple."""
        if self.empty and not self._closed:
            yield ("wait_until", lambda: not self.empty or self._closed)
        if self.empty and self._closed:
            return None
        return self.try_pop()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"Fifo(name={self.name!r}, depth={self.depth}, "
                f"len={len(self._items)}, {state})")
