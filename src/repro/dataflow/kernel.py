"""Kernel process abstraction for the dataflow simulation engine.

A *kernel process* models one free-running HLS dataflow unit: it repeatedly
pops work items from input FIFOs, spends a number of cycles on them, and
pushes results to output FIFOs.  LoopLynx builds its macro dataflow kernels
(MDKs) out of several such units connected by FIFOs — e.g. the Fused MP kernel
is ``DMA -> MPU -> quantization -> router``.

The cycle models in :mod:`repro.core.kernels` mostly use the analytical
pipeline composition helpers in :mod:`repro.dataflow.pipeline`, but the
process-level abstraction here is used by the integration tests and the
fine-grained trace-producing simulations to validate that the analytical
overlap formulas agree with an actual event-driven schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.dataflow.engine import SimulationEngine
from repro.dataflow.fifo import Fifo
from repro.dataflow.trace import TraceRecorder


@dataclass
class KernelPort:
    """A named connection point of a kernel, bound to a FIFO."""

    name: str
    fifo: Fifo
    direction: str = "in"  # "in" or "out"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"port direction must be 'in' or 'out', got {self.direction!r}")


class KernelProcess:
    """Base class for event-driven kernel processes.

    Subclasses override :meth:`body`, a generator that uses the FIFO process
    interface and ``yield ("wait", cycles)`` to model computation time.  The
    :meth:`run` generator wraps the body with trace bookkeeping.
    """

    def __init__(self, name: str, trace: Optional[TraceRecorder] = None) -> None:
        self.name = name
        self.trace = trace
        self.inputs: Dict[str, KernelPort] = {}
        self.outputs: Dict[str, KernelPort] = {}
        self.items_processed = 0
        self.busy_cycles = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_input(self, name: str, fifo: Fifo) -> KernelPort:
        port = KernelPort(name=name, fifo=fifo, direction="in")
        self.inputs[name] = port
        return port

    def add_output(self, name: str, fifo: Fifo) -> KernelPort:
        port = KernelPort(name=name, fifo=fifo, direction="out")
        self.outputs[name] = port
        return port

    def input_fifo(self, name: str) -> Fifo:
        return self.inputs[name].fifo

    def output_fifo(self, name: str) -> Fifo:
        return self.outputs[name].fifo

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def body(self, engine: SimulationEngine) -> Generator[Tuple[str, Any], Any, Any]:
        """Override in subclasses.  Default body terminates immediately."""
        return
        yield  # pragma: no cover - makes this a generator function

    def run(self, engine: SimulationEngine) -> Generator[Tuple[str, Any], Any, Any]:
        """Wrap :meth:`body` with start/stop trace events."""
        start = engine.now
        if self.trace is not None:
            self.trace.record(self.name, "start", start)
        result = yield from self.body(engine)
        if self.trace is not None:
            self.trace.record(self.name, "stop", engine.now)
        self.busy_cycles += engine.now - start
        return result

    def register(self, engine: SimulationEngine) -> int:
        """Register this kernel's process with the engine."""
        return engine.add_process(self.run(engine), name=self.name)


class SourceKernel(KernelProcess):
    """Produces ``count`` items into its ``out`` port, one every
    ``interval`` cycles.  Items are produced by ``make_item(index)``."""

    def __init__(self, name: str, out: Fifo, count: int, interval: int = 1,
                 make_item: Optional[Callable[[int], Any]] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(name, trace)
        self.add_output("out", out)
        self.count = int(count)
        self.interval = int(interval)
        self.make_item = make_item or (lambda i: i)

    def body(self, engine: SimulationEngine):
        out = self.output_fifo("out")
        for index in range(self.count):
            if self.interval:
                yield ("wait", self.interval)
            yield from out.push(self.make_item(index))
            self.items_processed += 1
        out.close()


class TransformKernel(KernelProcess):
    """Pops from ``in``, spends ``latency`` cycles per item, pushes the
    transformed item to ``out``.  Models a pipelined unit with an initiation
    interval of ``interval`` cycles (default: fully pipelined, II=1)."""

    def __init__(self, name: str, inp: Fifo, out: Fifo, latency: int = 1,
                 interval: int = 1,
                 func: Optional[Callable[[Any], Any]] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(name, trace)
        self.add_input("in", inp)
        self.add_output("out", out)
        self.latency = int(latency)
        self.interval = int(interval)
        self.func = func or (lambda item: item)

    def body(self, engine: SimulationEngine):
        inp = self.input_fifo("in")
        out = self.output_fifo("out")
        while True:
            item = yield from inp.pop_or_none()
            if item is None and inp.drained:
                break
            if self.interval:
                yield ("wait", self.interval)
            if self.trace is not None:
                self.trace.record(self.name, "item", engine.now)
            yield from out.push(self.func(item))
            self.items_processed += 1
        # model the pipeline drain latency of the last item
        if self.latency > self.interval:
            yield ("wait", self.latency - self.interval)
        out.close()


class SinkKernel(KernelProcess):
    """Consumes every item from its ``in`` port and stores it."""

    def __init__(self, name: str, inp: Fifo, interval: int = 1,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(name, trace)
        self.add_input("in", inp)
        self.interval = int(interval)
        self.collected: List[Any] = []

    def body(self, engine: SimulationEngine):
        inp = self.input_fifo("in")
        while True:
            item = yield from inp.pop_or_none()
            if item is None and inp.drained:
                break
            if self.interval:
                yield ("wait", self.interval)
            self.collected.append(item)
            self.items_processed += 1
        return self.collected


def run_linear_chain(stage_latencies: List[int], items: int,
                     fifo_depth: int = 2) -> Tuple[int, List[Any]]:
    """Build and simulate a simple linear chain of pipelined kernels.

    ``stage_latencies[i]`` is the per-item initiation interval of stage ``i``.
    Returns ``(total_cycles, collected_items)``.  Used by tests to validate
    that the analytical ``pipeline_latency`` formula matches the event-driven
    schedule produced by the engine.
    """
    if not stage_latencies:
        raise ValueError("need at least one stage")
    engine = SimulationEngine()
    fifos = [Fifo(depth=fifo_depth, name=f"f{i}") for i in range(len(stage_latencies) + 1)]
    kernels: List[KernelProcess] = [
        SourceKernel("source", fifos[0], count=items, interval=0)
    ]
    for i, latency in enumerate(stage_latencies):
        kernels.append(TransformKernel(f"stage{i}", fifos[i], fifos[i + 1],
                                       latency=latency, interval=latency))
    sink = SinkKernel("sink", fifos[-1], interval=0)
    kernels.append(sink)
    for kernel in kernels:
        kernel.register(engine)
    total = engine.run()
    return total, sink.collected
