"""A small discrete-event simulation engine with generator-based processes.

The engine is deliberately minimal: processes are Python generators that yield
*commands*, the engine advances a cycle-accurate clock and resumes processes
when the condition they wait for becomes true.  This is the substrate on which
the FIFO-connected macro dataflow kernels of LoopLynx are simulated.

Supported yield commands
------------------------

``("wait", n)``
    Suspend the process for ``n`` cycles.

``("wait_until", predicate)``
    Suspend until ``predicate()`` is true.  The predicate is re-evaluated every
    time the engine makes progress (cheap because the number of processes is
    small -- a handful of kernels per accelerator node).

``("done", value)``
    Terminate the process and record ``value`` as its result.

Processes may also simply ``return``; the return value (via ``StopIteration``)
is recorded as the result.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

Command = Tuple[str, Any]
Process = Generator[Command, Any, Any]


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress (deadlock) or a
    process misbehaves (unknown command)."""


@dataclass(order=True)
class Event:
    """A scheduled resumption of a process at an absolute cycle time."""

    time: int
    seq: int
    process_id: int = field(compare=False)
    payload: Any = field(compare=False, default=None)


@dataclass
class _ProcState:
    """Book-keeping for one running process."""

    name: str
    generator: Process
    finished: bool = False
    result: Any = None
    blocked_on: Optional[Callable[[], bool]] = None
    start_time: int = 0
    finish_time: Optional[int] = None


class SimulationEngine:
    """Cycle-accurate cooperative scheduler for kernel processes.

    Parameters
    ----------
    max_cycles:
        Safety limit; the simulation aborts with :class:`SimulationError` if
        the clock exceeds this value (guards against accidental livelock in
        user-written kernels).
    """

    def __init__(self, max_cycles: int = 10_000_000_000) -> None:
        self.now: int = 0
        self.max_cycles = int(max_cycles)
        self._event_queue: List[Event] = []
        self._seq = itertools.count()
        self._processes: Dict[int, _ProcState] = {}
        self._next_pid = itertools.count()
        self._blocked: List[int] = []

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def add_process(self, generator: Process, name: str = "proc") -> int:
        """Register a generator process and schedule its first step at the
        current simulation time.  Returns the process id."""
        pid = next(self._next_pid)
        self._processes[pid] = _ProcState(name=name, generator=generator,
                                          start_time=self.now)
        self._schedule(self.now, pid)
        return pid

    def result_of(self, pid: int) -> Any:
        """Return the result recorded for a finished process."""
        state = self._processes[pid]
        if not state.finished:
            raise SimulationError(f"process {state.name} (pid={pid}) has not finished")
        return state.result

    def finish_time_of(self, pid: int) -> int:
        """Cycle at which the given process finished."""
        state = self._processes[pid]
        if state.finish_time is None:
            raise SimulationError(f"process {state.name} (pid={pid}) has not finished")
        return state.finish_time

    @property
    def active_processes(self) -> int:
        """Number of processes that have not yet finished."""
        return sum(1 for s in self._processes.values() if not s.finished)

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, time: int, pid: int, payload: Any = None) -> None:
        heapq.heappush(self._event_queue, Event(time, next(self._seq), pid, payload))

    def _step_process(self, pid: int, send_value: Any = None) -> None:
        state = self._processes[pid]
        if state.finished:
            return
        try:
            command = state.generator.send(send_value)
        except StopIteration as stop:
            state.finished = True
            state.result = stop.value
            state.finish_time = self.now
            return
        self._dispatch_command(pid, state, command)

    def _dispatch_command(self, pid: int, state: _ProcState, command: Command) -> None:
        if not isinstance(command, tuple) or not command:
            raise SimulationError(
                f"process {state.name} yielded malformed command {command!r}")
        kind = command[0]
        if kind == "wait":
            delay = int(command[1])
            if delay < 0:
                raise SimulationError(f"negative wait of {delay} cycles")
            self._schedule(self.now + delay, pid)
        elif kind == "wait_until":
            predicate = command[1]
            if predicate():
                # condition already true: resume on the same cycle
                self._schedule(self.now, pid)
            else:
                state.blocked_on = predicate
                self._blocked.append(pid)
        elif kind == "done":
            state.finished = True
            state.result = command[1] if len(command) > 1 else None
            state.finish_time = self.now
        else:
            raise SimulationError(
                f"process {state.name} yielded unknown command kind {kind!r}")

    def _unblock_ready(self) -> bool:
        """Move blocked processes whose predicate became true back into the
        event queue.  Returns True if anything was unblocked."""
        if not self._blocked:
            return False
        still_blocked: List[int] = []
        progressed = False
        for pid in self._blocked:
            state = self._processes[pid]
            predicate = state.blocked_on
            if predicate is not None and predicate():
                state.blocked_on = None
                self._schedule(self.now, pid)
                progressed = True
            else:
                still_blocked.append(pid)
        self._blocked = still_blocked
        return progressed

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Run until all processes finish.  Returns the final cycle count."""
        while True:
            progressed = True
            # drain all events at the current time, re-checking blocked
            # processes whenever one of them may have been released.
            while progressed:
                progressed = False
                while self._event_queue and self._event_queue[0].time <= self.now:
                    event = heapq.heappop(self._event_queue)
                    self._step_process(event.process_id, event.payload)
                    progressed = True
                if self._unblock_ready():
                    progressed = True
            if self.active_processes == 0:
                return self.now
            if not self._event_queue:
                blocked_names = [self._processes[p].name for p in self._blocked]
                raise SimulationError(
                    "deadlock: no pending events but processes are blocked: "
                    f"{blocked_names}")
            next_time = self._event_queue[0].time
            if next_time <= self.now:
                continue
            if next_time > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles}")
            self.now = next_time

    def run_all(self, processes: Iterable[Tuple[str, Process]]) -> int:
        """Convenience wrapper: register every ``(name, generator)`` pair and
        run the simulation to completion."""
        for name, generator in processes:
            self.add_process(generator, name=name)
        return self.run()
