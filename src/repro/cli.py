"""Command-line interface for the LoopLynx reproduction.

Usage (after ``pip install -e .`` or with ``PYTHONPATH=src``)::

    python -m repro.cli list                      # list reproducible artifacts
    python -m repro.cli experiment fig8           # regenerate one table/figure
    python -m repro.cli experiment all            # regenerate everything
    python -m repro.cli latency --nodes 2         # per-token latency report
    python -m repro.cli scenario --nodes 4 --prefill 64 --decode 512
    python -m repro.cli scaling --max-nodes 8     # node-count sweep
    python -m repro.cli utilization               # Fig. 3 style area-utilization
    python -m repro.cli serve --trace bursty --policy fifo   # token-level serving
    python -m repro.cli serve --kv-mode paged --kv-budget-mib 32 --trace bursty
    python -m repro.cli serve --compare-kv --kv-budget-mib 32 --trace bursty
    python -m repro.cli serve --prefill-mode mixed --trace bursty
    python -m repro.cli serve --compare-prefill --trace bursty
    python -m repro.cli serve --instances 2x1n,1x2n --router class_affinity
    python -m repro.cli serve --instances 2x1n,1x2n --compare-router
    python -m repro.cli serve --instances 1x4n:prefill,4x1n:decode --router disaggregated --kv-mode paged
    python -m repro.cli serve --instances 1x4n:prefill,4x1n:decode --kv-mode paged --compare-disaggregation
    python -m repro.cli serve --trace multiturn --kv-mode paged --kv-prefix-sharing --instances 2x1n,2x2n --router prefix_aware
    python -m repro.cli serve --trace-file trace.csv --policy sjf
    python -m repro.cli serve --trace bursty --metrics-mode streaming

Every subcommand prints plain-text tables (no plotting dependencies).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.breakdown import latency_breakdown
from repro.analysis.report import format_table
from repro.analysis.scalability import throughput_table
from repro.analysis.utilization import architecture_comparison
from repro.baselines.gpu_a100 import A100Model
from repro.core.multi_node import LoopLynxSystem
from repro.energy.power import FpgaPowerModel, GpuPowerModel
from repro.experiments import EXPERIMENTS
from repro.model.config import ModelConfig


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [{"Experiment": spec.experiment_id, "Description": spec.description}
            for spec in EXPERIMENTS.values()]
    print(format_table(rows, title="Reproducible artifacts"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.experiment_id == "all":
        for spec in EXPERIMENTS.values():
            print(f"\n### {spec.experiment_id}: {spec.description}\n")
            spec.main()
        return 0
    if args.experiment_id not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment_id!r}; known: "
              f"{', '.join(sorted(EXPERIMENTS))} or 'all'", file=sys.stderr)
        return 2
    EXPERIMENTS[args.experiment_id].main()
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    system = LoopLynxSystem.paper_configuration(num_nodes=args.nodes)
    report = system.decode_token_report(context_len=args.context)
    print(format_table([{
        "# Nodes": args.nodes,
        "Context": report.context_len,
        "Token latency (ms)": report.latency_ms,
        "Throughput (tok/s)": 1e3 / report.latency_ms,
    }], title="Per-token decode latency"))
    breakdown = latency_breakdown(system, context_len=args.context)
    print()
    print(format_table(
        [{"Category": name, "Latency (ms)": value}
         for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1])],
        title="Breakdown"))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    system = LoopLynxSystem.paper_configuration(num_nodes=args.nodes)
    report = system.run_scenario(args.prefill, args.decode)
    gpu = A100Model(ModelConfig.gpt2_medium())
    gpu_ms = gpu.scenario_latency_ms(args.prefill, args.decode)
    fpga_energy = FpgaPowerModel().report(args.nodes, report.total_ms,
                                          args.decode).energy_joules
    gpu_energy = GpuPowerModel().report(gpu_ms, args.decode).energy_joules
    print(format_table([
        {"Platform": f"LoopLynx {args.nodes}-node",
         "Latency (s)": report.total_ms / 1e3, "Energy (J)": fpga_energy},
        {"Platform": "Nvidia A100",
         "Latency (s)": gpu_ms / 1e3, "Energy (J)": gpu_energy},
    ], title=f"Scenario [{args.prefill}:{args.decode}]"))
    print(f"\nSpeed-up vs A100: {gpu_ms / report.total_ms:.2f}x, "
          f"energy fraction: {100 * fpga_energy / gpu_energy:.1f}%")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    node_counts: List[int] = []
    nodes = 1
    while nodes <= args.max_nodes:
        node_counts.append(nodes)
        nodes *= 2
    rows = throughput_table(tuple(node_counts), context_len=args.context)
    print(format_table([row.as_dict() for row in rows],
                       title="Throughput and scalability"))
    return 0


def _cmd_utilization(args: argparse.Namespace) -> int:
    rows = [entry.as_dict() for entry in architecture_comparison(args.context)]
    print(format_table(rows, title="Decode-time area utilization by architecture style"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.serving import (class_breakdown,
                                        disaggregation_comparison,
                                        kv_mode_comparison,
                                        policy_comparison,
                                        prefill_mode_comparison,
                                        router_comparison, run_policy,
                                        tenant_breakdown)
    from repro.serving.cluster import parse_cluster_spec
    from repro.workloads.traces import (bursty_trace, multi_tenant_trace,
                                        multi_turn_trace, replay_trace,
                                        synthetic_trace)

    generators = {
        "steady": synthetic_trace,
        "bursty": bursty_trace,
        "multitenant": multi_tenant_trace,
        "multiturn": multi_turn_trace,
    }
    try:
        if args.trace_file is not None:
            trace = replay_trace(args.trace_file)
            trace_label = f"replayed ({args.trace_file})"
        else:
            trace = generators[args.trace](args.requests, seed=args.seed)
            trace_label = args.trace
    except (OSError, ValueError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    # --instances accepts both a plain count ("4", homogeneous with --nodes)
    # and a cluster spec ("2x1n,2x2n,1x4n"); the flat form keeps the exact
    # pre-cluster code path, the spec form goes through the cluster layer
    cluster_spec = None
    if args.instances.isdigit():
        num_instances = int(args.instances)
        pool_label = f"{num_instances}x {args.nodes}-node instances"
    else:
        try:
            cluster_spec = parse_cluster_spec(args.instances)
        except ValueError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        num_instances = cluster_spec.num_instances
        pool_label = (f"cluster {cluster_spec} "
                      f"({cluster_spec.total_nodes} nodes)")
    kv_budget = (None if args.kv_budget_mib is None
                 else args.kv_budget_mib * (1 << 20))
    title = f"Serving {len(trace)} {trace_label} requests on {pool_label}"
    cluster_kwargs = dict(instances=cluster_spec, router=args.router,
                          swap_priority=args.swap_priority,
                          kv_prefix_sharing=args.kv_prefix_sharing)
    try:
        if args.metrics_mode != "full" and (
                args.compare or args.compare_kv or args.compare_prefill
                or args.compare_router or args.compare_disaggregation):
            print("serve: the comparison tables keep full-fidelity metrics; "
                  "drop --metrics-mode or run a single configuration",
                  file=sys.stderr)
            return 2
        if args.compare_disaggregation:
            if cluster_spec is None or not cluster_spec.has_roles:
                print("serve: --compare-disaggregation needs a role-tagged "
                      "--instances spec like '1x4n:prefill,4x1n:decode'",
                      file=sys.stderr)
                return 2
            if args.kv_mode != "paged":
                print("serve: disaggregation hands off paged KV block "
                      "tables; add --kv-mode paged", file=sys.stderr)
                return 2
            if args.swap_priority or args.kv_prefix_sharing:
                print("serve: --swap-priority/--kv-prefix-sharing are not "
                      "threaded through this comparison table; drop them "
                      "or run a single configuration", file=sys.stderr)
                return 2
            if args.router not in ("round_robin", "disaggregated"):
                # (round_robin is the argparse default, i.e. unset)
                print("serve: --compare-disaggregation always pits the "
                      "disaggregated router against a least_loaded "
                      "colocated twin; drop --router or run a single "
                      "configuration", file=sys.stderr)
                return 2
            rows = disaggregation_comparison(
                trace, cluster_spec, policy=args.policy,
                max_batch_size=args.max_batch,
                kv_budget_bytes=kv_budget,
                kv_block_size=args.kv_block_size,
                preemption_mode=args.preemption_mode,
                prefill_mode=args.prefill_mode,
                mixed_step_token_budget=args.mixed_step_token_budget,
                workers=args.workers)
            print(format_table(
                rows, title=f"{title} — disaggregated vs colocated"))
            return 0
        if args.compare_router:
            if cluster_spec is None:
                cluster_spec = parse_cluster_spec(
                    f"{num_instances}x{args.nodes}n")
            rows = router_comparison(
                trace, cluster_spec, policy=args.policy,
                max_batch_size=args.max_batch,
                kv_budget_bytes=kv_budget, kv_mode=args.kv_mode,
                kv_block_size=args.kv_block_size,
                preemption_mode=args.preemption_mode,
                prefill_mode=args.prefill_mode,
                swap_priority=args.swap_priority,
                kv_prefix_sharing=args.kv_prefix_sharing,
                workers=args.workers)
            print(format_table(
                rows, title=f"{title} — router comparison"))
            if not cluster_spec.is_heterogeneous:
                print("\n(single-class cluster: every router produces "
                      "identical results by construction)")
            return 0
        if args.compare_prefill or args.compare_kv or args.compare:
            if cluster_spec is not None:
                print("serve: --compare/--compare-kv/--compare-prefill "
                      "tabulate homogeneous pools; use --compare-router "
                      "for cluster specs", file=sys.stderr)
                return 2
            if args.swap_priority or args.kv_prefix_sharing:
                print("serve: --swap-priority/--kv-prefix-sharing are not "
                      "threaded through these comparison tables; drop them "
                      "or run a single configuration", file=sys.stderr)
                return 2
        if args.compare_prefill:
            if args.policy == "fifo-exclusive":
                print("serve: --compare-prefill needs a token-level policy "
                      "(fifo-exclusive serves whole requests)", file=sys.stderr)
                return 2
            rows = prefill_mode_comparison(
                trace, policy=args.policy,
                num_instances=num_instances,
                num_nodes_per_instance=args.nodes,
                max_batch_size=args.max_batch,
                mixed_step_token_budget=args.mixed_step_token_budget,
                kv_budget_bytes=kv_budget,
                kv_mode=args.kv_mode,
                kv_block_size=args.kv_block_size,
                preemption_mode=args.preemption_mode,
                workers=args.workers)
            print(format_table(
                rows, title=f"{title} — exclusive vs mixed prefill "
                            f"(budget {args.mixed_step_token_budget} tok/step)"))
            return 0
        if args.compare_kv:
            if kv_budget is None:
                print("serve: --compare-kv needs --kv-budget-mib (the same "
                      "budget is applied to both KV modes)", file=sys.stderr)
                return 2
            rows = kv_mode_comparison(
                trace, kv_budget, policy=args.policy,
                num_instances=num_instances,
                num_nodes_per_instance=args.nodes,
                max_batch_size=args.max_batch,
                kv_block_size=args.kv_block_size,
                preemption_mode=args.preemption_mode,
                workers=args.workers)
            print(format_table(
                rows, title=f"{title} — reservation vs paged KV "
                            f"({args.kv_budget_mib} MiB/node)"))
            return 0
        if args.compare:
            rows = policy_comparison(
                trace, policies=("fifo-exclusive", "fifo", "sjf"),
                num_instances=num_instances,
                num_nodes_per_instance=args.nodes,
                max_batch_size=args.max_batch, kv_budget_bytes=kv_budget,
                kv_mode=args.kv_mode, kv_block_size=args.kv_block_size,
                preemption_mode=args.preemption_mode,
                workers=args.workers)
            print(format_table(
                rows, title=f"{title} — policy comparison "
                            f"(KV {args.kv_mode})"))
            if kv_budget is not None or args.kv_mode == "paged":
                print("\n(fifo-exclusive omitted: it has no KV admission "
                      "control to constrain)")
            return 0
        metrics_kwargs = {}
        if args.metrics_mode != "full":
            # streaming runs count SLO attainment online, so the SLO pair
            # must be pinned before the run rather than queried after it
            metrics_kwargs = dict(metrics_mode=args.metrics_mode,
                                  slo=(args.ttft_slo, args.tpot_slo))
        sanitize_kwargs = {"sanitize": True} if args.sanitize else {}
        if (args.pricing_cache is not None
                and args.policy != "fifo-exclusive"):
            sanitize_kwargs = dict(sanitize_kwargs,
                                   pricing_cache=args.pricing_cache)
        metrics, records = run_policy(
            trace, args.policy, num_instances=num_instances,
            num_nodes_per_instance=args.nodes, max_batch_size=args.max_batch,
            kv_budget_bytes=kv_budget, kv_mode=args.kv_mode,
            kv_block_size=args.kv_block_size,
            preemption_mode=args.preemption_mode,
            prefill_mode=args.prefill_mode,
            mixed_step_token_budget=args.mixed_step_token_budget,
            **sanitize_kwargs,
            **metrics_kwargs,
            **cluster_kwargs)
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    rows = [{"Metric": name, "Value": value}
            for name, value in metrics.summary().items()]
    print(format_table(rows, title=f"{title} — policy {args.policy!r}, "
                                   f"KV {metrics.kv_mode}, "
                                   f"prefill {metrics.prefill_mode}, "
                                   f"metrics {metrics.metrics_mode}"))
    if cluster_spec is not None and cluster_spec.is_heterogeneous:
        print()
        print(format_table(class_breakdown(metrics),
                           title=f"Per-class breakdown (router {args.router})"))
    if metrics.has_token_metrics:
        slo = metrics.slo_goodput_rps(args.ttft_slo, args.tpot_slo)
        print(f"\nSLO goodput (TTFT<={args.ttft_slo}s, TPOT<={args.tpot_slo}s): "
              f"{slo:.3f} req/s "
              f"({100 * metrics.slo_attainment(args.ttft_slo, args.tpot_slo):.1f}% "
              "of requests)")
    if args.trace == "multitenant" and metrics.has_token_metrics:
        if records:
            print()
            print(format_table(tenant_breakdown(records, tenants=trace.tenants),
                               title="Per-tenant breakdown"))
        else:
            print("\n(per-tenant breakdown needs per-request records; "
                  "re-run with --metrics-mode full)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serving.sweep import run_sweep

    def coerce(text: str) -> object:
        lowered = text.lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text

    grid: dict = {}
    for axis in args.grid:
        name, sep, values = axis.partition("=")
        if not sep or not name.strip() or not values:
            print(f"sweep: malformed --grid {axis!r} (want AXIS=V1|V2)",
                  file=sys.stderr)
            return 2
        grid[name.strip()] = [coerce(value) for value in values.split("|")]
    if not grid:
        # no axes: a single-config "sweep" of the base configuration
        grid = {"router": ["round_robin"]}
    base = {"policy": args.policy, "instances": args.instances,
            "max_batch_size": args.max_batch,
            "metrics_mode": args.metrics_mode}
    if args.pricing_cache is not None:
        base["pricing_cache"] = args.pricing_cache
    spec = {
        "trace": {"name": args.trace, "num_requests": args.requests,
                  "seed": args.seed},
        "base": base,
        "grid": grid,
    }
    try:
        outcome = run_sweep(spec, workers=args.workers)
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    if args.json:
        payload = [{"label": r.label, "seed": r.seed,
                    "summary": r.summary,
                    "failure": (None if r.failure is None
                                else {"error_type": r.failure.error_type,
                                      "message": r.failure.message})}
                   for r in outcome.results]
        print(json_module.dumps({"workers": outcome.workers,
                                 "wall_s": outcome.wall_s,
                                 "results": payload}, indent=2))
    else:
        rows = [{"Config": r.label,
                 "Requests": int(r.summary["requests"]),
                 "Makespan (s)": r.summary["makespan_s"],
                 "Throughput (tok/s)": r.summary["throughput_tok_s"],
                 "P99 latency (s)": r.summary["p99_latency_s"]}
                for r in outcome.results if r.ok and r.summary is not None]
        if rows:
            print(format_table(
                rows,
                title=f"Sweep: {len(outcome.results)} configs x "
                      f"{args.requests} {args.trace} requests "
                      f"({outcome.workers} worker(s), "
                      f"{outcome.wall_s:.2f}s wall)"))
    failures = outcome.failures
    for result in failures:
        failure = result.failure
        assert failure is not None  # mypy narrowing  # repro-lint: disable=R005
        print(f"sweep: config {result.label!r} failed: "
              f"{failure.error_type}: {failure.message}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all

    ids = None if args.experiments == ["all"] else args.experiments
    paths = export_all(args.output_dir, experiment_ids=ids)
    for experiment_id, path in sorted(paths.items()):
        print(f"{experiment_id}: {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LoopLynx reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("list", help="list reproducible artifacts")
    sub.set_defaults(func=_cmd_list)

    sub = subparsers.add_parser("experiment", help="regenerate a paper artifact")
    sub.add_argument("experiment_id", help="table1|table2|table3|fig5|fig7|fig8|all")
    sub.set_defaults(func=_cmd_experiment)

    sub = subparsers.add_parser("latency", help="per-token decode latency report")
    sub.add_argument("--nodes", type=int, default=2)
    sub.add_argument("--context", type=int, default=512)
    sub.set_defaults(func=_cmd_latency)

    sub = subparsers.add_parser("scenario", help="end-to-end request vs the A100")
    sub.add_argument("--nodes", type=int, default=2)
    sub.add_argument("--prefill", type=int, default=64)
    sub.add_argument("--decode", type=int, default=512)
    sub.set_defaults(func=_cmd_scenario)

    sub = subparsers.add_parser("scaling", help="node-count sweep")
    sub.add_argument("--max-nodes", type=int, default=8)
    sub.add_argument("--context", type=int, default=512)
    sub.set_defaults(func=_cmd_scaling)

    sub = subparsers.add_parser("utilization", help="area-utilization comparison")
    sub.add_argument("--context", type=int, default=512)
    sub.set_defaults(func=_cmd_utilization)

    sub = subparsers.add_parser(
        "serve", help="run a request trace through the token-level serving engine")
    sub.add_argument("--trace",
                     choices=("steady", "bursty", "multitenant", "multiturn"),
                     default="steady",
                     help="workload generator; 'multiturn' replays chat "
                          "sessions whose every turn re-sends the prior "
                          "transcript (the prefix-sharing workload)")
    sub.add_argument("--trace-file", default=None, metavar="CSV",
                     help="replay a recorded trace instead of generating "
                          "one: CSV rows of arrival_s,prompt_tokens,"
                          "output_tokens[,tenant] (Azure-LLM style)")
    sub.add_argument("--requests", type=int, default=40)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--policy",
                     choices=("fifo-exclusive", "fifo", "sjf", "priority"),
                     default="fifo")
    sub.add_argument("--instances", default="1",
                     help="pool shape: a plain count (homogeneous, with "
                          "--nodes) or a cluster spec of "
                          "<count>x<nodes>n[@<size>MiB][:<role>] entries — "
                          "'2x1n,2x2n,1x4n' mixes instance classes, "
                          "'2x2n@32MiB' overrides a class's KV budget, "
                          "'1x4n:prefill,4x1n:decode' disaggregates "
                          "prefill from decode (requires --kv-mode paged)")
    sub.add_argument("--nodes", type=int, default=2,
                     help="accelerator nodes per instance (plain-count "
                          "--instances only; cluster specs carry their own)")
    sub.add_argument("--router",
                     choices=("round_robin", "least_loaded", "kv_aware",
                              "class_affinity", "disaggregated",
                              "prefix_aware"),
                     default="round_robin",
                     help="cluster-routing policy for heterogeneous "
                          "--instances specs (single-class pools behave "
                          "identically under every router); 'disaggregated' "
                          "matches requests to prefill/decode roles; "
                          "'prefix_aware' prefers the instance caching the "
                          "longest prompt prefix (use with "
                          "--kv-prefix-sharing)")
    sub.add_argument("--swap-priority", action="store_true",
                     help="paged swap mode: resume an instance's own "
                          "swapped-out requests ahead of new admissions "
                          "(their KV is already paid for)")
    sub.add_argument("--max-batch", type=int, default=8,
                     help="decode-batch ceiling per instance")
    sub.add_argument("--kv-budget-mib", type=int, default=None,
                     help="per-node KV-cache budget (MiB); enables admission "
                          "control (reserve mode) and caps the block pool "
                          "(paged mode)")
    sub.add_argument("--kv-mode", choices=("reserve", "paged"),
                     default="reserve",
                     help="KV capacity regime: worst-case reservations "
                          "(PR 1 behaviour) or on-demand paged blocks")
    sub.add_argument("--kv-block-size", type=int, default=16,
                     help="cached token positions per paged KV block")
    sub.add_argument("--kv-prefix-sharing", action="store_true",
                     help="paged mode: content-hash full prompt blocks so "
                          "requests sharing a prompt prefix reuse cached "
                          "blocks (copy-on-write on divergence) and skip "
                          "the matched prefill tokens")
    sub.add_argument("--preemption-mode", choices=("swap", "recompute"),
                     default="swap",
                     help="paged-mode eviction: swap blocks to host over "
                          "PCIe and resume, or discard and recompute prefill")
    sub.add_argument("--prefill-mode", choices=("exclusive", "mixed"),
                     default="exclusive",
                     help="exclusive: a prefill chunk occupies a step on its "
                          "own, stalling co-resident decodes (historical "
                          "behaviour); mixed: prompts stream in alongside "
                          "live decodes under a per-step token budget")
    sub.add_argument("--mixed-step-token-budget", type=int, default=256,
                     help="token capacity of one mixed step (decode tokens "
                          "plus prefill-chunk tokens)")
    sub.add_argument("--metrics-mode", choices=("full", "streaming"),
                     default="full",
                     help="full: keep one record per request (exact "
                          "percentiles, default); streaming: constant-memory "
                          "aggregates with <=0.5%% percentile error — for "
                          "million-request traces (pins the SLO pair at "
                          "run time)")
    sub.add_argument("--sanitize", action="store_true",
                     help="shadow-validate engine invariants (event-time "
                          "monotonicity, KV block/refcount conservation, "
                          "request conservation) after every event; "
                          "read-only, output stays bit-identical (also "
                          "reachable via REPRO_SANITIZE=1)")
    sub.add_argument("--ttft-slo", type=float, default=2.0,
                     help="TTFT SLO in seconds for goodput reporting")
    sub.add_argument("--tpot-slo", type=float, default=0.05,
                     help="TPOT SLO in seconds for goodput reporting")
    sub.add_argument("--compare", action="store_true",
                     help="tabulate fifo-exclusive vs fifo vs sjf instead")
    sub.add_argument("--compare-kv", action="store_true",
                     help="tabulate reservation vs paged KV under the same "
                          "budget instead (needs --kv-budget-mib)")
    sub.add_argument("--compare-prefill", action="store_true",
                     help="tabulate exclusive vs mixed prefill under the "
                          "same configuration instead")
    sub.add_argument("--compare-router", action="store_true",
                     help="tabulate every cluster router on the same pool "
                          "instead (most interesting with a heterogeneous "
                          "--instances spec)")
    sub.add_argument("--compare-disaggregation", action="store_true",
                     help="tabulate a role-tagged --instances spec against "
                          "its colocated twin (same hardware, roles "
                          "stripped) instead; needs --kv-mode paged")
    sub.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for the --compare-* tables "
                          "(1 = in-process; results are bit-identical "
                          "either way)")
    sub.add_argument("--pricing-cache", default=None, metavar="DIR",
                     help="directory for the persistent pricing cache "
                          "(repeat runs start with warm price tables; "
                          "see docs/performance.md)")
    sub.set_defaults(func=_cmd_serve)

    sub = subparsers.add_parser(
        "sweep",
        help="expand a config grid and serve it, optionally in parallel")
    sub.add_argument("--trace",
                     choices=("azure", "bursty", "bursty_multi_tenant",
                              "multi_tenant", "multi_turn", "synthetic"),
                     default="azure",
                     help="trace recipe every config serves "
                          "(rebuilt per worker from --seed)")
    sub.add_argument("--requests", type=int, default=2000)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--policy", default="fifo")
    sub.add_argument("--instances", default="4x2n",
                     help="base cluster spec (a grid axis named "
                          "'instances' overrides it per config)")
    sub.add_argument("--max-batch", type=int, default=8)
    sub.add_argument("--metrics-mode", choices=("full", "streaming"),
                     default="streaming",
                     help="streaming keeps worker results small; "
                          "full keeps per-request percentiles exact")
    sub.add_argument("--grid", action="append", default=[],
                     metavar="AXIS=V1|V2",
                     help="one cartesian axis, pipe-separated values "
                          "(e.g. --grid 'router=round_robin|least_loaded' "
                          "--grid 'instances=8x2n|2x4n,4x2n'); repeatable, "
                          "axes multiply in the order given")
    sub.add_argument("--workers", type=int, default=1,
                     help="process-pool size (1 = serial in-process; "
                          "parallel results are bit-identical to serial)")
    sub.add_argument("--pricing-cache", default=None, metavar="DIR",
                     help="persistent pricing-cache directory shared by "
                          "all workers")
    sub.add_argument("--json", action="store_true",
                     help="emit the full per-config summaries as JSON "
                          "instead of a table")
    sub.set_defaults(func=_cmd_sweep)

    sub = subparsers.add_parser("export", help="save experiment results as JSON")
    sub.add_argument("experiments", nargs="+",
                     help="experiment ids (or 'all')")
    sub.add_argument("--output-dir", default="results")
    sub.set_defaults(func=_cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
