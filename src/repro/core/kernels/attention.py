"""Fused Multi-Head Attention (MHA) kernel.

Paper Fig. 6(b): two separate MAC hardware blocks — the first computes
attention scores against the cached keys streamed from HBM, the second mixes
the cached values with the softmax-weighted scores — plus a mask unit and a
softmax unit, forming a **head-wise task-level pipeline**.

Cycle model
-----------
Per transformer layer and per node (which owns ``heads_per_node`` heads under
the head-wise KV partition), each head requires:

* ``score``   — stream the head's K cache (``seq_len x head_dim`` int8) and
  MAC it against the query (memory bound on the key channels);
* ``softmax`` — two passes over the ``seq_len`` scores (global exponent sum,
  then the weighted scores) on ``softmax_lanes`` lanes;
* ``mix``     — stream the head's V cache and accumulate the weighted values
  (memory bound on the value channels).

The two MAC blocks work on different heads concurrently (score of head ``i``
overlaps with mixing of head ``i-1``).  Without the paper's head-wise
pipelining the softmax's two-pass dependency stalls the chain once per head;
with it, the softmax of head ``i-1`` hides behind the score computation of
head ``i`` and only the final head's softmax remains exposed (Fig. 4(b)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.resources import ResourceUsage, kernel_resources
from repro.model.layers import attention_single_head, softmax as softmax_ref

#: fixed pipeline latency of the exponent/normalisation datapath
SOFTMAX_FIXED_CYCLES = 24


@dataclass
class AttentionTiming:
    """Cycle decomposition of one layer's multi-head attention on one node."""

    total: float
    score_cycles_per_head: float
    softmax_cycles_per_head: float
    mix_cycles_per_head: float
    exposed_softmax_cycles: float
    heads_per_node: int
    seq_len: int

    def as_kernel_timing(self) -> KernelTiming:
        timing = KernelTiming(total=self.total)
        timing.add_component("attention_score",
                             self.score_cycles_per_head * self.heads_per_node)
        timing.add_component("attention_mix",
                             self.mix_cycles_per_head * self.heads_per_node)
        timing.add_component("softmax_exposed", self.exposed_softmax_cycles)
        return timing


class FusedMultiHeadAttentionKernel(MacroDataflowKernel):
    """The Fused MHA macro dataflow kernel of one accelerator node."""

    name = "fused_mha"

    def __init__(self, hardware: HardwareConfig) -> None:
        super().__init__(hardware)
        # split the MHA channels between the key-cache and value-cache MACs
        self.key_channels = max(1, hardware.mha_channels // 2)
        self.value_channels = max(1, hardware.mha_channels - self.key_channels)

    # ------------------------------------------------------------------
    # per-stage cycle helpers
    # ------------------------------------------------------------------
    def _cache_stream_cycles(self, seq_len: int, head_dim: int, channels: int,
                             bytes_per_element: int = 1) -> float:
        """Cycles to stream one head's K or V cache for ``seq_len`` positions."""
        per_channel = self.hardware.hbm_bytes_per_cycle_per_channel
        num_bytes = seq_len * head_dim * bytes_per_element
        memory = num_bytes / (channels * per_channel)
        compute = (seq_len * head_dim) / (channels * self.hardware.mac_group_size)
        return max(memory, compute)

    def softmax_cycles(self, seq_len: int) -> float:
        """Two-pass softmax over ``seq_len`` scores on the softmax unit."""
        if seq_len <= 0:
            return 0.0
        passes = 2 * math.ceil(seq_len / self.hardware.softmax_lanes)
        return passes + SOFTMAX_FIXED_CYCLES

    # ------------------------------------------------------------------
    # decode cycle model
    # ------------------------------------------------------------------
    def decode_layer_cycles(self, seq_len: int, heads_per_node: int, head_dim: int,
                            headwise_pipelining: bool = True,
                            bytes_per_element: int = 1) -> AttentionTiming:
        """Attention cycles of one transformer layer for one decode step."""
        if seq_len < 0:
            raise ValueError("negative sequence length")
        if heads_per_node <= 0 or head_dim <= 0:
            raise ValueError("heads_per_node and head_dim must be positive")
        seq_len = max(seq_len, 1)

        score = self._cache_stream_cycles(seq_len, head_dim, self.key_channels,
                                          bytes_per_element)
        mix = self._cache_stream_cycles(seq_len, head_dim, self.value_channels,
                                        bytes_per_element)
        smax = self.softmax_cycles(seq_len)
        fill = float(self.hardware.kernel_fill_overhead_cycles)

        if headwise_pipelining:
            # 3-stage head-wise pipeline: steady state is governed by the
            # slowest stage, softmax exposed only for the final head
            steady = (heads_per_node - 1) * max(score, mix, smax)
            total = score + mix + smax + steady + fill
            exposed_softmax = smax + max(0.0, (heads_per_node - 1)
                                         * max(smax - max(score, mix), 0.0))
        else:
            # the two-pass softmax stalls the chain once per head; score and
            # mix still overlap across consecutive heads
            steady = (heads_per_node - 1) * max(score, mix)
            exposed_softmax = heads_per_node * smax
            total = score + mix + steady + exposed_softmax + fill

        timing = AttentionTiming(
            total=total,
            score_cycles_per_head=score,
            softmax_cycles_per_head=smax,
            mix_cycles_per_head=mix,
            exposed_softmax_cycles=exposed_softmax,
            heads_per_node=heads_per_node,
            seq_len=seq_len,
        )
        self.record(timing.as_kernel_timing())
        return timing

    # ------------------------------------------------------------------
    # prefill cycle model
    # ------------------------------------------------------------------
    def prefill_layer_cycles(self, prompt_len: int, heads_per_node: int,
                             head_dim: int, headwise_pipelining: bool = True,
                             bytes_per_element: int = 1) -> AttentionTiming:
        """Attention cycles of one layer for a batched prefill pass.

        Causal attention over a prompt of ``P`` positions touches on average
        ``(P + 1) / 2`` cached positions per query, so the pass costs
        approximately ``P`` decode steps at the average context length.
        """
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        average_context = max(1, (prompt_len + 1) // 2)
        single = self.decode_layer_cycles(average_context, heads_per_node, head_dim,
                                          headwise_pipelining, bytes_per_element)
        # queries stream back-to-back through the same head-wise pipeline;
        # fill overhead is paid once
        fill = float(self.hardware.kernel_fill_overhead_cycles)
        steady = (single.total - fill) * prompt_len
        timing = AttentionTiming(
            total=steady + fill,
            score_cycles_per_head=single.score_cycles_per_head * prompt_len,
            softmax_cycles_per_head=single.softmax_cycles_per_head * prompt_len,
            mix_cycles_per_head=single.mix_cycles_per_head * prompt_len,
            exposed_softmax_cycles=single.exposed_softmax_cycles * prompt_len,
            heads_per_node=heads_per_node,
            seq_len=prompt_len,
        )
        return timing

    # ------------------------------------------------------------------
    # functional datapath
    # ------------------------------------------------------------------
    def functional_decode_attention(self, query: np.ndarray, keys: np.ndarray,
                                    values: np.ndarray) -> np.ndarray:
        """Head-by-head attention for one query token, as the hardware
        pipeline computes it.

        Shapes: ``query [heads, head_dim]``, ``keys/values [heads, seq, head_dim]``.
        Returns ``[heads, head_dim]``.  Equivalent to the reference multi-head
        attention restricted to this node's heads.
        """
        query = np.asarray(query, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if query.ndim != 2 or keys.ndim != 3 or values.ndim != 3:
            raise ValueError("expected query [H, hd], keys/values [H, seq, hd]")
        if keys.shape != values.shape or keys.shape[0] != query.shape[0]:
            raise ValueError("inconsistent head counts")
        outputs = np.zeros_like(query)
        for head in range(query.shape[0]):
            outputs[head] = attention_single_head(query[head], keys[head], values[head])
        return outputs

    def functional_masked_scores(self, scores: np.ndarray, valid_len: int) -> np.ndarray:
        """Mask unit: keep only forward (already generated) positions."""
        scores = np.asarray(scores, dtype=np.float64).copy()
        if valid_len < 0 or valid_len > scores.shape[-1]:
            raise ValueError("valid_len out of range")
        scores[..., valid_len:] = -1e30
        return scores

    def functional_softmax(self, scores: np.ndarray) -> np.ndarray:
        """Softmax unit (two passes: exponent sum, then weighting)."""
        return softmax_ref(scores, axis=-1)

    def resource_usage(self) -> ResourceUsage:
        return kernel_resources("fused_mha")
