"""Base class and timing record shared by all macro dataflow kernels."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import HardwareConfig
from repro.core.resources import ResourceUsage


@dataclass
class KernelTiming:
    """Cycle count of one kernel invocation, split into components.

    ``total`` is the wall-clock cycles the invocation occupies on the
    kernel's critical path; the component fields explain where they go and
    are what the breakdown analysis aggregates.  Components need not sum to
    ``total`` because overlapped work only contributes its exposed share.
    """

    total: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    def add_component(self, name: str, cycles: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + float(cycles)

    def component(self, name: str) -> float:
        return self.components.get(name, 0.0)

    def merge(self, other: "KernelTiming") -> None:
        self.total += other.total
        for name, cycles in other.components.items():
            self.add_component(name, cycles)


class MacroDataflowKernel(ABC):
    """A large dataflow kernel reused temporally by the scheduler.

    Concrete kernels provide cycle models parameterised by the per-node
    :class:`~repro.core.config.HardwareConfig` and report the FPGA resources
    they occupy (used by the Fig. 7 / Table II resource reproduction).
    """

    name: str = "kernel"

    def __init__(self, hardware: HardwareConfig) -> None:
        self.hardware = hardware
        self.invocations = 0
        self.total_cycles = 0.0

    def record(self, timing: KernelTiming) -> KernelTiming:
        """Book-keeping hook: accumulate per-kernel utilization statistics."""
        self.invocations += 1
        self.total_cycles += timing.total
        return timing

    def reset_stats(self) -> None:
        self.invocations = 0
        self.total_cycles = 0.0

    @abstractmethod
    def resource_usage(self) -> ResourceUsage:
        """FPGA resources occupied by one instance of this kernel."""

    def utilization(self, elapsed_cycles: float) -> float:
        """Busy fraction of this kernel over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(self.total_cycles / elapsed_cycles, 1.0)
