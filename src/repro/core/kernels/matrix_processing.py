"""Fused Matrix Processing (MP) kernel.

Paper Fig. 6(a): DMA engines + matrix-processing unit (MPU) + quantization
unit + router, all connected through FIFOs.  The MPU performs block
matrix-vector multiplication of the tiled weight matrix
``W in Z^{l_embed/n x l_embed}`` against the embedding vector; it consists of
``n_channel`` MP slices (one per HBM channel, behind a DMA engine), each with
``n_group = 32`` MAC units.

Cycle model
-----------
During decode the linear layers are **memory bound**: every weight byte is
read from HBM exactly once per token, and one MAC is performed per weight
byte, so the streaming time of the weights over the engaged channels governs
the latency.  The model therefore takes the maximum of

* the DMA streaming time of the per-node weight shard, and
* the MAC time of the per-node MACs at ``n_channel * n_group`` MACs/cycle

and adds the pipeline fill/drain overhead of the dataflow region and the
exposed drain of the quantization unit.  For prefill (``batch_tokens > 1``)
the same weights are reused across the batched tokens, so the compute term
scales with the batch while the memory term does not — this is what makes
prefill relatively cheap per token and reproduces the GPU's remaining
advantage at large prefill/small decode settings (Fig. 8, ``[128:32]``).

Functional model
----------------
``functional_linear`` executes the same tiled int8 arithmetic (per-slice
GEMV, wide accumulation, bias-add/requantize in the quantization unit) and is
checked against the NumPy W8A8 reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.kernels.dma import DmaEngine
from repro.core.kernels.quantization_unit import QuantizationUnit
from repro.core.resources import ResourceUsage, kernel_resources
from repro.model.config import LinearLayerSpec
from repro.quant.gemm import tiled_int8_gemv


@dataclass
class MatrixOpTiming:
    """Cycle decomposition of one linear-layer execution on one node."""

    total: float
    memory_cycles: float
    compute_cycles: float
    fill_overhead_cycles: float
    quant_drain_cycles: float
    num_blocks: int
    out_features_node: int
    weight_bytes_node: int

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_cycles >= self.compute_cycles

    @property
    def steady_state_cycles(self) -> float:
        """Cycles of the overlapped DMA/MAC steady state (without fill/drain)."""
        return max(self.memory_cycles, self.compute_cycles)

    @property
    def per_block_compute_cycles(self) -> float:
        """Average steady-state cycles per output block — the window available
        for hiding the ring synchronization of the previous block."""
        if self.num_blocks <= 0:
            return 0.0
        return self.steady_state_cycles / self.num_blocks

    def as_kernel_timing(self) -> KernelTiming:
        timing = KernelTiming(total=self.total)
        timing.add_component("linear_memory", self.memory_cycles)
        timing.add_component("linear_compute", self.compute_cycles)
        timing.add_component("kernel_fill", self.fill_overhead_cycles)
        timing.add_component("quantization_drain", self.quant_drain_cycles)
        return timing


class FusedMatrixProcessingKernel(MacroDataflowKernel):
    """The Fused MP macro dataflow kernel of one accelerator node."""

    name = "fused_mp"

    def __init__(self, hardware: HardwareConfig) -> None:
        super().__init__(hardware)
        self.dma = DmaEngine(hardware, num_channels=hardware.mp_channels)
        self.quant_unit = QuantizationUnit(hardware)

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def out_features_on_node(self, spec: LinearLayerSpec, num_nodes: int) -> int:
        """Output features this node computes under output-dimension model
        parallelism."""
        return spec.out_features_per_node(num_nodes)

    def num_output_blocks(self, spec: LinearLayerSpec, num_nodes: int) -> int:
        """Output blocks the per-node shard is tiled into: one block per
        ``n_channel * n_group`` output rows (each MAC unit owns one row of the
        block at a time)."""
        rows_per_block = self.hardware.mp_channels * self.hardware.mac_group_size
        return max(1, math.ceil(self.out_features_on_node(spec, num_nodes) / rows_per_block))

    # ------------------------------------------------------------------
    # cycle model
    # ------------------------------------------------------------------
    def linear_op_cycles(self, spec: LinearLayerSpec, num_nodes: int = 1,
                         batch_tokens: int = 1,
                         bytes_per_weight: int = 1) -> MatrixOpTiming:
        """Cycle cost of one linear layer on one node.

        Parameters
        ----------
        spec:
            The linear layer (dimensions).
        num_nodes:
            Model-parallel width; the node computes ``out_features / num_nodes``
            output features but reads the full input vector.
        batch_tokens:
            Tokens processed against the same weights (1 during decode; the
            prompt length during a batched prefill pass).
        bytes_per_weight:
            1 for W8A8.
        """
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if batch_tokens <= 0:
            raise ValueError("batch_tokens must be positive")
        hardware = self.hardware
        out_node = self.out_features_on_node(spec, num_nodes)
        weight_bytes = out_node * spec.in_features * bytes_per_weight
        macs = out_node * spec.in_features * batch_tokens

        memory_cycles = weight_bytes / hardware.mp_bytes_per_cycle
        compute_cycles = macs / hardware.macs_per_cycle
        fill = float(hardware.kernel_fill_overhead_cycles)
        rows_per_block = hardware.mp_channels * hardware.mac_group_size
        drain = self.quant_unit.throughput_cycles(min(out_node, rows_per_block)) * batch_tokens
        blocks = self.num_output_blocks(spec, num_nodes)

        total = max(memory_cycles, compute_cycles) + fill + drain
        timing = MatrixOpTiming(
            total=total,
            memory_cycles=memory_cycles,
            compute_cycles=compute_cycles,
            fill_overhead_cycles=fill,
            quant_drain_cycles=float(drain),
            num_blocks=blocks,
            out_features_node=out_node,
            weight_bytes_node=weight_bytes,
        )
        self.record(timing.as_kernel_timing())
        return timing

    def weight_bytes_per_token(self, specs, num_nodes: int = 1,
                               bytes_per_weight: int = 1) -> int:
        """HBM weight traffic of one node for one token across ``specs``."""
        return sum(self.out_features_on_node(spec, num_nodes) * spec.in_features
                   * bytes_per_weight for spec in specs)

    # ------------------------------------------------------------------
    # functional datapath
    # ------------------------------------------------------------------
    def functional_linear(self, weight_q: np.ndarray, activation_q: np.ndarray,
                          activation_scale: float, weight_scale: np.ndarray,
                          bias: Optional[np.ndarray] = None,
                          output_scale: Optional[float] = None) -> np.ndarray:
        """Execute one linear layer exactly as the hardware does.

        The weight shard is processed in per-slice row tiles
        (``mac_group_size`` rows at a time per slice), each MAC accumulating
        over the full input vector; the quantization unit then performs the
        bias addition and either requantizes to int8 (``output_scale`` given)
        or dequantizes to float.
        """
        weight_q = np.asarray(weight_q)
        activation_q = np.asarray(activation_q)
        if weight_q.dtype != np.int8 or activation_q.dtype != np.int8:
            raise TypeError("functional_linear expects int8 weight and activations")
        tile_rows = self.hardware.mp_channels * self.hardware.mac_group_size
        accumulator = tiled_int8_gemv(weight_q, activation_q, tile_rows=tile_rows)
        if output_scale is not None:
            return self.quant_unit.requantize(accumulator, activation_scale,
                                              weight_scale, output_scale, bias)
        return self.quant_unit.dequantize_accumulator(accumulator, activation_scale,
                                                      weight_scale, bias)

    def resource_usage(self) -> ResourceUsage:
        return kernel_resources("fused_mp")
