"""Fused LayerNorm & Residual (LN&Res) kernel.

The paper observes that the operators on the critical path between linear
layers and attention — residual connections and layer normalization — matter
as much as the matrix multiplications for end-to-end latency, because they
cannot be distributed across nodes.  The Fused LN&Res kernel parallelizes
them over a small number of lanes and overlaps the residual addition with the
layer-norm statistics passes (Fig. 4(a)), achieving an ~11% end-to-end
improvement at modest resource cost (Fig. 5(b)).

Cycle model
-----------
A layer normalization over ``d`` elements takes ``layernorm_passes`` passes
(mean, variance, normalize); a residual addition and a GELU take one pass.
The un-optimized baseline runs one element per cycle per pass with no
overlap; with the critical-path fusion enabled, the configured parallelism is
applied and the residual pass is hidden under the layer-norm passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.resources import ResourceUsage, kernel_resources
from repro.model.layers import gelu as gelu_ref, layer_norm as layer_norm_ref


class FusedLayerNormResidualKernel(MacroDataflowKernel):
    """Critical-path operator kernel: layer norm, residual add, GELU, bias."""

    name = "fused_ln_res"

    #: fixed pipeline latency of the divide/sqrt datapath
    FIXED_LATENCY_CYCLES = 32

    def __init__(self, hardware: HardwareConfig) -> None:
        super().__init__(hardware)

    # ------------------------------------------------------------------
    # cycle model
    # ------------------------------------------------------------------
    def _lanes(self, optimized: bool) -> int:
        return self.hardware.critical_path_parallelism if optimized else 1

    def layer_norm_cycles(self, d_model: int, optimized: bool = True) -> float:
        """Cycles of one layer normalization over ``d_model`` elements."""
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        lanes = self._lanes(optimized)
        per_pass = math.ceil(d_model / lanes)
        return self.hardware.layernorm_passes * per_pass + self.FIXED_LATENCY_CYCLES

    def residual_cycles(self, d_model: int, optimized: bool = True) -> float:
        """Cycles of one residual addition (exposed share).

        With the fusion enabled the residual add streams concurrently with the
        layer-norm statistics passes and is fully hidden; without it, the add
        runs element-serial after the layer norm.
        """
        if d_model <= 0:
            raise ValueError("d_model must be positive")
        if optimized:
            return 0.0
        return float(d_model)

    def elementwise_cycles(self, num_elements: int, optimized: bool = True) -> float:
        """Cycles of a generic element-wise pass (GELU, bias add, scaling)."""
        if num_elements < 0:
            raise ValueError("negative element count")
        lanes = self._lanes(optimized)
        return math.ceil(num_elements / lanes)

    def fused_block_cycles(self, d_model: int, optimized: bool = True) -> KernelTiming:
        """One LN + residual group (as invoked twice per transformer block)."""
        timing = KernelTiming()
        ln = self.layer_norm_cycles(d_model, optimized)
        res = self.residual_cycles(d_model, optimized)
        timing.total = ln + res
        timing.add_component("layer_norm", ln)
        timing.add_component("residual", res)
        return self.record(timing)

    # ------------------------------------------------------------------
    # functional datapath
    # ------------------------------------------------------------------
    def functional_layer_norm(self, x: np.ndarray, gamma: np.ndarray,
                              beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
        return layer_norm_ref(x, gamma, beta, eps)

    def functional_residual(self, x: np.ndarray, residual: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64) + np.asarray(residual, dtype=np.float64)

    def functional_gelu(self, x: np.ndarray) -> np.ndarray:
        return gelu_ref(x)

    def resource_usage(self) -> ResourceUsage:
        return kernel_resources("fused_ln_res")
