"""Macro dataflow kernels (MDKs) of the LoopLynx accelerator.

Each kernel groups all hardware of one functional class into a single large
dataflow region (paper Fig. 3(c.2) and Fig. 6), which the temporal scheduler
then reuses across the stages of a transformer block:

* :class:`~repro.core.kernels.matrix_processing.FusedMatrixProcessingKernel`
  — DMA engines + matrix-processing unit (MPU) + quantization unit + router;
  executes every linear layer (QKV, attention projection, MLP fc / proj).
* :class:`~repro.core.kernels.attention.FusedMultiHeadAttentionKernel`
  — two MAC blocks (scores, token mixing), mask unit, softmax unit, forming a
  head-wise task-level pipeline.
* :class:`~repro.core.kernels.layernorm_residual.FusedLayerNormResidualKernel`
  — parallelized layer normalization overlapped with the residual addition.
* :class:`~repro.core.kernels.quantization_unit.QuantizationUnit`
  — bias addition + requantization back to int8.
* :class:`~repro.core.kernels.dma.DmaEngine` — burst-mode HBM access.
* :class:`~repro.core.kernels.router.RouterKernel` — the per-node view of the
  ring network synchronization.

Every kernel exposes a cycle model (``*_cycles`` methods), a resource
estimate (``resource_usage``), and where meaningful a functional datapath
used by the correctness tests.
"""

from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.kernels.dma import DmaEngine
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel, MatrixOpTiming
from repro.core.kernels.attention import AttentionTiming, FusedMultiHeadAttentionKernel
from repro.core.kernels.layernorm_residual import FusedLayerNormResidualKernel
from repro.core.kernels.quantization_unit import QuantizationUnit
from repro.core.kernels.router import RouterKernel

__all__ = [
    "KernelTiming",
    "MacroDataflowKernel",
    "DmaEngine",
    "FusedMatrixProcessingKernel",
    "MatrixOpTiming",
    "AttentionTiming",
    "FusedMultiHeadAttentionKernel",
    "FusedLayerNormResidualKernel",
    "QuantizationUnit",
    "RouterKernel",
]
