"""Router kernel: the per-node view of the ring-network synchronization.

Each node's router (Fig. 6(c)) operates in simplex mode: per round it writes
``n`` datapacks to its successor and reads ``n`` datapacks from its
predecessor, placing received datapacks into the shared buffer at an offset
derived from the originating node id.  ``N - 1`` rounds fully synchronize the
per-node output sub-vectors.

The kernel wraps :class:`repro.network.ring.RingNetwork` for the cycle cost
(with or without the transmission-latency-hiding optimization) and
:class:`repro.network.ring.RingAllGather` for the functional data movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.resources import ResourceUsage, kernel_resources
from repro.network.link import LinkConfig
from repro.network.ring import RingAllGather, RingNetwork, RingSyncResult


class RouterKernel(MacroDataflowKernel):
    """Ring router of one accelerator node (modelled at system granularity).

    The router is instantiated once per node in hardware; for the cycle model
    it is more convenient to reason about one synchronization of the whole
    ring (all routers progress in lock-step), so this class carries the ring
    configuration and exposes per-synchronization costs.
    """

    name = "router"

    def __init__(self, hardware: HardwareConfig, num_nodes: int,
                 link: Optional[LinkConfig] = None,
                 inter_card_link: Optional[LinkConfig] = None,
                 nodes_per_card: int = 2) -> None:
        super().__init__(hardware)
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.nodes_per_card = nodes_per_card
        self.link = link or LinkConfig()
        self.inter_card_link = inter_card_link or LinkConfig(hop_latency_cycles=512)
        effective = self._effective_link()
        self.ring = RingNetwork(num_nodes, config=effective)

    def _effective_link(self) -> LinkConfig:
        """Link parameters used for the lock-step ring rounds.

        When the ring spans several cards, every round is as slow as its
        slowest hop, so the inter-card hop latency applies to the round while
        bandwidth stays at the per-link peak.
        """
        crosses_cards = self.num_nodes > self.nodes_per_card
        if not crosses_cards:
            return self.link
        return LinkConfig(
            bandwidth_bytes_per_s=min(self.link.bandwidth_bytes_per_s,
                                      self.inter_card_link.bandwidth_bytes_per_s),
            clock_hz=self.link.clock_hz,
            hop_latency_cycles=self.inter_card_link.hop_latency_cycles,
            datapack_bytes=self.link.datapack_bytes,
        )

    # ------------------------------------------------------------------
    # cycle model
    # ------------------------------------------------------------------
    def synchronize(self, subvector_bytes: int, compute_cycles: float = 0.0,
                    blocks: int = 1, hide_transfers: bool = True) -> RingSyncResult:
        """Cycle cost of synchronizing per-node sub-vectors of
        ``subvector_bytes`` bytes, optionally hidden behind ``compute_cycles``
        of block-matrix computation split into ``blocks`` blocks."""
        result = self.ring.synchronize(subvector_bytes, compute_cycles=compute_cycles,
                                       blocks=blocks, hide_transfers=hide_transfers)
        timing = KernelTiming(total=result.exposed_cycles)
        timing.add_component("ring_sync_exposed", result.exposed_cycles)
        timing.add_component("ring_sync_hidden", result.hidden_cycles)
        self.record(timing)
        return result

    def exposed_sync_cycles(self, subvector_bytes: int) -> float:
        """Fully exposed all-gather cost (no hiding) — the ablation case."""
        return self.ring.allgather_cycles(subvector_bytes)

    # ------------------------------------------------------------------
    # functional datapath
    # ------------------------------------------------------------------
    def functional_allgather(self, subvectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run the offset-based ring all-gather on int8 sub-vectors and return
        the gathered vector held by every node."""
        arrays = [np.asarray(v) for v in subvectors]
        if len(arrays) != self.num_nodes:
            raise ValueError(f"expected {self.num_nodes} sub-vectors, got {len(arrays)}")
        length = arrays[0].shape[0]
        gather = RingAllGather(self.num_nodes, length,
                               datapack_bytes=self.link.datapack_bytes)
        gathered = gather.run(arrays)
        if not gather.buffers_consistent():
            raise RuntimeError("ring all-gather produced inconsistent buffers")
        return gathered

    def resource_usage(self) -> ResourceUsage:
        # the router and shared buffer are accounted in the "other" row
        return kernel_resources("other")
