"""DMA engine model.

Each MP slice of the matrix-processing unit is fed by a DMA engine that runs
in burst mode and loads concatenated ``n_group x 8-bit`` datapacks from its
HBM channel.  The model here converts a striped weight/cache transfer into
cycles using the :class:`~repro.memory.hbm.HbmSubsystem` accounting, and
reports the burst length chosen to keep the channel efficient (the paper sets
``n_group = 32`` explicitly "to ensure a sufficient burst size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.resources import ResourceUsage, kernel_resources
from repro.memory.hbm import HbmConfig, HbmSubsystem


class DmaEngine(MacroDataflowKernel):
    """Burst-mode DMA engines striping a transfer across HBM channels."""

    name = "dma"

    def __init__(self, hardware: HardwareConfig, num_channels: Optional[int] = None) -> None:
        super().__init__(hardware)
        self.num_channels = num_channels or hardware.mp_channels
        self._subsystem = HbmSubsystem(hardware.hbm, self.num_channels)

    # ------------------------------------------------------------------
    @property
    def bytes_per_cycle(self) -> float:
        """Effective aggregate bytes per cycle across the engaged channels."""
        return (self.num_channels * self.hardware.hbm.bytes_per_cycle
                * self.hardware.hbm_efficiency)

    def burst_beats(self, row_bytes: int) -> int:
        """Burst length (in datapack beats) used to stream one weight row."""
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        return max(1, row_bytes // self.hardware.mac_group_size)

    def stream_cycles(self, total_bytes: int, row_bytes: Optional[int] = None) -> KernelTiming:
        """Cycles to stream ``total_bytes`` striped across the channels.

        ``row_bytes`` (the contiguous burst unit, e.g. one weight-matrix row
        per MP slice) controls how much per-request overhead is amortized.
        """
        if total_bytes < 0:
            raise ValueError("negative transfer size")
        timing = KernelTiming()
        if total_bytes == 0:
            return self.record(timing)
        burst = self.burst_beats(row_bytes) if row_bytes else None
        raw = self._subsystem.striped_read_cycles(total_bytes, burst_length_beats=burst)
        # the hbm_efficiency factor models sustained-vs-peak derating beyond
        # the explicit per-request overhead already accounted by the subsystem
        cycles = raw / self.hardware.hbm_efficiency
        timing.total = cycles
        timing.add_component("hbm_read", cycles)
        return self.record(timing)

    def traffic_bytes(self) -> float:
        return self._subsystem.traffic_summary()["bytes_read"]

    def resource_usage(self) -> ResourceUsage:
        return kernel_resources("dma")
