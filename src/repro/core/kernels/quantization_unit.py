"""Quantization unit: bias addition + requantization to int8.

Inside the Fused MP kernel, MAC accumulators are packed and handed to the
quantization unit, which adds the bias and requantizes the int32 accumulator
back to int8 before the datapacks are forwarded to the router.  Because the
unit sits behind the MPU in the same dataflow region, its per-element work is
hidden in steady state; only the drain of the final output block is exposed
(the paper cites exactly this exposure as one reason the 4-node configuration
scales sub-linearly).

The class provides both the cycle model (throughput + drain) and the
functional requantization used by the datapath tests.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.base import KernelTiming, MacroDataflowKernel
from repro.core.resources import ResourceUsage, kernel_resources
from repro.quant.int8 import requantize_int32


class QuantizationUnit(MacroDataflowKernel):
    """Bias-add + requantize stage of the Fused MP kernel."""

    name = "quantization_unit"

    def __init__(self, hardware: HardwareConfig, lanes: Optional[int] = None) -> None:
        super().__init__(hardware)
        # one lane per MP slice: the unit matches the MPU's result rate
        self.lanes = lanes or hardware.mp_channels

    # ------------------------------------------------------------------
    # cycle model
    # ------------------------------------------------------------------
    def throughput_cycles(self, num_elements: int) -> float:
        """Cycles to requantize ``num_elements`` outputs at full rate."""
        if num_elements < 0:
            raise ValueError("negative element count")
        return math.ceil(num_elements / self.lanes)

    def drain_cycles(self, block_elements: int) -> KernelTiming:
        """Exposed cycles to drain the final output block after the MPU has
        finished its last MACs (pipeline tail)."""
        timing = KernelTiming()
        cycles = self.throughput_cycles(block_elements)
        timing.total = cycles
        timing.add_component("quantization_drain", cycles)
        return self.record(timing)

    # ------------------------------------------------------------------
    # functional datapath
    # ------------------------------------------------------------------
    def requantize(self, accumulator: np.ndarray, input_scale: float,
                   weight_scale: Union[float, np.ndarray], output_scale: float,
                   bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Hardware requantization: int32/int64 accumulator -> int8 output."""
        return requantize_int32(accumulator, input_scale, weight_scale,
                                output_scale, bias)

    def dequantize_accumulator(self, accumulator: np.ndarray, input_scale: float,
                               weight_scale: Union[float, np.ndarray],
                               bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Bias-add + dequantize to float (the path used when the next
        operator — layer norm, softmax — consumes floats)."""
        accumulator = np.asarray(accumulator, dtype=np.int64)
        weight_scale = np.asarray(weight_scale, dtype=np.float64)
        real = accumulator.astype(np.float64) * float(input_scale) * weight_scale
        if bias is not None:
            real = real + np.asarray(bias, dtype=np.float64)
        return real

    def resource_usage(self) -> ResourceUsage:
        # the quantization unit is part of the "other kernels / buffer" row
        return kernel_resources("other")
