"""LoopLynx core: the paper's primary contribution.

The hybrid spatial-temporal dataflow architecture is modelled at three levels:

* **kernels** (:mod:`repro.core.kernels`) — cycle + functional models of the
  macro dataflow kernels (Fused MP, Fused MHA, Fused LN&Res, quantization
  unit, DMA, router);
* **scheduler** (:mod:`repro.core.scheduler`) — the temporal state machine
  that reuses those kernels across the stages of a transformer block;
* **system** (:mod:`repro.core.accelerator`, :mod:`repro.core.multi_node`) —
  per-node composition and the N-node ring-connected deployment with host
  interaction, scenario runs and throughput reporting.

:mod:`repro.core.functional` executes real int8 data through the same
structure and is validated against the NumPy GPT-2 reference;
:mod:`repro.core.resources` carries the FPGA resource model.
"""

from repro.core.accelerator import AcceleratorNode
from repro.core.config import (
    HardwareConfig,
    OptimizationConfig,
    SystemConfig,
    alveo_u50_node,
    paper_system,
)
from repro.core.multi_node import (
    LoopLynxSystem,
    ScenarioReport,
    TokenLatencyReport,
)
from repro.core.resources import (
    ALVEO_U50_CAPACITY,
    ALVEO_U280_CAPACITY,
    ResourceUsage,
    component_table,
    device_resources,
    kernel_resources,
    node_resources,
    system_resources,
)
from repro.core.scheduler import KernelScheduler, Stage, transformer_block_schedule

__all__ = [
    "AcceleratorNode",
    "HardwareConfig",
    "OptimizationConfig",
    "SystemConfig",
    "alveo_u50_node",
    "paper_system",
    "LoopLynxSystem",
    "ScenarioReport",
    "TokenLatencyReport",
    "ALVEO_U50_CAPACITY",
    "ALVEO_U280_CAPACITY",
    "ResourceUsage",
    "component_table",
    "device_resources",
    "kernel_resources",
    "node_resources",
    "system_resources",
    "KernelScheduler",
    "Stage",
    "transformer_block_schedule",
]
