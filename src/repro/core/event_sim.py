"""Event-driven simulation of the macro dataflow kernels.

The analytical cycle models in :mod:`repro.core.kernels` compose per-stage
costs with closed-form pipeline formulas.  This module rebuilds the same
kernels as *processes* on the discrete-event engine — DMA engines streaming
weight blocks through FIFOs into the MPU, the MPU overlapping MACs with the
next block's loads, the quantization unit and router draining behind it, and
the head-wise score → softmax → mix pipeline of the MHA kernel — and measures
the schedule the engine actually produces.

Its purpose is validation and visualisation:

* the integration tests assert that the event-driven makespan of a linear
  layer / an attention layer matches the analytical
  :class:`~repro.core.kernels.matrix_processing.MatrixOpTiming` /
  :class:`~repro.core.kernels.attention.AttentionTiming` within a small
  tolerance, so the closed-form model used by the evaluation is backed by an
  executable schedule;
* the traces it records feed the utilization / Gantt analysis that reproduces
  the paper's Fig. 3 argument about temporal vs. spatial vs. hybrid area
  utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import HardwareConfig
from repro.core.kernels.attention import FusedMultiHeadAttentionKernel
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel, MatrixOpTiming
from repro.dataflow.engine import SimulationEngine
from repro.dataflow.fifo import Fifo
from repro.dataflow.trace import TraceRecorder
from repro.model.config import LinearLayerSpec

from repro.errors import InvariantError


@dataclass
class EventSimResult:
    """Outcome of one event-driven kernel simulation."""

    total_cycles: int
    trace: TraceRecorder
    items: int

    def unit_busy_cycles(self, unit: str) -> int:
        return self.trace.busy_cycles(unit)

    def utilization(self) -> Dict[str, float]:
        return self.trace.utilization(self.total_cycles)


class EventDrivenMatrixKernel:
    """The Fused MP kernel as a four-stage dataflow process network.

    Stages (each a free-running process connected by depth-2 FIFOs, exactly
    like the HLS dataflow region): DMA block load -> MPU block MAC ->
    quantization -> router/output.  The weight shard is split into the same
    output blocks the analytical model uses, so the two can be compared
    block-for-block.
    """

    def __init__(self, hardware: HardwareConfig) -> None:
        self.hardware = hardware
        self._analytical = FusedMatrixProcessingKernel(hardware)

    # ------------------------------------------------------------------
    def _block_geometry(self, spec: LinearLayerSpec, num_nodes: int
                        ) -> Tuple[int, int, int]:
        """Return (num_blocks, block_rows, out_features_node)."""
        out_node = self._analytical.out_features_on_node(spec, num_nodes)
        rows_per_block = self.hardware.mp_channels * self.hardware.mac_group_size
        num_blocks = max(1, math.ceil(out_node / rows_per_block))
        return num_blocks, rows_per_block, out_node

    #: chunks each output block is split into for the DMA -> MPU handoff.
    #: The hardware streams datapacks continuously, so the coarser the chunk,
    #: the more artificial drain the event model adds; 16 keeps the schedule
    #: within a few percent of the streaming behaviour while staying cheap.
    CHUNKS_PER_BLOCK = 16

    def simulate_linear(self, spec: LinearLayerSpec, num_nodes: int = 1,
                        batch_tokens: int = 1) -> EventSimResult:
        """Run one linear-layer invocation through the event-driven pipeline."""
        hardware = self.hardware
        num_blocks, rows_per_block, out_node = self._block_geometry(spec, num_nodes)
        trace = TraceRecorder()
        engine = SimulationEngine()

        load_fifo = Fifo(depth=2, name="dma_to_mpu")
        mac_fifo = Fifo(depth=2, name="mpu_to_quant")
        quant_fifo = Fifo(depth=2, name="quant_to_router")

        # per-chunk costs: the weight shard streams as fine-grained chunks so
        # the MPU consumes data while the DMA keeps loading (intra-block
        # pipelining of the HLS dataflow region)
        num_chunks = num_blocks * self.CHUNKS_PER_BLOCK
        bytes_total = out_node * spec.in_features
        macs_total = out_node * spec.in_features * batch_tokens
        chunk_load = max(1, int(round(bytes_total / hardware.mp_bytes_per_cycle
                                      / num_chunks)))
        chunk_mac = max(1, int(round(macs_total / hardware.macs_per_cycle
                                     / num_chunks)))
        chunk_quant = max(1, int(math.ceil(out_node * batch_tokens
                                           / hardware.mp_channels / num_chunks)))
        fill = int(hardware.kernel_fill_overhead_cycles)

        def dma_process():
            trace.record("dma", "start", engine.now)
            # DMA setup / address generation before the first burst
            yield ("wait", fill // 2)
            for index in range(num_chunks):
                yield ("wait", chunk_load)
                yield from load_fifo.push(index)
            load_fifo.close()
            trace.record("dma", "stop", engine.now)

        def mpu_process():
            trace.record("mpu", "start", engine.now)
            while True:
                item = yield from load_fifo.pop_or_none()
                if item is None:
                    break
                yield ("wait", chunk_mac)
                yield from mac_fifo.push(item)
            mac_fifo.close()
            trace.record("mpu", "stop", engine.now)

        def quant_process():
            trace.record("quant", "start", engine.now)
            while True:
                item = yield from mac_fifo.pop_or_none()
                if item is None:
                    break
                yield ("wait", chunk_quant)
                yield from quant_fifo.push(item)
            quant_fifo.close()
            trace.record("quant", "stop", engine.now)

        def router_process():
            trace.record("router", "start", engine.now)
            consumed = 0
            while True:
                item = yield from quant_fifo.pop_or_none()
                if item is None:
                    break
                consumed += 1
                # router write into the shared buffer: one beat per chunk
                yield ("wait", 1)
            trace.record("router", "stop", engine.now)
            return consumed

        engine.add_process(dma_process(), name="dma")
        engine.add_process(mpu_process(), name="mpu")
        engine.add_process(quant_process(), name="quant")
        pid = engine.add_process(router_process(), name="router")
        total = engine.run()
        if engine.result_of(pid) != num_chunks:
            raise InvariantError(
                f"router consumed {engine.result_of(pid)} chunks, "
                f"expected {num_chunks}")
        return EventSimResult(total_cycles=total, trace=trace, items=num_blocks)

    def analytical_timing(self, spec: LinearLayerSpec, num_nodes: int = 1,
                          batch_tokens: int = 1) -> MatrixOpTiming:
        return self._analytical.linear_op_cycles(spec, num_nodes, batch_tokens)


class EventDrivenAttentionKernel:
    """The Fused MHA kernel as a head-wise score -> softmax -> mix pipeline."""

    def __init__(self, hardware: HardwareConfig) -> None:
        self.hardware = hardware
        self._analytical = FusedMultiHeadAttentionKernel(hardware)

    def simulate_decode_layer(self, seq_len: int, heads_per_node: int,
                              head_dim: int,
                              headwise_pipelining: bool = True) -> EventSimResult:
        """Run one layer's decode attention through the event-driven pipeline."""
        analytical = self._analytical
        trace = TraceRecorder()
        engine = SimulationEngine()
        seq_len = max(seq_len, 1)

        score_cycles = max(1, int(round(analytical._cache_stream_cycles(
            seq_len, head_dim, analytical.key_channels))))
        mix_cycles = max(1, int(round(analytical._cache_stream_cycles(
            seq_len, head_dim, analytical.value_channels))))
        softmax_cycles = max(1, int(round(analytical.softmax_cycles(seq_len))))
        fill = int(self.hardware.kernel_fill_overhead_cycles)

        score_fifo = Fifo(depth=2, name="score_to_softmax")
        weight_fifo = Fifo(depth=2, name="softmax_to_mix")

        def score_process():
            trace.record("score_mac", "start", engine.now)
            yield ("wait", fill)
            for head in range(heads_per_node):
                yield ("wait", score_cycles)
                yield from score_fifo.push(head)
            score_fifo.close()
            trace.record("score_mac", "stop", engine.now)

        def softmax_process():
            trace.record("softmax", "start", engine.now)
            while True:
                head = yield from score_fifo.pop_or_none()
                if head is None:
                    break
                yield ("wait", softmax_cycles)
                yield from weight_fifo.push(head)
            weight_fifo.close()
            trace.record("softmax", "stop", engine.now)

        def score_then_softmax_process():
            """Without the head-wise reordering the two-pass softmax cannot be
            overlapped: each head's score computation is followed by its full
            softmax before the next head may start, so the front half of the
            pipeline degenerates to ``heads x (score + softmax)``."""
            trace.record("score_mac", "start", engine.now)
            trace.record("softmax", "start", engine.now)
            yield ("wait", fill)
            for head in range(heads_per_node):
                yield ("wait", score_cycles)
                yield ("wait", softmax_cycles)
                yield from weight_fifo.push(head)
            weight_fifo.close()
            trace.record("softmax", "stop", engine.now)
            trace.record("score_mac", "stop", engine.now)

        def mix_process():
            trace.record("mix_mac", "start", engine.now)
            heads_done = 0
            while True:
                head = yield from weight_fifo.pop_or_none()
                if head is None:
                    break
                yield ("wait", mix_cycles)
                heads_done += 1
            trace.record("mix_mac", "stop", engine.now)
            return heads_done

        if headwise_pipelining:
            engine.add_process(score_process(), name="score")
            engine.add_process(softmax_process(), name="softmax")
        else:
            engine.add_process(score_then_softmax_process(), name="score+softmax")
        pid = engine.add_process(mix_process(), name="mix")
        total = engine.run()
        if engine.result_of(pid) != heads_per_node:
            raise InvariantError(
                f"mix stage completed {engine.result_of(pid)} heads, "
                f"expected {heads_per_node}")
        return EventSimResult(total_cycles=total, trace=trace, items=heads_per_node)

    def analytical_timing(self, seq_len: int, heads_per_node: int, head_dim: int,
                          headwise_pipelining: bool = True):
        return self._analytical.decode_layer_cycles(seq_len, heads_per_node,
                                                    head_dim, headwise_pipelining)


def cross_check_linear(hardware: HardwareConfig, spec: LinearLayerSpec,
                       num_nodes: int = 1, batch_tokens: int = 1
                       ) -> Dict[str, float]:
    """Compare the event-driven and analytical cycle counts of one linear op.

    Returns the two totals and their relative difference.  Used by the
    validation tests and by the utilization analysis example.
    """
    kernel = EventDrivenMatrixKernel(hardware)
    event = kernel.simulate_linear(spec, num_nodes, batch_tokens)
    analytical = kernel.analytical_timing(spec, num_nodes, batch_tokens)
    relative = abs(event.total_cycles - analytical.total) / analytical.total
    return {
        "event_cycles": float(event.total_cycles),
        "analytical_cycles": float(analytical.total),
        "relative_difference": relative,
    }


def cross_check_attention(hardware: HardwareConfig, seq_len: int,
                          heads_per_node: int, head_dim: int,
                          headwise_pipelining: bool = True) -> Dict[str, float]:
    """Compare the event-driven and analytical cycle counts of one attention
    layer."""
    kernel = EventDrivenAttentionKernel(hardware)
    event = kernel.simulate_decode_layer(seq_len, heads_per_node, head_dim,
                                         headwise_pipelining)
    analytical = kernel.analytical_timing(seq_len, heads_per_node, head_dim,
                                          headwise_pipelining)
    relative = abs(event.total_cycles - analytical.total) / analytical.total
    return {
        "event_cycles": float(event.total_cycles),
        "analytical_cycles": float(analytical.total),
        "relative_difference": relative,
    }
