"""Functional (bit-level) execution of the LoopLynx datapath.

The cycle models answer "how long"; this module answers "does the hardware
structure compute the right numbers".  It executes a calibrated W8A8 GPT-2
through the same structure the accelerator uses:

* every linear layer's weight shard is processed by the Fused MP kernel's
  functional datapath (tiled int8 GEMV, wide accumulation, bias-add /
  dequantize in the quantization unit);
* under model parallelism, each node computes the output rows it owns and the
  sub-vectors are gathered (the int8 transport itself is validated separately
  against the ring all-gather's offset mechanism);
* attention runs head-by-head per node on the heads that node owns, exactly
  like the head-wise pipeline of the Fused MHA kernel;
* layer norm / GELU / residual run on the Fused LN&Res kernel's functional
  path.

The top-level check (exercised by the integration tests) is that a full
forward pass through :class:`FunctionalLoopLynxSystem` matches
:meth:`repro.model.gpt2.GPT2Model.forward_quantized` exactly, for any node
count that divides the head count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.kernels.attention import FusedMultiHeadAttentionKernel
from repro.core.kernels.layernorm_residual import FusedLayerNormResidualKernel
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel
from repro.memory.kv_cache import KVCache, partition_heads
from repro.model.config import ModelConfig
from repro.model.gpt2 import GPT2Model
from repro.model.layers import causal_attention, split_heads
from repro.quant.int8 import quantize_per_tensor

from repro.errors import InvariantError


@dataclass
class _ShardedLinear:
    """Per-node shard of one quantized linear layer."""

    weight_q: np.ndarray        # int8 [out_node, in]
    weight_scale: np.ndarray    # per-output-channel scales of the shard
    bias: np.ndarray            # float bias of the shard's rows
    activation_scale: float
    smoothing: np.ndarray       # per-input-channel smoothing factors
    row_range: Tuple[int, int]  # rows of the full output this shard owns


class FunctionalAcceleratorNode:
    """One node's functional datapath: its linear shards and its heads."""

    def __init__(self, model: GPT2Model, node_id: int, num_nodes: int,
                 hardware: Optional[HardwareConfig] = None) -> None:
        if not model.is_calibrated:
            raise ValueError("the GPT-2 model must be calibrated for W8A8 first")
        if not (0 <= node_id < num_nodes):
            raise ValueError("node_id out of range")
        self.model = model
        self.config = model.config
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.hardware = hardware or HardwareConfig()
        self.mp_kernel = FusedMatrixProcessingKernel(self.hardware)
        self.mha_kernel = FusedMultiHeadAttentionKernel(self.hardware)
        self.ln_kernel = FusedLayerNormResidualKernel(self.hardware)
        self.heads = partition_heads(self.config.num_heads, num_nodes)[node_id]
        self._shards: Dict[Tuple[int, str], _ShardedLinear] = {}
        self._build_shards()

    # ------------------------------------------------------------------
    def _row_range(self, out_features: int) -> Tuple[int, int]:
        """Rows of the full output this node owns (even split, remainder to
        the lowest-numbered nodes), mirroring the output-dimension weight
        distribution of the model-parallel scheme."""
        base = out_features // self.num_nodes
        extra = out_features % self.num_nodes
        start = self.node_id * base + min(self.node_id, extra)
        count = base + (1 if self.node_id < extra else 0)
        return start, start + count

    def _build_shards(self) -> None:
        quantized = self.model._quantized_layers
        if quantized is None:
            raise InvariantError(
                "model has no quantized layers; quantize() must run "
                "before sharding")
        for (layer, name), entry in quantized.items():
            weight_q = entry["weight_q"]
            start, stop = self._row_range(weight_q.data.shape[0])
            self._shards[(layer, name)] = _ShardedLinear(
                weight_q=weight_q.data[start:stop],
                weight_scale=weight_q.scale[start:stop],
                bias=np.asarray(entry["bias"])[start:stop],
                activation_scale=float(entry["activation_scale"]),
                smoothing=np.asarray(entry["smoothing"]),
                row_range=(start, stop),
            )

    # ------------------------------------------------------------------
    def linear_subvector(self, layer: int, name: str, activations: np.ndarray
                         ) -> np.ndarray:
        """This node's output rows of one linear layer (float, bias added).

        ``activations`` may be a single vector or a ``[tokens, in]`` matrix;
        the int8 MAC path is applied per token exactly as the MPU would.
        """
        shard = self._shards[(layer, name)]
        activations = np.asarray(activations, dtype=np.float64)
        single = activations.ndim == 1
        if single:
            activations = activations[None, :]
        outputs = np.zeros((activations.shape[0], shard.weight_q.shape[0]))
        for row, activation in enumerate(activations):
            smoothed = activation / shard.smoothing
            act_q = quantize_per_tensor(smoothed, scale=shard.activation_scale)
            outputs[row] = self.mp_kernel.functional_linear(
                shard.weight_q, act_q.data, shard.activation_scale,
                shard.weight_scale, bias=shard.bias)
        return outputs[0] if single else outputs

    def attention_subvector(self, query: np.ndarray, cache: KVCache,
                            layer: int, new_keys: np.ndarray,
                            new_values: np.ndarray,
                            position_offset: int) -> np.ndarray:
        """Attention output for this node's heads, one query block.

        ``query`` is ``[tokens, d_model]`` (already the full QKV-derived Q);
        ``new_keys`` / ``new_values`` are ``[heads, tokens, head_dim]`` for
        the full head set — the node stores only its heads in its cache, as
        the head-wise KV partition prescribes.
        """
        config = self.config
        tokens = query.shape[0]
        cache.append_block(layer, new_keys[self.heads], new_values[self.heads],
                           start=position_offset)
        keys = cache._keys[layer, :, : position_offset + tokens, :]
        values = cache._values[layer, :, : position_offset + tokens, :]
        q_heads = split_heads(query, config.num_heads)[self.heads]
        head_dim = config.head_dim
        total_len = position_offset + tokens
        # full multi-head attention restricted to this node's heads
        query_flat = q_heads.transpose(1, 0, 2).reshape(tokens, len(self.heads) * head_dim)
        keys_flat = keys.transpose(1, 0, 2).reshape(total_len, len(self.heads) * head_dim)
        values_flat = values.transpose(1, 0, 2).reshape(total_len, len(self.heads) * head_dim)
        return causal_attention(query_flat, keys_flat, values_flat, len(self.heads))

    def new_cache(self) -> KVCache:
        """Head-wise partitioned KV cache holding only this node's heads."""
        return KVCache(self.config.num_layers, len(self.heads),
                       self.config.head_dim, self.config.max_seq_len)


class FunctionalLoopLynxSystem:
    """Functional multi-node execution of the full forward pass."""

    def __init__(self, model: GPT2Model, num_nodes: int = 2,
                 hardware: Optional[HardwareConfig] = None) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if model.config.num_heads % num_nodes != 0:
            raise ValueError("num_nodes must divide the head count for the "
                             "functional head-wise partition")
        self.model = model
        self.config = model.config
        self.num_nodes = num_nodes
        self.nodes = [FunctionalAcceleratorNode(model, node_id, num_nodes, hardware)
                      for node_id in range(num_nodes)]
        self.caches = [node.new_cache() for node in self.nodes]
        self._length = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.caches = [node.new_cache() for node in self.nodes]
        self._length = 0

    def _gather(self, subvectors: List[np.ndarray], axis: int = -1) -> np.ndarray:
        """Reassemble the full vector from per-node sub-vectors (the data
        movement the ring all-gather performs)."""
        return np.concatenate(subvectors, axis=axis)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Forward pass of ``token_ids`` (appended after the cached context).

        Returns logits ``[len(token_ids), vocab]``.  Matches
        ``GPT2Model.forward_quantized`` with a shared cache exactly.
        """
        config = self.config
        token_ids = np.asarray(token_ids, dtype=np.int64)
        position_offset = self._length
        hidden = self.model.embed(token_ids, position_offset)
        ln_kernel = self.nodes[0].ln_kernel

        for layer in range(config.num_layers):
            block = self.model.weights.blocks[layer]
            normed = ln_kernel.functional_layer_norm(
                hidden, block.ln1_gamma, block.ln1_beta, config.layer_norm_eps)
            qkv = self._gather([node.linear_subvector(layer, "qkv", normed)
                                for node in self.nodes])
            query, key, value = np.split(qkv, 3, axis=-1)
            key_heads = split_heads(key, config.num_heads)
            value_heads = split_heads(value, config.num_heads)
            attn = self._gather([
                node.attention_subvector(query, cache, layer, key_heads,
                                         value_heads, position_offset)
                for node, cache in zip(self.nodes, self.caches)
            ])
            attn = self._gather([node.linear_subvector(layer, "attn_proj", attn)
                                 for node in self.nodes])
            hidden = ln_kernel.functional_residual(hidden, attn)

            normed = ln_kernel.functional_layer_norm(
                hidden, block.ln2_gamma, block.ln2_beta, config.layer_norm_eps)
            fc = self._gather([node.linear_subvector(layer, "mlp_fc", normed)
                               for node in self.nodes])
            activated = ln_kernel.functional_gelu(fc)
            proj = self._gather([node.linear_subvector(layer, "mlp_proj", activated)
                                 for node in self.nodes])
            hidden = ln_kernel.functional_residual(hidden, proj)

        for cache in self.caches:
            cache.advance(token_ids.size)
        self._length += token_ids.size
        return self.model.lm_logits(hidden)

    def generate(self, prompt_tokens: List[int], max_new_tokens: int) -> List[int]:
        """Greedy prefill + decode through the functional multi-node system."""
        if not prompt_tokens:
            raise ValueError("prompt must contain at least one token")
        self.reset()
        logits = self.forward(np.asarray(prompt_tokens, dtype=np.int64))
        generated: List[int] = []
        next_token = int(np.argmax(logits[-1]))
        for _ in range(max_new_tokens):
            generated.append(next_token)
            if self._length >= self.config.max_seq_len:
                break
            logits = self.forward(np.asarray([next_token], dtype=np.int64))
            next_token = int(np.argmax(logits[-1]))
        return generated
