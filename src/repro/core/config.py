"""Configuration of the LoopLynx accelerator and multi-node system.

Three layers of configuration:

* :class:`HardwareConfig` — per-node hardware parameters: kernel clock, the
  number of MP slices / HBM channels feeding the Fused MP kernel, the MAC
  group size, the channels dedicated to the KV cache, the parallelism of the
  critical-path operators and the pipeline/scheduler overheads.  Defaults
  follow the paper's Alveo U50 implementation (285 MHz, ``n_group = 32``,
  32-byte datapacks, 8.49 GB/s per HBM channel).
* :class:`OptimizationConfig` — the three latency-optimization techniques of
  Section III-C as independent switches, so the Fig. 5 breakdown and the
  ablation benchmarks can toggle them.
* :class:`SystemConfig` — number of accelerator nodes, nodes per FPGA card,
  the model being served, and the ring-link parameters.

Presets named after the paper's configurations are provided
(:func:`alveo_u50_node`, :func:`paper_system`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memory.hbm import HbmConfig
from repro.model.config import ModelConfig
from repro.network.link import LinkConfig

GB = 1_000_000_000


@dataclass(frozen=True)
class HardwareConfig:
    """Per-node hardware parameters of a LoopLynx accelerator node.

    Attributes
    ----------
    clock_hz:
        Kernel clock.  The decoupled FIFO design lets the paper close timing
        at 285 MHz.
    mp_channels:
        HBM channels (= MP slices) feeding the Fused MP kernel's MPU.
    mac_group_size:
        MAC units per MP slice (``n_group``); also the datapack byte width.
    mha_channels:
        HBM channels used by the Fused MHA kernel for the key/value cache.
    hbm:
        Per-channel HBM parameters (peak bandwidth, burst behaviour).
    hbm_efficiency:
        Fraction of the per-channel peak the DMA engines sustain on real
        access patterns (bank conflicts, refresh, address gaps).
    critical_path_parallelism:
        Lanes used by the critical-path operators (layer norm, residual,
        GELU, bias addition) *after* the critical-path optimization.  The
        un-optimized baseline processes one element per cycle.
    softmax_lanes:
        Exponent/normalization lanes of the softmax unit.
    layernorm_passes:
        Passes over the vector a layer normalization needs (mean, variance,
        normalize) when not fused.
    stage_overhead_cycles:
        Scheduler state-machine transition cost charged per pipeline stage.
    kernel_fill_overhead_cycles:
        Pipeline fill/drain cost charged per macro-dataflow-kernel invocation
        (DMA setup, MPU fill, quantization-unit drain, router flush).
    """

    clock_hz: float = 285.0e6
    mp_channels: int = 8
    mac_group_size: int = 32
    mha_channels: int = 4
    hbm: HbmConfig = field(default_factory=HbmConfig)
    hbm_efficiency: float = 0.82
    critical_path_parallelism: int = 4
    softmax_lanes: int = 4
    layernorm_passes: int = 3
    stage_overhead_cycles: int = 64
    kernel_fill_overhead_cycles: int = 256

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.mp_channels <= 0 or self.mha_channels <= 0:
            raise ValueError("channel counts must be positive")
        if self.mac_group_size <= 0:
            raise ValueError("MAC group size must be positive")
        if not (0.0 < self.hbm_efficiency <= 1.0):
            raise ValueError("hbm_efficiency must be in (0, 1]")
        if self.critical_path_parallelism <= 0 or self.softmax_lanes <= 0:
            raise ValueError("parallelism values must be positive")
        if self.layernorm_passes <= 0:
            raise ValueError("layernorm_passes must be positive")
        if self.stage_overhead_cycles < 0 or self.kernel_fill_overhead_cycles < 0:
            raise ValueError("overheads cannot be negative")

    # ------------------------------------------------------------------
    @property
    def macs_per_cycle(self) -> int:
        """Peak MACs per cycle of the MPU (all slices)."""
        return self.mp_channels * self.mac_group_size

    @property
    def hbm_bytes_per_cycle_per_channel(self) -> float:
        """Effective bytes per cycle one HBM channel sustains."""
        return self.hbm.bytes_per_cycle * self.hbm_efficiency

    @property
    def mp_bytes_per_cycle(self) -> float:
        """Aggregate effective HBM bytes per cycle feeding the MPU."""
        return self.mp_channels * self.hbm_bytes_per_cycle_per_channel

    @property
    def mha_bytes_per_cycle(self) -> float:
        """Aggregate effective HBM bytes per cycle feeding the MHA kernel."""
        return self.mha_channels * self.hbm_bytes_per_cycle_per_channel

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.clock_hz


@dataclass(frozen=True)
class OptimizationConfig:
    """The latency-optimization techniques of Section III-C as switches.

    ``baseline()`` disables everything (Fig. 5(a)); ``paper_default()``
    enables all three, which is the configuration behind Tables II/III and
    Fig. 8.
    """

    critical_path_fusion: bool = True     # parallel LN/res + overlapped execution
    headwise_pipelining: bool = True      # hide softmax behind next head's scores
    transmission_hiding: bool = True      # hide ring sync behind block matmuls

    @staticmethod
    def baseline() -> "OptimizationConfig":
        return OptimizationConfig(critical_path_fusion=False,
                                  headwise_pipelining=False,
                                  transmission_hiding=False)

    @staticmethod
    def critical_path_only() -> "OptimizationConfig":
        return OptimizationConfig(critical_path_fusion=True,
                                  headwise_pipelining=False,
                                  transmission_hiding=False)

    @staticmethod
    def paper_default() -> "OptimizationConfig":
        return OptimizationConfig()


@dataclass(frozen=True)
class SystemConfig:
    """A LoopLynx deployment: N accelerator nodes serving one model.

    Attributes
    ----------
    model:
        The LLM being served (GPT-2 345M in the paper).
    num_nodes:
        Accelerator nodes connected in a ring.
    nodes_per_card:
        Nodes packed onto one FPGA card (one per SLR; the U50 has two SLRs,
        so 2 nodes per card).
    hardware:
        Per-node hardware parameters.
    optimizations:
        Latency-optimization switches.
    link:
        Ring link parameters (intra-card AXI-Stream hop).
    inter_card_link:
        Ring link parameters for hops that cross FPGA cards; the paper
        simulates this network at the same 8.49 GB/s peak but with a longer
        hop latency.
    reference_context_len:
        Cached-sequence length at which "average per-token latency"
        (Table II) and throughput (Table III) are reported.
    """

    model: ModelConfig = field(default_factory=ModelConfig.gpt2_medium)
    num_nodes: int = 2
    nodes_per_card: int = 2
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    optimizations: OptimizationConfig = field(default_factory=OptimizationConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    inter_card_link: LinkConfig = field(
        default_factory=lambda: LinkConfig(hop_latency_cycles=512))
    reference_context_len: int = 512

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.nodes_per_card <= 0:
            raise ValueError("nodes_per_card must be positive")
        if self.num_nodes > self.model.num_heads:
            raise ValueError(
                f"{self.num_nodes} nodes cannot head-partition "
                f"{self.model.num_heads} attention heads")
        if self.reference_context_len <= 0:
            raise ValueError("reference_context_len must be positive")

    # ------------------------------------------------------------------
    @property
    def num_cards(self) -> int:
        """FPGA cards needed for this node count."""
        return -(-self.num_nodes // self.nodes_per_card)

    @property
    def crosses_cards(self) -> bool:
        return self.num_cards > 1

    def with_nodes(self, num_nodes: int) -> "SystemConfig":
        """Copy of this configuration with a different node count."""
        return replace(self, num_nodes=num_nodes)

    def with_optimizations(self, optimizations: OptimizationConfig) -> "SystemConfig":
        return replace(self, optimizations=optimizations)

    def with_model(self, model: ModelConfig) -> "SystemConfig":
        return replace(self, model=model)


def alveo_u50_node() -> HardwareConfig:
    """The paper's per-node hardware point on the Alveo U50."""
    return HardwareConfig()


def paper_system(num_nodes: int = 2, model: Optional[ModelConfig] = None,
                 optimizations: Optional[OptimizationConfig] = None) -> SystemConfig:
    """The evaluated system: GPT-2 345M on 1/2/4 LoopLynx nodes.

    ``num_nodes=2`` is the single-U50 configuration; ``num_nodes=4`` is the
    dual-FPGA configuration connected through the simulated network.
    """
    return SystemConfig(
        model=model or ModelConfig.gpt2_medium(),
        num_nodes=num_nodes,
        nodes_per_card=2,
        hardware=alveo_u50_node(),
        optimizations=optimizations or OptimizationConfig.paper_default(),
    )
