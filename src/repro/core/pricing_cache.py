"""Persistent on-disk store for the serving engine's pricing memo tables.

The engine memoizes every cycle-model evaluation it performs — decode
step latencies, mixed-step latencies, prefill-chunk sums, and KV
swap/handoff transfer times — into per-instance-class dictionaries
(:class:`~repro.serving.instance.InstanceRuntime` keeps one of each).
Those evaluations are pure functions of the hardware configuration, so
the tables are valid across runs and across processes.  This module
gives them a versioned on-disk format so repeat runs and sweep workers
start warm instead of each re-deriving the same tables at ~100 µs per
entry.

Design points:

* **Keyed by configuration, not by trust.**  Every cache file embeds a
  fingerprint: a SHA-256 over the canonicalized
  :class:`~repro.core.config.SystemConfig` contents plus a probe price
  for the KV transfer geometry.  A file whose embedded fingerprint (or
  format version) does not match the requesting configuration is
  ignored and will be rebuilt — never trusted.
* **Corruption-safe.**  Any failure to read, parse, or validate a cache
  file degrades to a cold start.  Writes go through a temp file +
  :func:`os.replace` so a crashed writer can never leave a torn file
  under the canonical name.
* **Bit-exact.**  Entries are stored as JSON numbers; Python's JSON
  round-trips floats exactly (``repr``-based shortest form), so a warm
  run reproduces the cold run's timestamps bit for bit.

Cache files live under a caller-chosen directory as
``pricing-v<VERSION>-<fingerprint16>.json``.  Bumping :data:`VERSION`
invalidates every existing file at once (used when the table layout or
the pricing semantics change).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: On-disk format version.  Bump to invalidate all existing cache files.
VERSION = 1

#: The four memo tables, in the order InstanceRuntime holds them:
#: step ``(context, batch) -> s``, mixed ``(context, decode, ptok) -> s``,
#: prefill ``(start, chunk) -> s``, transfer ``blocks -> s``.
PricingTables = Tuple[
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int, int], float],
    Dict[Tuple[int, int], float],
    Dict[int, float],
]

_TABLE_NAMES = ("step", "mixed", "prefill", "transfer")
_KEY_ARITY = (2, 3, 2, 1)


def config_fingerprint(config: Any, transfer_probe: Optional[float]) -> str:
    """Fingerprint a system configuration (plus KV transfer geometry).

    ``config`` is the :class:`~repro.core.config.SystemConfig` the cycle
    model prices with; ``transfer_probe`` is the class's price for a
    one-block KV transfer (``None`` when the class has no paged KV) —
    transfer pricing depends on block geometry the system config does
    not capture, and the probe price is a pure function of exactly that
    geometry, so folding it into the key invalidates the table whenever
    the geometry changes.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload: Any = dataclasses.asdict(config)
    else:  # pragma: no cover - all shipped configs are dataclasses
        payload = repr(config)
    canonical = json.dumps(
        {"config": payload,
         "transfer_probe": (None if transfer_probe is None
                            else repr(float(transfer_probe)))},
        sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PricingCacheStore:
    """Directory of versioned, fingerprinted pricing-table files."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"pricing-v{VERSION}-{fingerprint[:16]}.json"

    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> Optional[PricingTables]:
        """Load the tables for ``fingerprint``; ``None`` on any mismatch.

        Stale version, wrong fingerprint, unreadable file, malformed
        JSON, or malformed table entries all return ``None`` — the
        caller rebuilds from scratch rather than trusting the file.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            if not isinstance(doc, dict):
                return None
            if doc.get("version") != VERSION:
                return None
            if doc.get("fingerprint") != fingerprint:
                return None
            tables = []
            for name, arity in zip(_TABLE_NAMES, _KEY_ARITY):
                table: Dict[Any, float] = {}
                for entry in doc["tables"][name]:
                    *key_parts, value = entry
                    if len(key_parts) != arity:
                        return None
                    key = (int(key_parts[0]) if arity == 1
                           else tuple(int(part) for part in key_parts))
                    table[key] = float(value)
                tables.append(table)
        except (OSError, ValueError, TypeError, KeyError):
            return None
        return (tables[0], tables[1], tables[2], tables[3])

    def save(self, fingerprint: str, tables: PricingTables) -> None:
        """Atomically write ``tables`` under ``fingerprint``.

        Entries are emitted in sorted key order so the file contents are
        a deterministic function of the table contents.
        """
        serialized: Dict[str, Any] = {}
        for name, arity, table in zip(_TABLE_NAMES, _KEY_ARITY, tables):
            rows = []
            for key in sorted(table):
                value = table[key]
                if arity == 1:
                    rows.append([key, value])
                else:
                    rows.append([*key, value])
            serialized[name] = rows
        doc = {"version": VERSION, "fingerprint": fingerprint,
               "tables": serialized}
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(fingerprint)
        # pid-unique temp name: concurrent sweep workers saving the same
        # table must not interleave writes into one temp file
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, separators=(",", ":"))
        os.replace(tmp, path)
