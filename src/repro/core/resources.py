"""FPGA resource model (DSP / LUT / FF / BRAM / URAM).

The numbers come from the paper's implementation report (Fig. 7): the listed
component utilizations are for one Alveo U50 device carrying **two**
accelerator nodes (one per SLR), so the per-node figures used here are half
of the listed component values.  The device additionally carries static shell
logic (XDMA/PCIe, HBM controllers, clocking) that is paid once per card
regardless of how many accelerator nodes it hosts — this reproduces why the
Table II one-node row is much more than half of the two-node row for BRAM.

The model exposes:

* per-kernel resources (per node) — Fig. 7 component rows;
* per-node accelerator totals;
* per-card device totals (adds the shell);
* per-system totals for an arbitrary node count — Table II resource columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping


@dataclass(frozen=True)
class ResourceUsage:
    """FPGA resource vector.  BRAM is counted in 18Kb blocks (halves allowed,
    as vendor reports do)."""

    dsp: float = 0.0
    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    uram: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            dsp=self.dsp + other.dsp,
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            uram=self.uram + other.uram,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(dsp=self.dsp * factor, lut=self.lut * factor,
                             ff=self.ff * factor, bram=self.bram * factor,
                             uram=self.uram * factor)

    def as_dict(self) -> Dict[str, float]:
        return {"DSP": self.dsp, "LUT": self.lut, "FF": self.ff,
                "BRAM": self.bram, "URAM": self.uram}

    def fits_within(self, capacity: "ResourceUsage") -> bool:
        """True when this usage fits inside ``capacity`` on every resource."""
        return (self.dsp <= capacity.dsp and self.lut <= capacity.lut
                and self.ff <= capacity.ff and self.bram <= capacity.bram
                and self.uram <= capacity.uram)

    def utilization_of(self, capacity: "ResourceUsage") -> Dict[str, float]:
        """Fractional utilization against a device capacity."""
        out: Dict[str, float] = {}
        for key, used in self.as_dict().items():
            cap = capacity.as_dict()[key]
            out[key] = used / cap if cap > 0 else 0.0
        return out


# ----------------------------------------------------------------------
# Device capacities (vendor datasheets; used for feasibility checks)
# ----------------------------------------------------------------------

ALVEO_U50_CAPACITY = ResourceUsage(dsp=5952, lut=872_000, ff=1_743_000,
                                   bram=1344, uram=640)
ALVEO_U280_CAPACITY = ResourceUsage(dsp=9024, lut=1_304_000, ff=2_607_000,
                                    bram=2016, uram=960)


# ----------------------------------------------------------------------
# Per-node kernel resources (half of the Fig. 7 per-device component rows)
# ----------------------------------------------------------------------

PER_NODE_KERNEL_RESOURCES: Mapping[str, ResourceUsage] = {
    "fused_mp": ResourceUsage(dsp=261, lut=17_000, ff=28_000, bram=120.5, uram=0),
    "fused_mha": ResourceUsage(dsp=191, lut=19_000, ff=22_500, bram=8, uram=0),
    "fused_ln_res": ResourceUsage(dsp=96, lut=11_500, ff=15_000, bram=120, uram=0),
    "dma": ResourceUsage(dsp=0, lut=8_000, ff=14_000, bram=48.5, uram=2),
    "other": ResourceUsage(dsp=16, lut=8_500, ff=13_000, bram=0.5, uram=0),
}

#: Static shell / platform logic paid once per FPGA card (XDMA, HBM
#: controllers, clock/reset infrastructure).  Derived from the difference
#: between the paper's "Device Total" and "Accelerator Total" rows.
PER_CARD_SHELL_RESOURCES = ResourceUsage(dsp=4, lut=184_000, ff=293_000,
                                         bram=329.5, uram=0)


def kernel_resources(kernel_name: str) -> ResourceUsage:
    """Per-node resources of one macro dataflow kernel."""
    try:
        return PER_NODE_KERNEL_RESOURCES[kernel_name]
    except KeyError as exc:
        raise KeyError(
            f"unknown kernel {kernel_name!r}; known: "
            f"{sorted(PER_NODE_KERNEL_RESOURCES)}") from exc


def node_resources() -> ResourceUsage:
    """Resources of one accelerator node (all kernels, no shell)."""
    total = ResourceUsage()
    for usage in PER_NODE_KERNEL_RESOURCES.values():
        total = total + usage
    return total


def device_resources(nodes_on_card: int = 2) -> ResourceUsage:
    """Resources of one FPGA card hosting ``nodes_on_card`` accelerator nodes."""
    if nodes_on_card <= 0:
        raise ValueError("nodes_on_card must be positive")
    return node_resources().scaled(nodes_on_card) + PER_CARD_SHELL_RESOURCES


def system_resources(num_nodes: int, nodes_per_card: int = 2) -> ResourceUsage:
    """Resources of a multi-node deployment (Table II resource columns).

    Cards are filled greedily; a partially filled last card still pays its
    full shell.  URAM follows the paper's accounting of 2 per node.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if nodes_per_card <= 0:
        raise ValueError("nodes_per_card must be positive")
    total = ResourceUsage()
    remaining = num_nodes
    while remaining > 0:
        on_card = min(nodes_per_card, remaining)
        total = total + node_resources().scaled(on_card) + PER_CARD_SHELL_RESOURCES
        remaining -= on_card
    return total


def component_table(nodes_on_card: int = 2) -> List[Dict[str, float]]:
    """The Fig. 7 component table for one device hosting ``nodes_on_card``
    nodes: one row per kernel (scaled to the device), plus the accelerator
    and device totals."""
    display_names = {
        "fused_mp": "Fused MP Kernel",
        "fused_mha": "Fused MHA Kernel",
        "fused_ln_res": "Fused LN Kernel",
        "dma": "DMA",
        "other": "Other Kernels/Buffer",
    }
    rows: List[Dict[str, float]] = []
    accelerator_total = ResourceUsage()
    for key, usage in PER_NODE_KERNEL_RESOURCES.items():
        scaled = usage.scaled(nodes_on_card)
        accelerator_total = accelerator_total + scaled
        row: Dict[str, float] = {"Component": display_names[key]}
        row.update(scaled.as_dict())
        rows.append(row)
    accel_row: Dict[str, float] = {"Component": "Accelerator Total"}
    accel_row.update(accelerator_total.as_dict())
    device_row: Dict[str, float] = {"Component": "Device Total"}
    device_row.update((accelerator_total + PER_CARD_SHELL_RESOURCES).as_dict())
    rows.append(accel_row)
    rows.append(device_row)
    return rows
