"""Single accelerator node: kernels + scheduler.

An :class:`AcceleratorNode` instantiates the macro dataflow kernels of one
LoopLynx node (Fused MP, Fused MHA, Fused LN&Res, router) and the temporal
scheduler that reuses them.  Because every node performs symmetrical
computation under the model-parallel scheme, one node's timing — computed
with awareness of the total node count — is the system's per-token timing;
the multi-node wrapper (:mod:`repro.core.multi_node`) adds host interaction,
scenario runs and throughput reporting on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import OptimizationConfig, SystemConfig
from repro.core.kernels.attention import FusedMultiHeadAttentionKernel
from repro.core.kernels.base import KernelTiming
from repro.core.kernels.layernorm_residual import FusedLayerNormResidualKernel
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel
from repro.core.kernels.router import RouterKernel
from repro.core.resources import ResourceUsage, node_resources
from repro.core.scheduler import KernelScheduler
from repro.model.config import layer_linear_specs


class AcceleratorNode:
    """One LoopLynx accelerator node (one SLR of an Alveo U50)."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        hardware = system.hardware
        self.mp_kernel = FusedMatrixProcessingKernel(hardware)
        self.mha_kernel = FusedMultiHeadAttentionKernel(hardware)
        self.ln_kernel = FusedLayerNormResidualKernel(hardware)
        self.router = RouterKernel(hardware, num_nodes=system.num_nodes,
                                   link=system.link,
                                   inter_card_link=system.inter_card_link,
                                   nodes_per_card=system.nodes_per_card)
        self.scheduler = KernelScheduler(system, self.mp_kernel, self.mha_kernel,
                                         self.ln_kernel, self.router)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def block_timing(self, context_len: int, batch_tokens: int = 1,
                     optimizations: Optional[OptimizationConfig] = None) -> KernelTiming:
        """Cycles of one transformer block (see
        :meth:`repro.core.scheduler.KernelScheduler.block_timing`)."""
        return self.scheduler.block_timing(context_len, batch_tokens, optimizations)

    def token_cycles(self, context_len: int, batch_tokens: int = 1,
                     optimizations: Optional[OptimizationConfig] = None) -> KernelTiming:
        """Cycles of one full forward pass (all transformer blocks)."""
        block = self.block_timing(context_len, batch_tokens, optimizations)
        total = KernelTiming()
        layers = self.system.model.num_layers
        total.total = block.total * layers
        for name, cycles in block.components.items():
            total.add_component(name, cycles * layers)
        return total

    # ------------------------------------------------------------------
    # traffic / utilization
    # ------------------------------------------------------------------
    def weight_bytes_per_token(self) -> int:
        """HBM weight traffic of this node for one decode step."""
        specs = layer_linear_specs(self.system.model)
        per_layer = self.mp_kernel.weight_bytes_per_token(
            specs, num_nodes=self.system.num_nodes)
        return per_layer * self.system.model.num_layers

    def kv_read_bytes_per_token(self, context_len: int) -> int:
        """KV-cache read traffic of this node for one decode step."""
        model = self.system.model
        heads_per_node = -(-model.num_heads // self.system.num_nodes)
        return (model.num_layers * 2 * heads_per_node * model.head_dim
                * max(context_len, 1))

    def kernel_utilization(self, elapsed_cycles: float) -> Dict[str, float]:
        """Busy fractions of the macro kernels over ``elapsed_cycles`` (used
        by the hybrid vs. spatial area-utilization comparison)."""
        return {
            kernel.name: kernel.utilization(elapsed_cycles)
            for kernel in (self.mp_kernel, self.mha_kernel, self.ln_kernel)
        }

    def reset_stats(self) -> None:
        for kernel in (self.mp_kernel, self.mha_kernel, self.ln_kernel, self.router):
            kernel.reset_stats()

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def resource_usage(self) -> ResourceUsage:
        """Resources of this node (all kernels, no shell)."""
        return node_resources()
