"""Temporal scheduler: the state machine that reuses the macro dataflow kernels.

The hybrid spatial-temporal design implements each operator class as one large
dataflow kernel and then *reuses* those kernels across the stages of a
transformer block (paper Fig. 3(c.1)): instead of instantiating a separate
small kernel per linear layer (spatial) or serializing reads/computes/writes
per instruction (temporal), the scheduler walks a fixed stage sequence and
dispatches each stage to the matching macro kernel, so the kernel's full
hardware is active during every activation.

:func:`transformer_block_schedule` returns the stage sequence for one
transformer block; :class:`KernelScheduler` composes the per-stage cycle
models into a per-block :class:`~repro.core.kernels.base.KernelTiming`, which
the accelerator and multi-node system then scale to per-token latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import OptimizationConfig, SystemConfig
from repro.core.kernels.attention import FusedMultiHeadAttentionKernel
from repro.core.kernels.base import KernelTiming
from repro.core.kernels.layernorm_residual import FusedLayerNormResidualKernel
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel
from repro.core.kernels.router import RouterKernel
from repro.model.config import LinearLayerSpec, ModelConfig, layer_linear_specs


@dataclass(frozen=True)
class Stage:
    """One scheduler stage of a transformer block.

    ``kind`` selects the macro dataflow kernel:

    * ``"layer_norm"``      — Fused LN&Res kernel (LN, residual hidden inside)
    * ``"linear"``          — Fused MP kernel (``linear_spec`` gives dimensions)
    * ``"attention"``       — Fused MHA kernel
    * ``"elementwise"``     — Fused LN&Res kernel's element-wise lanes (GELU)
    * ``"residual"``        — residual addition not fused with an LN
    """

    name: str
    kind: str
    linear_spec: Optional[LinearLayerSpec] = None
    elements: int = 0
    synchronizes_output: bool = False

    def __post_init__(self) -> None:
        valid = {"layer_norm", "linear", "attention", "elementwise", "residual"}
        if self.kind not in valid:
            raise ValueError(f"unknown stage kind {self.kind!r}")
        if self.kind == "linear" and self.linear_spec is None:
            raise ValueError("linear stages need a linear_spec")


def transformer_block_schedule(model: ModelConfig) -> List[Stage]:
    """Stage sequence of one transformer block under the LoopLynx scheduler.

    The sub-vector outputs of every linear layer and of the attention kernel
    are synchronized over the ring (``synchronizes_output=True``); the
    synchronization is hidden block-wise inside that same stage's computation
    when the transmission-hiding optimization is on.
    """
    qkv, attn_proj, mlp_fc, mlp_proj = layer_linear_specs(model)
    return [
        Stage("ln_1", "layer_norm", elements=model.d_model),
        Stage("qkv_projection", "linear", linear_spec=qkv),
        Stage("multi_head_attention", "attention", synchronizes_output=True),
        Stage("attention_projection", "linear", linear_spec=attn_proj,
              synchronizes_output=True),
        Stage("residual_attention", "residual", elements=model.d_model),
        Stage("ln_2", "layer_norm", elements=model.d_model),
        Stage("mlp_fc", "linear", linear_spec=mlp_fc, synchronizes_output=True),
        Stage("gelu", "elementwise", elements=model.d_ff),
        Stage("mlp_projection", "linear", linear_spec=mlp_proj,
              synchronizes_output=True),
        Stage("residual_mlp", "residual", elements=model.d_model),
    ]


class KernelScheduler:
    """Composes per-stage kernel cycle models into per-block timings."""

    def __init__(self, system: SystemConfig,
                 mp_kernel: FusedMatrixProcessingKernel,
                 mha_kernel: FusedMultiHeadAttentionKernel,
                 ln_kernel: FusedLayerNormResidualKernel,
                 router: RouterKernel) -> None:
        self.system = system
        self.mp_kernel = mp_kernel
        self.mha_kernel = mha_kernel
        self.ln_kernel = ln_kernel
        self.router = router
        self.schedule = transformer_block_schedule(system.model)

    # ------------------------------------------------------------------
    # per-stage timing
    # ------------------------------------------------------------------
    def _linear_stage(self, stage: Stage, batch_tokens: int,
                      opts: OptimizationConfig) -> KernelTiming:
        model = self.system.model
        num_nodes = self.system.num_nodes
        op = self.mp_kernel.linear_op_cycles(stage.linear_spec, num_nodes=num_nodes,
                                             batch_tokens=batch_tokens)
        timing = KernelTiming()
        steady = op.steady_state_cycles
        timing.add_component("linear", steady)
        timing.add_component("kernel_fill", op.fill_overhead_cycles)
        timing.add_component("quantization_drain", op.quant_drain_cycles)
        total = steady + op.fill_overhead_cycles + op.quant_drain_cycles

        if stage.synchronizes_output and num_nodes > 1:
            subvector_bytes = op.out_features_node * batch_tokens
            sync = self.router.synchronize(
                subvector_bytes, compute_cycles=steady, blocks=op.num_blocks,
                hide_transfers=opts.transmission_hiding)
            timing.add_component("ring_sync_exposed", sync.exposed_cycles)
            total += sync.exposed_cycles
        timing.total = total
        return timing

    def _attention_stage(self, stage: Stage, context_len: int, batch_tokens: int,
                         opts: OptimizationConfig) -> KernelTiming:
        model = self.system.model
        num_nodes = self.system.num_nodes
        heads_per_node = -(-model.num_heads // num_nodes)
        if batch_tokens == 1:
            att = self.mha_kernel.decode_layer_cycles(
                context_len, heads_per_node, model.head_dim,
                headwise_pipelining=opts.headwise_pipelining)
        else:
            att = self.mha_kernel.prefill_layer_cycles(
                batch_tokens, heads_per_node, model.head_dim,
                headwise_pipelining=opts.headwise_pipelining)
        timing = KernelTiming()
        score_mix = (att.total - att.exposed_softmax_cycles
                     - self.system.hardware.kernel_fill_overhead_cycles)
        timing.add_component("attention", max(score_mix, 0.0))
        timing.add_component("softmax_exposed", att.exposed_softmax_cycles)
        timing.add_component("kernel_fill",
                             float(self.system.hardware.kernel_fill_overhead_cycles))
        total = att.total

        if stage.synchronizes_output and num_nodes > 1:
            # gather this node's heads back into the full attention output
            subvector_bytes = heads_per_node * model.head_dim * batch_tokens
            sync = self.router.synchronize(
                subvector_bytes, compute_cycles=max(score_mix, 1.0),
                blocks=max(heads_per_node, 1),
                hide_transfers=opts.transmission_hiding)
            timing.add_component("ring_sync_exposed", sync.exposed_cycles)
            total += sync.exposed_cycles
        timing.total = total
        return timing

    def _layer_norm_stage(self, stage: Stage, batch_tokens: int,
                          opts: OptimizationConfig) -> KernelTiming:
        optimized = opts.critical_path_fusion
        ln = self.ln_kernel.layer_norm_cycles(stage.elements, optimized) * batch_tokens
        res = self.ln_kernel.residual_cycles(stage.elements, optimized) * batch_tokens
        timing = KernelTiming(total=ln + res)
        timing.add_component("layer_norm", ln)
        timing.add_component("residual", res)
        return timing

    def _residual_stage(self, stage: Stage, batch_tokens: int,
                        opts: OptimizationConfig) -> KernelTiming:
        optimized = opts.critical_path_fusion
        if optimized:
            # the residual add is folded into the quantization unit's output
            # path and the following LN's first pass, so it is fully hidden
            cycles = 0.0
        else:
            cycles = float(stage.elements) * batch_tokens
        timing = KernelTiming(total=cycles)
        timing.add_component("residual", cycles)
        return timing

    def _elementwise_stage(self, stage: Stage, batch_tokens: int,
                           opts: OptimizationConfig) -> KernelTiming:
        optimized = opts.critical_path_fusion
        cycles = self.ln_kernel.elementwise_cycles(stage.elements, optimized) * batch_tokens
        timing = KernelTiming(total=cycles)
        timing.add_component("gelu_bias", cycles)
        return timing

    # ------------------------------------------------------------------
    # per-block composition
    # ------------------------------------------------------------------
    def block_timing(self, context_len: int, batch_tokens: int = 1,
                     optimizations: Optional[OptimizationConfig] = None) -> KernelTiming:
        """Cycles of one transformer block on one node.

        Parameters
        ----------
        context_len:
            Cached sequence length attended over (decode), ignored for
            batched prefill where the prompt length drives attention cost.
        batch_tokens:
            1 for a decode step; the prompt length for a batched prefill pass.
        optimizations:
            Override of the system's optimization switches (used by the
            Fig. 5 and ablation experiments).
        """
        opts = optimizations or self.system.optimizations
        block = KernelTiming()
        overhead = float(self.system.hardware.stage_overhead_cycles)
        for stage in self.schedule:
            if stage.kind == "linear":
                timing = self._linear_stage(stage, batch_tokens, opts)
            elif stage.kind == "attention":
                timing = self._attention_stage(stage, context_len, batch_tokens, opts)
            elif stage.kind == "layer_norm":
                timing = self._layer_norm_stage(stage, batch_tokens, opts)
            elif stage.kind == "residual":
                timing = self._residual_stage(stage, batch_tokens, opts)
            else:
                timing = self._elementwise_stage(stage, batch_tokens, opts)
            timing.add_component("stage_overhead", overhead)
            timing.total += overhead
            block.merge(timing)
        return block

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.schedule]
