"""Multi-node LoopLynx system: per-token latency, scenarios, throughput.

:class:`LoopLynxSystem` is the top-level performance model.  It wraps a
representative :class:`~repro.core.accelerator.AcceleratorNode` (all nodes
perform symmetrical computation under the model-parallel scheme), adds the
host interaction captured in the paper's system design (Fig. 2(b): the host
embeds tokens, transfers them over PCIe, and synchronizes the model output
between prefill and decode), and exposes the quantities the evaluation
reports:

* per-token decode latency and its breakdown (Table II, Fig. 5);
* full ``[prefill : decode]`` scenario latency (Fig. 8(a));
* tokens-per-second throughput and node-scaling speed-ups (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.accelerator import AcceleratorNode
from repro.core.config import OptimizationConfig, SystemConfig, paper_system
from repro.core.kernels.base import KernelTiming
from repro.core.resources import ResourceUsage, system_resources
from repro.units import Milliseconds, Seconds, Tokens

#: Host-side cost charged once per generated token: embedding lookup, PCIe
#: transfer of the embedded vector to every node, and reading back the output
#: hidden state / next-token id.  A few microseconds at PCIe gen3 latencies.
DEFAULT_HOST_OVERHEAD_CYCLES = 2000.0

#: Component names treated as "matrix computation" (linear + attention) when
#: aggregating the Fig. 5 style breakdown; everything else is critical path.
MATRIX_COMPONENTS = ("linear", "attention")


@dataclass
class TokenLatencyReport:
    """Latency of one decode step."""

    cycles: float
    latency_ms: Milliseconds
    context_len: Tokens
    num_nodes: int
    breakdown_cycles: Dict[str, float] = field(default_factory=dict)

    def breakdown_ms(self, clock_hz: float) -> Dict[str, Milliseconds]:
        return {k: 1e3 * v / clock_hz for k, v in self.breakdown_cycles.items()}

    def matrix_fraction(self) -> float:
        """Fraction of cycles spent in linear + attention computation."""
        total = sum(self.breakdown_cycles.values())
        if total <= 0:
            return 0.0
        matrix = sum(self.breakdown_cycles.get(name, 0.0) for name in MATRIX_COMPONENTS)
        return matrix / total

    def critical_path_fraction(self) -> float:
        return 1.0 - self.matrix_fraction()


@dataclass
class ScenarioReport:
    """Latency of a full ``[prefill : decode]`` request."""

    prefill_len: Tokens
    decode_len: Tokens
    prefill_ms: Milliseconds
    decode_ms: Milliseconds
    num_nodes: int

    @property
    def total_ms(self) -> Milliseconds:
        return self.prefill_ms + self.decode_ms

    @property
    def tokens_generated(self) -> int:
        return self.decode_len

    @property
    def average_decode_token_ms(self) -> Milliseconds:
        if self.decode_len == 0:
            return 0.0
        return self.decode_ms / self.decode_len

    @property
    def tokens_per_second(self) -> float:
        if self.total_ms <= 0:
            return 0.0
        return 1e3 * self.tokens_generated / self.total_ms


class LoopLynxSystem:
    """The end-to-end LoopLynx performance model for N accelerator nodes."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 host_overhead_cycles: float = DEFAULT_HOST_OVERHEAD_CYCLES) -> None:
        self.config = config or paper_system(num_nodes=2)
        if host_overhead_cycles < 0:
            raise ValueError("host overhead cannot be negative")
        self.host_overhead_cycles = float(host_overhead_cycles)
        self.node = AcceleratorNode(self.config)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def paper_configuration(num_nodes: int = 2,
                            optimizations: Optional[OptimizationConfig] = None
                            ) -> "LoopLynxSystem":
        """The paper's GPT-2 345M deployment with 1, 2 or 4 nodes."""
        return LoopLynxSystem(paper_system(num_nodes=num_nodes,
                                           optimizations=optimizations))

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def clock_hz(self) -> float:
        return self.config.hardware.clock_hz

    # ------------------------------------------------------------------
    # per-token latency
    # ------------------------------------------------------------------
    def decode_token_report(self, context_len: Optional[Tokens] = None,
                            optimizations: Optional[OptimizationConfig] = None
                            ) -> TokenLatencyReport:
        """Latency of one decode step at the given cached context length."""
        context = context_len if context_len is not None else self.config.reference_context_len
        if context < 0:
            raise ValueError("context length cannot be negative")
        timing = self.node.token_cycles(context, batch_tokens=1,
                                        optimizations=optimizations)
        cycles = timing.total + self.host_overhead_cycles
        breakdown = dict(timing.components)
        breakdown["host_overhead"] = self.host_overhead_cycles
        return TokenLatencyReport(
            cycles=cycles,
            latency_ms=self.config.hardware.cycles_to_ms(cycles),
            context_len=context,
            num_nodes=self.num_nodes,
            breakdown_cycles=breakdown,
        )

    def average_token_latency_ms(self, context_len: Optional[Tokens] = None,
                                 optimizations: Optional[OptimizationConfig] = None
                                 ) -> Milliseconds:
        """The Table II "token latency" figure: per-token decode latency at
        the reference context length."""
        return self.decode_token_report(context_len, optimizations).latency_ms

    def throughput_tokens_per_second(self, context_len: Optional[Tokens] = None
                                     ) -> float:
        """Steady-state decode throughput (Table III)."""
        latency_ms = self.average_token_latency_ms(context_len)
        if latency_ms <= 0:
            return 0.0
        return 1e3 / latency_ms

    # ------------------------------------------------------------------
    # prefill and full scenarios
    # ------------------------------------------------------------------
    def prefill_latency_ms(self, prompt_len: Tokens,
                           optimizations: Optional[OptimizationConfig] = None,
                           batched: bool = False) -> Milliseconds:
        """Latency of the prefill stage for a prompt of ``prompt_len`` tokens.

        The paper's accelerator streams prompt tokens through the same
        token-serial pipeline as decode (``batched=False``, the default);
        ``batched=True`` models the weight-reuse extension where one pass
        processes the whole prompt against each streamed weight block (this is
        a this-repo extension used by the design-space exploration example,
        not a claim of the paper).
        """
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        hardware = self.config.hardware
        if batched:
            timing = self.node.token_cycles(prompt_len, batch_tokens=prompt_len,
                                            optimizations=optimizations)
            cycles = timing.total + self.host_overhead_cycles
            return hardware.cycles_to_ms(cycles)
        cycles = 0.0
        for position in range(prompt_len):
            timing = self.node.token_cycles(position, batch_tokens=1,
                                            optimizations=optimizations)
            cycles += timing.total + self.host_overhead_cycles
        return hardware.cycles_to_ms(cycles)

    # ------------------------------------------------------------------
    # step-level API (token-level serving engine)
    # ------------------------------------------------------------------
    def decode_step_latency_ms(self, context_len: Tokens, batch_size: int = 1,
                               optimizations: Optional[OptimizationConfig] = None
                               ) -> Milliseconds:
        """Latency of one decode step that advances ``batch_size`` co-resident
        requests by one token each, all attending over ``context_len`` cached
        positions.

        Batched decode reuses the weight-streaming path of the kernel model
        (:meth:`repro.core.scheduler.KernelScheduler.block_timing` with
        ``batch_tokens``): every weight block streamed from HBM is applied to
        all ``batch_size`` token vectors before the next block arrives, so the
        memory-bound linear layers amortize across the batch.  This is the
        primitive the token-level serving engine composes into per-request
        timelines; with ``batch_size=1`` it equals
        :meth:`decode_token_report` exactly.
        """
        if context_len < 0:
            raise ValueError("context length cannot be negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        timing = self.node.token_cycles(context_len, batch_tokens=batch_size,
                                        optimizations=optimizations)
        cycles = timing.total + self.host_overhead_cycles
        return self.config.hardware.cycles_to_ms(cycles)

    def decode_step_latency_s(self, context_len: Tokens, batch_size: int = 1,
                              optimizations: Optional[OptimizationConfig] = None
                              ) -> Seconds:
        """Seconds variant of :meth:`decode_step_latency_ms`."""
        return self.decode_step_latency_ms(context_len, batch_size,
                                           optimizations) / 1e3

    def mixed_step_latency_ms(self, decode_contexts: Sequence[int],
                              prefill_tokens: Tokens = 0,
                              optimizations: Optional[OptimizationConfig] = None,
                              prefill_context: int = 0) -> Milliseconds:
        """Latency of one *mixed* step: every request in ``decode_contexts``
        advances by one decode token while ``prefill_tokens`` prompt tokens of
        co-resident prefilling requests stream through the same pass.

        All ``len(decode_contexts) + prefill_tokens`` token vectors share one
        weight-streaming pass of the kernel pipeline
        (:meth:`repro.core.scheduler.KernelScheduler.block_timing` with
        ``batch_tokens`` set to the step's total token count), so the
        memory-bound linear layers amortize across decode and prefill tokens
        alike — the reason chunked-prefill schedulers can feed prompts in
        without stalling live decodes.  The attention term follows the
        existing batched-pass model (as in :meth:`decode_step_latency_ms`
        with ``batch_size > 1`` and the ``batched=True`` prefill extension):
        for multi-token steps it is driven by the step's token count, not
        the cached prefix, so late chunks of a very long prompt are priced
        like early ones — cheaper than the token-serial exclusive path by
        construction, which is part of why mixed scheduling wins TTFT.  The
        longest cached prefix in the step — decode contexts or
        ``prefill_context``, the position the largest prefill chunk ends at
        — drives the single-token degenerate case, where the cycle model
        does attend over the cached prefix.

        With ``prefill_tokens=0`` this equals
        :meth:`decode_step_latency_ms` for the same batch exactly; a step
        must carry at least one token.  ``prefill_context`` defaults to 0,
        in which case a pure-prefill step falls back to attending over the
        chunk itself (a from-scratch prompt).
        """
        num_decode = len(decode_contexts)
        if prefill_tokens < 0:
            raise ValueError("prefill_tokens cannot be negative")
        if prefill_context < 0:
            raise ValueError("prefill_context cannot be negative")
        if any(context < 0 for context in decode_contexts):
            raise ValueError("context length cannot be negative")
        total_tokens = num_decode + prefill_tokens
        if total_tokens <= 0:
            raise ValueError("a mixed step must carry at least one token")
        context = max(list(decode_contexts) + [prefill_context])
        if context == 0:
            # no caller-supplied prefix: a pure-prefill step attends over
            # the chunk itself (prefix attention of a from-scratch prompt)
            context = prefill_tokens
        timing = self.node.token_cycles(context, batch_tokens=total_tokens,
                                        optimizations=optimizations)
        cycles = timing.total + self.host_overhead_cycles
        return self.config.hardware.cycles_to_ms(cycles)

    def mixed_step_latency_s(self, decode_contexts: Sequence[int],
                             prefill_tokens: Tokens = 0,
                             optimizations: Optional[OptimizationConfig] = None,
                             prefill_context: int = 0) -> Seconds:
        """Seconds variant of :meth:`mixed_step_latency_ms`."""
        return self.mixed_step_latency_ms(decode_contexts, prefill_tokens,
                                          optimizations,
                                          prefill_context=prefill_context) / 1e3

    def prefill_latency_s(self, prefill_len: Tokens,
                          optimizations: Optional[OptimizationConfig] = None,
                          batched: bool = False) -> Seconds:
        """Seconds variant of :meth:`prefill_latency_ms` (serving-engine
        callers compose second-denominated timelines)."""
        return self.prefill_latency_ms(prefill_len, optimizations,
                                       batched=batched) / 1e3

    def decode_latency_ms(self, prompt_len: Tokens, decode_len: Tokens,
                          optimizations: Optional[OptimizationConfig] = None) -> Milliseconds:
        """Latency of generating ``decode_len`` tokens after a prompt of
        ``prompt_len`` tokens (context grows as tokens are emitted)."""
        if decode_len < 0:
            raise ValueError("decode_len cannot be negative")
        hardware = self.config.hardware
        cycles = 0.0
        for step in range(decode_len):
            timing = self.node.token_cycles(prompt_len + step, batch_tokens=1,
                                            optimizations=optimizations)
            cycles += timing.total + self.host_overhead_cycles
        return hardware.cycles_to_ms(cycles)

    def run_scenario(self, prefill_len: Tokens, decode_len: Tokens,
                     optimizations: Optional[OptimizationConfig] = None,
                     batched_prefill: bool = False) -> ScenarioReport:
        """End-to-end latency of one ``[prefill : decode]`` request
        (the Fig. 8 workload points)."""
        prefill_ms = self.prefill_latency_ms(prefill_len, optimizations,
                                             batched=batched_prefill)
        decode_ms = self.decode_latency_ms(prefill_len, decode_len, optimizations)
        return ScenarioReport(prefill_len=prefill_len, decode_len=decode_len,
                              prefill_ms=prefill_ms, decode_ms=decode_ms,
                              num_nodes=self.num_nodes)

    # ------------------------------------------------------------------
    # traffic, power inputs, resources
    # ------------------------------------------------------------------
    def hbm_traffic_bytes_per_token(self, context_len: Optional[Tokens] = None) -> float:
        """Total HBM bytes (weights + KV reads) moved per decode step across
        all nodes; an input to the energy model."""
        context = context_len if context_len is not None else self.config.reference_context_len
        per_node = (self.node.weight_bytes_per_token()
                    + self.node.kv_read_bytes_per_token(context))
        return float(per_node * self.num_nodes)

    def resource_usage(self) -> ResourceUsage:
        """Table II resource columns for this node count."""
        return system_resources(self.num_nodes, self.config.nodes_per_card)

    #: which timing components count as busy time of which macro kernel
    _KERNEL_COMPONENTS = {
        "fused_mp": ("linear", "quantization_drain", "kernel_fill"),
        "fused_mha": ("attention", "softmax_exposed"),
        "fused_ln_res": ("layer_norm", "residual", "gelu_bias"),
    }

    def kernel_utilization(self, context_len: Optional[Tokens] = None) -> Dict[str, float]:
        """Per-kernel busy fraction during one decode step — quantifies the
        peak-area-utilization argument of the hybrid design.

        Derived from the per-component cycle breakdown: each macro kernel is
        busy for the cycles attributed to the operations it executes.
        """
        report = self.decode_token_report(context_len)
        total = max(report.cycles, 1.0)
        out: Dict[str, float] = {}
        for kernel, components in self._KERNEL_COMPONENTS.items():
            busy = sum(report.breakdown_cycles.get(name, 0.0) for name in components)
            out[kernel] = min(busy / total, 1.0)
        return out
