"""HBM memory-footprint planning for LoopLynx deployments.

The paper's model-parallel scheme partitions linear-layer weights along the
output dimension and the KV cache head-wise "to minimize the memory footprint
on each device".  This module quantifies that: per-node HBM bytes for weights,
KV cache and activations, checked against the Alveo U50's 8 GiB of HBM2, and
the largest context length / model size a deployment can hold.

Used by the design-space example and by capacity-planning tests; it is an
extension (the paper reports no footprint numbers) but derives directly from
the published architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.kv_cache import KVCacheLayout
from repro.model.config import ModelConfig, layer_linear_specs

GIB = 1 << 30

#: usable HBM capacity of one Alveo U50 (8 GiB of HBM2)
ALVEO_U50_HBM_BYTES = 8 * GIB

#: HBM channels available on one U50 and per SLR (accelerator node)
ALVEO_U50_HBM_CHANNELS = 32


@dataclass
class NodeFootprint:
    """Per-node HBM footprint of one deployment."""

    model_name: str
    num_nodes: int
    context_len: int
    weight_bytes: int
    kv_cache_bytes: int
    activation_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.kv_cache_bytes + self.activation_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / GIB

    def fits(self, capacity_bytes: int = ALVEO_U50_HBM_BYTES,
             nodes_per_card: int = 2) -> bool:
        """True when this node's footprint fits its share of the card's HBM."""
        per_node_capacity = capacity_bytes // nodes_per_card
        return self.total_bytes <= per_node_capacity

    def utilization(self, capacity_bytes: int = ALVEO_U50_HBM_BYTES,
                    nodes_per_card: int = 2) -> float:
        per_node_capacity = capacity_bytes // nodes_per_card
        if per_node_capacity <= 0:
            return 0.0
        return self.total_bytes / per_node_capacity

    def as_dict(self) -> Dict[str, object]:
        return {
            "Model": self.model_name,
            "# Nodes": self.num_nodes,
            "Context": self.context_len,
            "Weights (MiB)": self.weight_bytes / (1 << 20),
            "KV cache (MiB)": self.kv_cache_bytes / (1 << 20),
            "Activations (MiB)": self.activation_bytes / (1 << 20),
            "Total (GiB)": self.total_gib,
            "Per-node HBM use (%)": 100 * self.utilization(),
        }


def node_footprint(model: ModelConfig, num_nodes: int = 1,
                   context_len: Optional[int] = None,
                   bytes_per_weight: int = 1,
                   kv_bytes_per_element: int = 1) -> NodeFootprint:
    """Per-node HBM footprint of serving ``model`` on ``num_nodes`` nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    context = context_len if context_len is not None else model.max_seq_len
    if context <= 0:
        raise ValueError("context_len must be positive")

    # weights: output-dimension split, so each node stores 1/N of every matrix
    weight_bytes = 0
    for spec in layer_linear_specs(model):
        weight_bytes += spec.out_features_per_node(num_nodes) * spec.in_features
    weight_bytes *= model.num_layers * bytes_per_weight
    # embeddings stay on the host in the paper's system design

    layout = KVCacheLayout(num_layers=model.num_layers, num_heads=model.num_heads,
                           head_dim=model.head_dim, max_seq_len=context,
                           bytes_per_element=kv_bytes_per_element,
                           num_nodes=num_nodes)
    kv_bytes = layout.capacity_bytes_per_node()

    # activations: double-buffered full embedding + MLP intermediate per node
    activation_bytes = 2 * (model.d_model + model.d_ff) * 4

    return NodeFootprint(model_name=model.name, num_nodes=num_nodes,
                         context_len=context, weight_bytes=weight_bytes,
                         kv_cache_bytes=kv_bytes, activation_bytes=activation_bytes)


def footprint_table(models: Optional[List[ModelConfig]] = None,
                    node_counts: (tuple) = (1, 2, 4),
                    context_len: int = 1024) -> List[Dict[str, object]]:
    """Footprint rows for a set of models and node counts."""
    models = models or [ModelConfig.gpt2_medium()]
    rows: List[Dict[str, object]] = []
    for model in models:
        for num_nodes in node_counts:
            if num_nodes > model.num_heads:
                continue
            footprint = node_footprint(model, num_nodes, context_len)
            row = footprint.as_dict()
            row["Fits U50 share"] = footprint.fits()
            rows.append(row)
    return rows


def max_context_length(model: ModelConfig, num_nodes: int = 1,
                       capacity_bytes: int = ALVEO_U50_HBM_BYTES,
                       nodes_per_card: int = 2,
                       bytes_per_weight: int = 1) -> int:
    """Largest context length whose per-node footprint still fits the HBM.

    Binary-searches the KV-cache length given the fixed weight footprint.
    Returns 0 if even an empty cache does not fit.
    """
    low, high = 0, 1 << 20
    baseline = node_footprint(model, num_nodes, context_len=1,
                              bytes_per_weight=bytes_per_weight)
    per_node_capacity = capacity_bytes // nodes_per_card
    fixed = baseline.weight_bytes + baseline.activation_bytes
    if fixed > per_node_capacity:
        return 0
    per_token = KVCacheLayout(model.num_layers, model.num_heads, model.head_dim,
                              max_seq_len=2, num_nodes=num_nodes
                              ).bytes_per_token_per_node()
    if per_token <= 0:
        return high
    return int((per_node_capacity - fixed) // per_token)
