"""Analysis utilities: breakdowns, scalability, comparisons, report tables."""

from repro.analysis.breakdown import (
    BreakdownStep,
    aggregate_breakdown_ms,
    latency_breakdown,
    optimization_walkthrough,
)
from repro.analysis.comparison import (
    Fig8Row,
    FpgaComparisonRow,
    fpga_comparison_table,
    gpu_comparison,
    summarize_gpu_comparison,
)
from repro.analysis.accuracy import AccuracyReport, alpha_sweep, evaluate_quantization
from repro.analysis.footprint import (
    ALVEO_U50_HBM_BYTES,
    NodeFootprint,
    footprint_table,
    max_context_length,
    node_footprint,
)
from repro.analysis.report import format_table, render_markdown_table
from repro.analysis.serving import (
    KV_MODES,
    kv_mode_comparison,
    metrics_row,
    policy_comparison,
    run_policy,
    tenant_breakdown,
)
from repro.analysis.scalability import ScalabilityRow, scaling_efficiency, throughput_table
from repro.analysis.utilization import (
    ArchitectureUtilization,
    architecture_comparison,
    attention_gantt,
    linear_layer_gantt,
    looplynx_active_area_fraction,
    looplynx_kernel_busy_fractions,
    render_gantt,
)

__all__ = [
    "BreakdownStep",
    "aggregate_breakdown_ms",
    "latency_breakdown",
    "optimization_walkthrough",
    "Fig8Row",
    "FpgaComparisonRow",
    "fpga_comparison_table",
    "gpu_comparison",
    "summarize_gpu_comparison",
    "format_table",
    "render_markdown_table",
    "KV_MODES",
    "kv_mode_comparison",
    "metrics_row",
    "policy_comparison",
    "run_policy",
    "tenant_breakdown",
    "ScalabilityRow",
    "scaling_efficiency",
    "throughput_table",
    "ArchitectureUtilization",
    "architecture_comparison",
    "attention_gantt",
    "linear_layer_gantt",
    "looplynx_active_area_fraction",
    "looplynx_kernel_busy_fractions",
    "render_gantt",
    "AccuracyReport",
    "alpha_sweep",
    "evaluate_quantization",
    "ALVEO_U50_HBM_BYTES",
    "NodeFootprint",
    "footprint_table",
    "max_context_length",
    "node_footprint",
]
