"""Latency breakdown and optimization walkthrough (Fig. 5).

The paper's Fig. 5 shows, for a single node running GPT-2:

* (a) the breakdown of the un-optimized design — linear + MHA computation
  accounts for 81.5% of the per-token latency, critical-path operators for
  18.5%;
* (b) the improvement from the optimization techniques — ~11% from
  parallelizing/overlapping the critical-path operators, ~15% total once the
  head-wise pipeline also hides the softmax.

:func:`latency_breakdown` aggregates the accelerator's per-component cycles
into readable categories; :func:`optimization_walkthrough` regenerates the
(a) → (b) progression by toggling the optimization switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import OptimizationConfig
from repro.core.multi_node import LoopLynxSystem

#: mapping from accelerator timing components to breakdown categories
CATEGORY_OF_COMPONENT: Dict[str, str] = {
    "linear": "linear_layers",
    "attention": "multi_head_attention",
    "softmax_exposed": "critical_path",
    "layer_norm": "critical_path",
    "residual": "critical_path",
    "gelu_bias": "critical_path",
    "stage_overhead": "critical_path",
    "kernel_fill": "critical_path",
    "quantization_drain": "critical_path",
    "ring_sync_exposed": "synchronization",
    "host_overhead": "critical_path",
}


@dataclass
class BreakdownStep:
    """One configuration point of the optimization walkthrough."""

    label: str
    latency_ms: float
    breakdown_ms: Dict[str, float] = field(default_factory=dict)
    improvement_vs_baseline: float = 0.0

    @property
    def matrix_fraction(self) -> float:
        total = sum(self.breakdown_ms.values())
        if total <= 0:
            return 0.0
        matrix = (self.breakdown_ms.get("linear_layers", 0.0)
                  + self.breakdown_ms.get("multi_head_attention", 0.0))
        return matrix / total

    @property
    def critical_path_fraction(self) -> float:
        total = sum(self.breakdown_ms.values())
        if total <= 0:
            return 0.0
        return self.breakdown_ms.get("critical_path", 0.0) / total


def aggregate_breakdown_ms(breakdown_cycles: Dict[str, float],
                           clock_hz: float) -> Dict[str, float]:
    """Aggregate per-component cycles into the Fig. 5 categories (in ms)."""
    out: Dict[str, float] = {}
    for component, cycles in breakdown_cycles.items():
        category = CATEGORY_OF_COMPONENT.get(component, "critical_path")
        out[category] = out.get(category, 0.0) + 1e3 * cycles / clock_hz
    return out


def latency_breakdown(system: LoopLynxSystem, context_len: Optional[int] = None,
                      optimizations: Optional[OptimizationConfig] = None
                      ) -> Dict[str, float]:
    """Per-token latency breakdown (ms) of a LoopLynx deployment."""
    report = system.decode_token_report(context_len, optimizations)
    return aggregate_breakdown_ms(report.breakdown_cycles, system.clock_hz)


def optimization_walkthrough(num_nodes: int = 1,
                             context_len: Optional[int] = None
                             ) -> List[BreakdownStep]:
    """The Fig. 5 progression: baseline, + critical-path fusion, + head-wise
    pipelining (the paper's full optimization set)."""
    system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
    configurations = [
        ("baseline", OptimizationConfig.baseline()),
        ("+ critical-path fusion", OptimizationConfig.critical_path_only()),
        ("+ head-wise pipelining", OptimizationConfig.paper_default()),
    ]
    steps: List[BreakdownStep] = []
    baseline_ms: Optional[float] = None
    for label, opts in configurations:
        report = system.decode_token_report(context_len, optimizations=opts)
        breakdown = aggregate_breakdown_ms(report.breakdown_cycles, system.clock_hz)
        if baseline_ms is None:
            baseline_ms = report.latency_ms
        improvement = 1.0 - report.latency_ms / baseline_ms if baseline_ms else 0.0
        steps.append(BreakdownStep(label=label, latency_ms=report.latency_ms,
                                   breakdown_ms=breakdown,
                                   improvement_vs_baseline=improvement))
    return steps
