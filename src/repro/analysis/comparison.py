"""Cross-platform comparisons: Table II (FPGA baselines) and Fig. 8 (A100).

:func:`fpga_comparison_table` reproduces Table II: average per-token latency
and resource utilization of the LoopLynx 1/2/4-node deployments next to the
DFX temporal baseline and the spatial-architecture baseline.

:func:`gpu_comparison` reproduces Fig. 8: for every ``[prefill : decode]``
scenario, the end-to-end latency of the A100 and of each LoopLynx deployment
(normalized to the 4-node configuration, as in the paper's Fig. 8(a)) and the
energy efficiency in tokens per joule normalized to the GPU (Fig. 8(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.gpu_a100 import A100Model
from repro.baselines.spatial import SpatialArchitectureModel
from repro.baselines.temporal_dfx import DfxTemporalModel
from repro.core.multi_node import LoopLynxSystem
from repro.energy.power import (
    EnergyReport,
    FpgaPowerModel,
    GpuPowerModel,
    efficiency_ratio,
    energy_fraction,
)
from repro.model.config import ModelConfig
from repro.workloads.scenarios import FIG8_SCENARIOS, Scenario


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

@dataclass
class FpgaComparisonRow:
    """One row of Table II."""

    architecture: str
    nodes: str
    frequency_mhz: float
    quantization: str
    token_latency_ms: float
    dsp: float
    bram: float
    lut_k: float
    ff_k: float
    uram: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "Architecture": self.architecture,
            "# Nodes": self.nodes,
            "Freq.": f"{self.frequency_mhz:.0f} MHz",
            "Quantization": self.quantization,
            "Token Latency (ms)": self.token_latency_ms,
            "DSP": self.dsp,
            "BRAM": self.bram,
            "LUT (K)": self.lut_k,
            "FF (K)": self.ff_k,
            "URAM": self.uram,
        }


#: Published resource utilization of the two FPGA baselines (from the
#: paper's Table II); their RTL is not available, so these columns are
#: catalogue data rather than model output.
DFX_PUBLISHED_RESOURCES = {"dsp": 3533, "bram": 1192, "lut_k": 520, "ff_k": 1107,
                           "uram": 104}
SPATIAL_PUBLISHED_RESOURCES = {"dsp": 1780, "bram": 389, "lut_k": 653, "ff_k": 569,
                               "uram": 111}


def fpga_comparison_table(context_len: int = 512,
                          node_counts: Sequence[int] = (4, 2, 1),
                          model: Optional[ModelConfig] = None
                          ) -> List[FpgaComparisonRow]:
    """Regenerate Table II (LoopLynx node sweep + DFX + spatial baselines)."""
    model = model or ModelConfig.gpt2_medium()
    rows: List[FpgaComparisonRow] = []
    for num_nodes in node_counts:
        system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
        latency = system.average_token_latency_ms(context_len)
        resources = system.resource_usage()
        cards = system.config.num_cards
        node_word = "Node" if num_nodes == 1 else "Nodes"
        rows.append(FpgaComparisonRow(
            architecture="LoopLynx",
            nodes=f"{num_nodes} {node_word} (U50 x{cards})",
            frequency_mhz=system.clock_hz / 1e6,
            quantization="W8A8",
            token_latency_ms=latency,
            dsp=resources.dsp,
            bram=resources.bram,
            lut_k=resources.lut / 1e3,
            ff_k=resources.ff / 1e3,
            uram=resources.uram,
        ))
    dfx = DfxTemporalModel(model)
    rows.append(FpgaComparisonRow(
        architecture="Temporal Architecture (DFX)",
        nodes="U280",
        frequency_mhz=dfx.config.clock_hz / 1e6,
        quantization="Float16",
        token_latency_ms=dfx.decode_token_latency_ms(context_len),
        **{k: float(v) for k, v in DFX_PUBLISHED_RESOURCES.items()},
    ))
    spatial = SpatialArchitectureModel(model)
    rows.append(FpgaComparisonRow(
        architecture="Spatial Architecture",
        nodes="U280",
        frequency_mhz=spatial.config.clock_hz / 1e6,
        quantization="W8A8",
        token_latency_ms=spatial.decode_token_latency_ms(context_len),
        **{k: float(v) for k, v in SPATIAL_PUBLISHED_RESOURCES.items()},
    ))
    return rows


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------

@dataclass
class Fig8Row:
    """One scenario point of Fig. 8 (latency + energy efficiency)."""

    scenario: str
    prefill_len: int
    decode_len: int
    latency_ms: Dict[str, float] = field(default_factory=dict)
    normalized_latency: Dict[str, float] = field(default_factory=dict)
    energy_joules: Dict[str, float] = field(default_factory=dict)
    normalized_efficiency: Dict[str, float] = field(default_factory=dict)
    speedup_vs_gpu: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"Scenario": self.scenario}
        for platform, value in self.normalized_latency.items():
            row[f"lat {platform}"] = value
        for platform, value in self.normalized_efficiency.items():
            row[f"eff {platform}"] = value
        return row


def _platform_label(num_nodes: int) -> str:
    return f"{num_nodes}-node"


def gpu_comparison(scenarios: Sequence[Scenario] = FIG8_SCENARIOS,
                   node_counts: Sequence[int] = (1, 2, 4),
                   model: Optional[ModelConfig] = None,
                   fpga_power: Optional[FpgaPowerModel] = None,
                   gpu_power: Optional[GpuPowerModel] = None) -> List[Fig8Row]:
    """Regenerate the Fig. 8 data: per-scenario latency (normalized to the
    4-node deployment) and energy efficiency (normalized to the A100)."""
    model = model or ModelConfig.gpt2_medium()
    fpga_power = fpga_power or FpgaPowerModel()
    gpu_power = gpu_power or GpuPowerModel()
    gpu = A100Model(model)
    systems = {n: LoopLynxSystem.paper_configuration(num_nodes=n) for n in node_counts}
    reference_label = _platform_label(max(node_counts))

    rows: List[Fig8Row] = []
    for scenario in scenarios:
        row = Fig8Row(scenario=scenario.label, prefill_len=scenario.prefill_len,
                      decode_len=scenario.decode_len)
        gpu_latency = gpu.scenario_latency_ms(scenario.prefill_len, scenario.decode_len)
        row.latency_ms["A100"] = gpu_latency
        gpu_report = gpu_power.report(gpu_latency, tokens=scenario.decode_len)
        row.energy_joules["A100"] = gpu_report.energy_joules

        for num_nodes, system in systems.items():
            label = _platform_label(num_nodes)
            report = system.run_scenario(scenario.prefill_len, scenario.decode_len)
            row.latency_ms[label] = report.total_ms
            fpga_report = fpga_power.report(num_nodes, report.total_ms,
                                            tokens=scenario.decode_len,
                                            nodes_per_card=system.config.nodes_per_card)
            row.energy_joules[label] = fpga_report.energy_joules
            row.normalized_efficiency[label] = efficiency_ratio(fpga_report, gpu_report)
            row.speedup_vs_gpu[label] = (gpu_latency / report.total_ms
                                         if report.total_ms > 0 else 0.0)

        reference_latency = row.latency_ms[reference_label]
        for platform, latency in row.latency_ms.items():
            row.normalized_latency[platform] = (latency / reference_latency
                                                if reference_latency > 0 else 0.0)
        row.normalized_efficiency["A100"] = 1.0
        rows.append(row)
    return rows


def summarize_gpu_comparison(rows: Sequence[Fig8Row],
                             node_counts: Sequence[int] = (1, 2, 4)
                             ) -> Dict[str, Dict[str, float]]:
    """Average speed-up, energy-efficiency ratio and energy fraction per
    deployment — the headline numbers of the abstract (2-node: 1.67x speed-up
    at 37.3% of the A100's energy; 4-node: 2.52x at 48.1%)."""
    summary: Dict[str, Dict[str, float]] = {}
    for num_nodes in node_counts:
        label = _platform_label(num_nodes)
        speedups = [row.speedup_vs_gpu[label] for row in rows if label in row.speedup_vs_gpu]
        efficiencies = [row.normalized_efficiency[label] for row in rows
                        if label in row.normalized_efficiency]
        fpga_energy = sum(row.energy_joules[label] for row in rows
                          if label in row.energy_joules)
        gpu_energy = sum(row.energy_joules["A100"] for row in rows
                         if "A100" in row.energy_joules)
        summary[label] = {
            "average_speedup_vs_gpu": sum(speedups) / len(speedups) if speedups else 0.0,
            "average_efficiency_ratio": (sum(efficiencies) / len(efficiencies)
                                         if efficiencies else 0.0),
            # total energy over the whole scenario mix, relative to the GPU
            # (the paper's "consumes only X% of the energy" figure)
            "average_energy_fraction": (fpga_energy / gpu_energy
                                        if gpu_energy > 0 else 0.0),
        }
    return summary
