"""Throughput and scalability analysis (Table III).

Table III of the paper reports decode throughput for 1/2/4-node deployments
(151.7 / 259.7 / 392.2 tokens/s) and the step speed-ups (2-node vs 1-node:
1.71x; 4-node vs 2-node: 1.51x), noting the sub-linear growth caused by the
non-distributable critical-path operators and by exposed quantization /
synchronization when the per-node matrix blocks become small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.multi_node import LoopLynxSystem


@dataclass
class ScalabilityRow:
    """One node-count point of the scalability table."""

    num_nodes: int
    token_latency_ms: float
    tokens_per_second: float
    speedup_vs_previous: Optional[float]
    speedup_vs_single: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "# Nodes": f"{self.num_nodes}-node",
            "Token Latency (ms)": self.token_latency_ms,
            "Tokens Per Second": self.tokens_per_second,
            "Speed-up vs prev": (f"{self.speedup_vs_previous:.2f}x"
                                 if self.speedup_vs_previous is not None else "-"),
            "Speed-up vs 1-node": f"{self.speedup_vs_single:.2f}x",
        }


def throughput_table(node_counts: Sequence[int] = (1, 2, 4),
                     context_len: Optional[int] = None) -> List[ScalabilityRow]:
    """Regenerate Table III for the given node counts."""
    if not node_counts:
        raise ValueError("need at least one node count")
    rows: List[ScalabilityRow] = []
    previous_tps: Optional[float] = None
    single_tps: Optional[float] = None
    for num_nodes in node_counts:
        system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
        latency = system.average_token_latency_ms(context_len)
        tps = system.throughput_tokens_per_second(context_len)
        if single_tps is None:
            single_tps = tps
        rows.append(ScalabilityRow(
            num_nodes=num_nodes,
            token_latency_ms=latency,
            tokens_per_second=tps,
            speedup_vs_previous=(tps / previous_tps if previous_tps else None),
            speedup_vs_single=tps / single_tps,
        ))
        previous_tps = tps
    return rows


def scaling_efficiency(rows: Sequence[ScalabilityRow]) -> Dict[int, float]:
    """Parallel efficiency relative to ideal linear scaling from the first
    row: ``speedup / (nodes / nodes_first)``."""
    if not rows:
        return {}
    base_nodes = rows[0].num_nodes
    out: Dict[int, float] = {}
    for row in rows:
        ideal = row.num_nodes / base_nodes
        out[row.num_nodes] = row.speedup_vs_single / ideal if ideal > 0 else 0.0
    return out
