"""Plain-text and markdown table rendering for experiment outputs.

The benchmark harnesses print the same rows/series the paper reports; these
helpers keep that output aligned and readable without any plotting
dependency (the environment is offline and headless).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object, float_digits: int = 2) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def _normalize_rows(rows: Sequence[Mapping[str, object]],
                    columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    ordered: List[str] = []
    for row in rows:
        for key in row:
            if key not in ordered:
                ordered.append(key)
    return ordered


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_digits: int = 2, title: Optional[str] = None) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    if not rows:
        return title + "\n(no rows)" if title else "(no rows)"
    cols = _normalize_rows(rows, columns)
    rendered = [[_format_value(row.get(col, ""), float_digits) for col in cols]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_markdown_table(rows: Sequence[Mapping[str, object]],
                          columns: Optional[Sequence[str]] = None,
                          float_digits: int = 2) -> str:
    """Render rows of dictionaries as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    cols = _normalize_rows(rows, columns)
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join(["---"] * len(cols)) + "|"]
    for row in rows:
        cells = [_format_value(row.get(col, ""), float_digits) for col in cols]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
