"""Area-utilization analysis: temporal vs. spatial vs. hybrid (paper Fig. 3).

The paper's core argument is about *peak area utilization during decode*:

* a **temporal** architecture serializes read / compute / write-back, so its
  (single, large) processing engine sits idle whenever memory is being moved;
* a **spatial** architecture instantiates every operator, but the token-serial
  decode keeps only one operator active at a time, so most of the instantiated
  area idles;
* the **hybrid** LoopLynx design instantiates one large kernel per operator
  *class* and reuses it, so whichever kernel is active engages a much larger
  share of the device.

This module quantifies that argument from the models in this repository:
per-kernel busy fractions during a decode step (from the LoopLynx cycle
model), the active-area share of each architecture style, and Gantt rows from
the event-driven kernel simulations for visualisation in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.spatial import SpatialArchitectureModel
from repro.baselines.temporal_dfx import DfxTemporalModel
from repro.core.config import HardwareConfig
from repro.core.event_sim import EventDrivenAttentionKernel, EventDrivenMatrixKernel
from repro.core.multi_node import LoopLynxSystem
from repro.core.resources import PER_NODE_KERNEL_RESOURCES, node_resources
from repro.model.config import ModelConfig, layer_linear_specs


@dataclass
class ArchitectureUtilization:
    """Active-area summary of one architecture style during decode."""

    name: str
    token_latency_ms: float
    active_area_fraction: float
    notes: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "Architecture": self.name,
            "Token latency (ms)": self.token_latency_ms,
            "Active compute-area share (%)": 100 * self.active_area_fraction,
            "Notes": self.notes,
        }


def looplynx_kernel_busy_fractions(num_nodes: int = 1,
                                   context_len: Optional[int] = None
                                   ) -> Dict[str, float]:
    """Busy fraction of each macro dataflow kernel during one decode step."""
    system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
    return system.kernel_utilization(context_len)


def looplynx_active_area_fraction(num_nodes: int = 1,
                                  context_len: Optional[int] = None) -> float:
    """Time-and-area weighted utilization of the LoopLynx node.

    Each kernel's busy fraction is weighted by its share of the node's DSP
    area; the result is the average fraction of instantiated compute area that
    is doing useful work during a decode step.
    """
    busy = looplynx_kernel_busy_fractions(num_nodes, context_len)
    total_dsp = node_resources().dsp
    weighted = 0.0
    for kernel_name, usage in PER_NODE_KERNEL_RESOURCES.items():
        if usage.dsp <= 0:
            continue
        weighted += busy.get(kernel_name, 0.0) * (usage.dsp / total_dsp)
    return weighted


def temporal_active_area_fraction(model: Optional[ModelConfig] = None,
                                  context_len: int = 512) -> float:
    """Active-area share of the DFX-like temporal baseline.

    The overlay's processing engines compute only during the compute phase of
    each read -> compute -> write-back sequence; the rest of the time the
    (single, monolithic) compute area waits on memory and instruction issue.
    """
    model = model or ModelConfig.gpt2_medium()
    dfx = DfxTemporalModel(model)
    breakdown = dfx.latency_breakdown_ms(context_len)
    total = sum(breakdown.values())
    if total <= 0:
        return 0.0
    config = dfx.config
    compute_ms = 0.0
    for spec in layer_linear_specs(model):
        compute_ms += (spec.weight_elements / config.macs_per_cycle) / config.clock_hz * 1e3
    compute_ms += (2 * context_len * model.d_model / config.macs_per_cycle
                   / config.clock_hz * 1e3)
    compute_ms *= model.num_layers
    return min(compute_ms / total, 1.0)


def spatial_active_area_fraction(model: Optional[ModelConfig] = None,
                                 context_len: int = 512) -> float:
    """Active-area share of the spatial baseline during decode.

    Operators execute one after another, so at any instant roughly one of the
    ``operator_partitions`` instantiated kernels is active; the average active
    share is therefore about ``1 / partitions`` (weighted by how long each
    operator runs, which is what the latency breakdown provides).
    """
    model = model or ModelConfig.gpt2_medium()
    spatial = SpatialArchitectureModel(model)
    return 1.0 / spatial.config.operator_partitions


def architecture_comparison(context_len: int = 512) -> List[ArchitectureUtilization]:
    """The Fig. 3 argument as numbers: latency and active-area share of the
    three architecture styles during decode."""
    model = ModelConfig.gpt2_medium()
    temporal = DfxTemporalModel(model)
    spatial = SpatialArchitectureModel(model)
    looplynx = LoopLynxSystem.paper_configuration(num_nodes=2)
    return [
        ArchitectureUtilization(
            name="Temporal (DFX-like overlay)",
            token_latency_ms=temporal.decode_token_latency_ms(context_len),
            active_area_fraction=temporal_active_area_fraction(model, context_len),
            notes="serialized read/compute/write-back keeps PEs idle on memory",
        ),
        ArchitectureUtilization(
            name="Spatial (all operators instantiated)",
            token_latency_ms=spatial.decode_token_latency_ms(context_len),
            active_area_fraction=spatial_active_area_fraction(model, context_len),
            notes="token-serial decode activates one operator kernel at a time",
        ),
        ArchitectureUtilization(
            name="LoopLynx hybrid (2 nodes)",
            token_latency_ms=looplynx.average_token_latency_ms(context_len),
            active_area_fraction=looplynx_active_area_fraction(num_nodes=2,
                                                               context_len=context_len),
            notes="macro kernels reused temporally; active kernel spans most of the area",
        ),
    ]


def linear_layer_gantt(hardware: Optional[HardwareConfig] = None,
                       num_nodes: int = 1) -> List[Tuple[str, int, int]]:
    """Gantt rows (unit, start, stop) of one QKV-projection execution through
    the event-driven Fused MP kernel — used by the examples to visualise the
    DMA/MPU/quant/router overlap."""
    hardware = hardware or HardwareConfig()
    kernel = EventDrivenMatrixKernel(hardware)
    spec = layer_linear_specs(ModelConfig.gpt2_medium())[0]
    result = kernel.simulate_linear(spec, num_nodes=num_nodes)
    return result.trace.gantt_rows()


def attention_gantt(hardware: Optional[HardwareConfig] = None,
                    context_len: int = 512, headwise_pipelining: bool = True
                    ) -> List[Tuple[str, int, int]]:
    """Gantt rows of one attention layer through the event-driven Fused MHA
    kernel (with or without the head-wise pipelining)."""
    hardware = hardware or HardwareConfig()
    kernel = EventDrivenAttentionKernel(hardware)
    model = ModelConfig.gpt2_medium()
    result = kernel.simulate_decode_layer(context_len, model.num_heads,
                                          model.head_dim, headwise_pipelining)
    return result.trace.gantt_rows()


def render_gantt(rows: List[Tuple[str, int, int]], width: int = 60) -> str:
    """Render Gantt rows as ASCII bars (for the examples' terminal output)."""
    if not rows:
        return "(no activity)"
    span = max(stop for _, _, stop in rows) or 1
    label_width = max(len(name) for name, _, _ in rows)
    lines = []
    for name, start, stop in rows:
        begin = int(round(width * start / span))
        end = max(begin + 1, int(round(width * stop / span)))
        bar = " " * begin + "#" * (end - begin)
        lines.append(f"{name.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{start}-{stop}")
    return "\n".join(lines)
