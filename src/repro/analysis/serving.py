"""Serving-policy comparisons built on the token-level engine.

These helpers run one trace through several serving configurations and lay
the resulting :class:`~repro.serving.metrics.ServingMetrics` out as table
rows for the ``serve`` CLI subcommand, the chatbot-serving example and the
serving benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.multi_node import LoopLynxSystem
from repro.serving.engine import TokenServingEngine
from repro.serving.schedulers import KVAdmissionController
from repro.serving.simulator import FIFO_EXCLUSIVE, ServingSimulator
from repro.workloads.traces import RequestTrace


def run_policy(trace: RequestTrace, policy: str,
               num_instances: int = 1, num_nodes_per_instance: int = 2,
               max_batch_size: int = 8,
               kv_budget_bytes: Optional[int] = None,
               **engine_kwargs):
    """Run ``trace`` under one policy and return ``(metrics, records)``.

    ``policy`` may be ``fifo-exclusive`` (whole-request compatibility mode;
    it serves one request at a time, so ``max_batch_size`` does not apply and
    a KV budget is rejected rather than silently ignored) or any token-level
    policy; ``kv_budget_bytes`` enables the KV-capacity admission controller
    (per-node byte budget).
    """
    if policy == FIFO_EXCLUSIVE:
        if kv_budget_bytes is not None:
            raise ValueError(
                "fifo-exclusive has no KV admission control; drop the KV "
                "budget or pick a token-level policy")
        simulator = ServingSimulator(num_instances=num_instances,
                                     num_nodes_per_instance=num_nodes_per_instance)
        return simulator.run(trace)
    kv_controller = None
    if kv_budget_bytes is not None:
        system = LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        kv_controller = KVAdmissionController.for_system(
            system, budget_bytes=kv_budget_bytes)
        engine_kwargs = dict(engine_kwargs, system=system)
    engine = TokenServingEngine(num_instances=num_instances,
                                num_nodes_per_instance=num_nodes_per_instance,
                                policy=policy, max_batch_size=max_batch_size,
                                kv_controller=kv_controller, **engine_kwargs)
    return engine.run(trace)


def metrics_row(label: str, metrics) -> Dict[str, object]:
    """One policy's summary as a flat table row."""
    summary = metrics.summary()
    row: Dict[str, object] = {
        "Policy": label,
        "Throughput (tok/s)": summary["throughput_tok_s"],
        "Mean queue delay (s)": summary["mean_queue_delay_s"],
        "P50 latency (s)": summary["p50_latency_s"],
        "P99 latency (s)": summary["p99_latency_s"],
    }
    if metrics.ttfts_s:
        row["P50 TTFT (s)"] = summary["p50_ttft_s"]
        row["P99 TTFT (s)"] = summary["p99_ttft_s"]
        row["P50 TPOT (s)"] = summary["p50_tpot_s"]
        if metrics.preemptions:
            row["Preemptions"] = metrics.preemptions
    return row


def policy_comparison(trace: RequestTrace,
                      policies: Sequence[str] = (FIFO_EXCLUSIVE, "fifo", "sjf"),
                      num_instances: int = 1,
                      num_nodes_per_instance: int = 2,
                      max_batch_size: int = 8,
                      kv_budget_bytes: Optional[int] = None
                      ) -> List[Dict[str, object]]:
    """Serve the same trace under each policy and tabulate the summaries.

    With a KV budget, ``fifo-exclusive`` is excluded (it has no admission
    control, so its row would not be comparable to the constrained ones).
    """
    rows = []
    if kv_budget_bytes is not None:
        policies = [p for p in policies if p != FIFO_EXCLUSIVE]
    for policy in policies:
        metrics, _ = run_policy(trace, policy, num_instances=num_instances,
                                num_nodes_per_instance=num_nodes_per_instance,
                                max_batch_size=max_batch_size,
                                kv_budget_bytes=kv_budget_bytes)
        rows.append(metrics_row(policy, metrics))
    return rows


def tenant_breakdown(records) -> List[Dict[str, object]]:
    """Per-tenant latency/TTFT means from token-level request records."""
    by_tenant: Dict[str, list] = {}
    for record in records:
        by_tenant.setdefault(record.tenant, []).append(record)
    rows = []
    for tenant in sorted(by_tenant):
        group = by_tenant[tenant]
        ttfts = [r.ttft_s for r in group if r.ttft_s is not None]
        rows.append({
            "Tenant": tenant,
            "Requests": len(group),
            "Mean TTFT (s)": sum(ttfts) / len(ttfts) if ttfts else 0.0,
            "Mean latency (s)": (sum(r.end_to_end_latency_s for r in group)
                                 / len(group)),
            "Preemptions": sum(r.preemptions for r in group),
        })
    return rows
