"""Serving-policy comparisons built on the token-level engine.

These helpers run one trace through several serving configurations and lay
the resulting :class:`~repro.serving.metrics.ServingMetrics` out as table
rows for the ``serve`` CLI subcommand, the chatbot-serving example and the
serving benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.multi_node import LoopLynxSystem
from repro.memory.paged_kv import PagedKVManager
from repro.serving.cluster import (
    ClusterSpec,
    InstanceSpec,
    ROUTER_NAMES,
    parse_cluster_spec,
)
from repro.serving.engine import PREFILL_MODES, ServedRequest, TokenServingEngine
from repro.serving.schedulers import KVAdmissionController
from repro.serving.simulator import FIFO_EXCLUSIVE, ServingSimulator
from repro.workloads.traces import RequestTrace

#: KV capacity regimes accepted by :func:`run_policy` and the serve CLI.
KV_MODES = ("reserve", "paged")


def run_policy(trace: RequestTrace, policy: str,
               num_instances: int = 1, num_nodes_per_instance: int = 2,
               max_batch_size: int = 8,
               kv_budget_bytes: Optional[int] = None,
               kv_mode: str = "reserve",
               kv_block_size: int = 16,
               preemption_mode: str = "swap",
               prefill_mode: str = "exclusive",
               mixed_step_token_budget: Optional[int] = None,
               instances: Optional[Union[str, ClusterSpec]] = None,
               router: str = "round_robin",
               swap_priority: bool = False,
               kv_prefix_sharing: bool = False,
               **engine_kwargs: Any
               ) -> Tuple[ServingMetrics, List[ServedRequest]]:
    """Run ``trace`` under one policy and return ``(metrics, records)``.

    ``policy`` may be ``fifo-exclusive`` (whole-request compatibility mode;
    it serves one request at a time, so ``max_batch_size`` does not apply and
    KV options are rejected rather than silently ignored) or any token-level
    policy.

    ``instances`` optionally replaces the flat ``num_instances`` ×
    ``num_nodes_per_instance`` pool with a cluster spec (e.g.
    ``"2x1n,2x2n,1x4n"``); ``router`` then picks the cluster-routing policy
    (heterogeneous pools only — single-class pools are bit-identical to the
    flat pool under every router).  The KV options apply per instance
    class.  ``swap_priority`` makes each instance resume its own swapped-out
    requests ahead of new admissions (paged ``swap`` mode).

    ``prefill_mode`` selects how prompts share steps with running decodes:
    ``"exclusive"`` (one prefill chunk per step, decodes stall — the
    historical regime, bit-identical to the engine before mixed steps
    existed) or ``"mixed"`` (prompts stream in alongside decodes under a
    per-step token budget, ``mixed_step_token_budget``; ``None`` uses the
    engine default).  Like the KV options, mixed prefill is rejected for
    ``fifo-exclusive`` rather than silently ignored.

    KV capacity is controlled by ``kv_mode``:

    * ``"reserve"`` — with ``kv_budget_bytes`` set, the PR 1 worst-case
      reservation controller gates admission (per-node byte budget); with no
      budget, admission is unconstrained.  This mode is bit-identical to the
      engine before paged allocation existed.
    * ``"paged"`` — a :class:`~repro.memory.paged_kv.PagedKVManager` with
      ``kv_block_size``-token blocks allocates on demand;
      ``kv_budget_bytes`` defaults to the node's full HBM share net of
      weights.  ``preemption_mode`` picks what eviction does to a victim's
      blocks (``"swap"`` to host over PCIe, ``"recompute"`` discard).

    ``kv_prefix_sharing`` (paged mode only) content-hashes full prompt
    blocks into per-pool prefix indices so requests sharing a prompt prefix
    reuse cached blocks (copy-on-write on divergence) and skip the matched
    prefill tokens.  Off by default — historical runs stay bit-identical.
    """
    if kv_mode not in KV_MODES:
        raise ValueError(f"unknown kv mode {kv_mode!r}; "
                         f"known: {', '.join(KV_MODES)}")
    if kv_prefix_sharing and kv_mode != "paged":
        raise ValueError(
            "kv_prefix_sharing builds prefix indices into the paged block "
            "pools; it requires kv_mode='paged'")
    if policy == FIFO_EXCLUSIVE:
        if kv_budget_bytes is not None or kv_mode == "paged":
            raise ValueError(
                "fifo-exclusive has no KV admission control; drop the KV "
                "options or pick a token-level policy")
        if prefill_mode != "exclusive":
            raise ValueError(
                "fifo-exclusive serves whole requests and cannot mix "
                "prefill into decode steps; pick a token-level policy")
        if instances is not None:
            raise ValueError(
                "fifo-exclusive predates the cluster layer; pick a "
                "token-level policy to use --instances/--router")
        if swap_priority:
            raise ValueError(
                "fifo-exclusive never preempts, so swap_priority has "
                "nothing to prioritize; pick a token-level policy")
        if engine_kwargs.get("metrics_mode", "full") != "full":
            raise ValueError(
                "fifo-exclusive predates streaming metrics; pick a "
                "token-level policy to use metrics_mode")
        simulator = ServingSimulator(num_instances=num_instances,
                                     num_nodes_per_instance=num_nodes_per_instance)
        return simulator.run(trace)
    if mixed_step_token_budget is not None:
        engine_kwargs = dict(engine_kwargs,
                             mixed_step_token_budget=mixed_step_token_budget)
    if instances is not None:
        if isinstance(instances, str):
            instances = parse_cluster_spec(instances)
        engine = TokenServingEngine(
            cluster=instances, router=router,
            policy=policy, max_batch_size=max_batch_size,
            prefill_mode=prefill_mode,
            kv_mode=("paged" if kv_mode == "paged"
                     else "reserve" if kv_budget_bytes is not None else None),
            kv_budget_bytes=kv_budget_bytes,
            kv_block_size=kv_block_size,
            kv_prefix_sharing=kv_prefix_sharing,
            preemption_mode=preemption_mode,
            swap_priority=swap_priority,
            **engine_kwargs)
        return engine.run(trace)
    if swap_priority:
        engine_kwargs = dict(engine_kwargs, swap_priority=True)
    kv_controller = None
    kv_block_manager = None
    if kv_mode == "paged":
        system = LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        kv_block_manager = PagedKVManager.for_system(
            system, block_size_tokens=kv_block_size,
            budget_bytes=kv_budget_bytes,
            prefix_sharing=kv_prefix_sharing)
        engine_kwargs = dict(engine_kwargs, system=system)
    elif kv_budget_bytes is not None:
        system = LoopLynxSystem.paper_configuration(
            num_nodes=num_nodes_per_instance)
        kv_controller = KVAdmissionController.for_system(
            system, budget_bytes=kv_budget_bytes)
        engine_kwargs = dict(engine_kwargs, system=system)
    engine = TokenServingEngine(num_instances=num_instances,
                                num_nodes_per_instance=num_nodes_per_instance,
                                policy=policy, max_batch_size=max_batch_size,
                                prefill_mode=prefill_mode,
                                kv_controller=kv_controller,
                                kv_block_manager=kv_block_manager,
                                preemption_mode=preemption_mode,
                                **engine_kwargs)
    return engine.run(trace)


def metrics_row(label: str, metrics: ServingMetrics) -> Dict[str, object]:
    """One policy's summary as a flat table row."""
    summary = metrics.summary()
    row: Dict[str, object] = {
        "Policy": label,
        "Throughput (tok/s)": summary["throughput_tok_s"],
        "Mean queue delay (s)": summary["mean_queue_delay_s"],
        "P50 latency (s)": summary["p50_latency_s"],
        "P99 latency (s)": summary["p99_latency_s"],
    }
    if metrics.has_token_metrics:
        row["P50 TTFT (s)"] = summary["p50_ttft_s"]
        row["P95 TTFT (s)"] = summary["p95_ttft_s"]
        row["P99 TTFT (s)"] = summary["p99_ttft_s"]
        row["P50 TPOT (s)"] = summary["p50_tpot_s"]
        if metrics.preemptions:
            row["Preemptions"] = metrics.preemptions
    if metrics.mean_running_batch > 0:
        row["Mean batch"] = metrics.mean_running_batch
    if metrics.kv_mode == "paged":
        row["KV occupancy"] = metrics.mean_kv_occupancy
        row["Swaps"] = metrics.swap_out_count
    return row


def _sweep_metrics(trace: RequestTrace,
                   labeled_configs: Sequence[Tuple[str, Dict[str, Any]]],
                   workers: int) -> List[ServingMetrics]:
    """Run labelled run_policy configurations through the sweep engine.

    ``workers=1`` executes in-process in config order — byte-for-byte
    the behavior of the old serial for-loops; larger values fan the
    configs over a process pool (results stay in config order and
    bit-identical to serial).  A failing config raises, preserving the
    comparisons' fail-fast contract.
    """
    from repro.serving.sweep import SweepJob, run_jobs
    jobs = [SweepJob(index=i, label=label, trace=trace, params=params)
            for i, (label, params) in enumerate(labeled_configs)]
    outcome = run_jobs(jobs, workers=workers, keep_metrics=True)
    outcome.raise_failures()
    return [r.metrics for r in outcome.results if r.metrics is not None]


def policy_comparison(trace: RequestTrace,
                      policies: Sequence[str] = (FIFO_EXCLUSIVE, "fifo", "sjf"),
                      num_instances: int = 1,
                      num_nodes_per_instance: int = 2,
                      max_batch_size: int = 8,
                      kv_budget_bytes: Optional[int] = None,
                      kv_mode: str = "reserve",
                      kv_block_size: int = 16,
                      preemption_mode: str = "swap",
                      workers: int = 1
                      ) -> List[Dict[str, object]]:
    """Serve the same trace under each policy and tabulate the summaries.

    The KV options mirror :func:`run_policy` and apply to every token-level
    row.  With a KV budget or paged mode, ``fifo-exclusive`` is excluded
    (it has no admission control, so its row would not be comparable to the
    constrained ones).  ``workers`` fans the rows over a process pool
    (bit-identical to serial; see :mod:`repro.serving.sweep`).
    """
    if kv_budget_bytes is not None or kv_mode == "paged":
        policies = [p for p in policies if p != FIFO_EXCLUSIVE]
    configs = [(policy, dict(policy=policy, num_instances=num_instances,
                             num_nodes_per_instance=num_nodes_per_instance,
                             max_batch_size=max_batch_size,
                             kv_budget_bytes=kv_budget_bytes,
                             kv_mode=kv_mode, kv_block_size=kv_block_size,
                             preemption_mode=preemption_mode))
               for policy in policies]
    return [metrics_row(label, metrics)
            for (label, _), metrics
            in zip(configs, _sweep_metrics(trace, configs, workers))]


def kv_mode_comparison(trace: RequestTrace, kv_budget_bytes: int,
                       policy: str = "fifo",
                       num_instances: int = 1,
                       num_nodes_per_instance: int = 2,
                       max_batch_size: int = 8,
                       kv_block_size: int = 16,
                       preemption_mode: str = "swap",
                       workers: int = 1
                       ) -> List[Dict[str, object]]:
    """Serve one trace under the same KV byte budget in reservation mode and
    paged mode (plus paged/recompute when ``preemption_mode`` is ``swap``)
    and tabulate the summaries side by side.

    This is the comparison the paged subsystem exists to win: with identical
    capacity, on-demand block allocation sustains a higher running batch than
    worst-case reservations.
    """
    modes = [("reserve", "reserve", "swap"),
             (f"paged/{preemption_mode}", "paged", preemption_mode)]
    if preemption_mode == "swap":
        modes.append(("paged/recompute", "paged", "recompute"))
    configs = [(label, dict(policy=policy, num_instances=num_instances,
                            num_nodes_per_instance=num_nodes_per_instance,
                            max_batch_size=max_batch_size,
                            kv_budget_bytes=kv_budget_bytes,
                            kv_mode=kv_mode, kv_block_size=kv_block_size,
                            preemption_mode=mode))
               for label, kv_mode, mode in modes]
    return [metrics_row(label, metrics)
            for (label, _), metrics
            in zip(configs, _sweep_metrics(trace, configs, workers))]


def prefill_mode_comparison(trace: RequestTrace,
                            policy: str = "fifo",
                            num_instances: int = 1,
                            num_nodes_per_instance: int = 2,
                            max_batch_size: int = 8,
                            mixed_step_token_budget: Optional[int] = None,
                            kv_budget_bytes: Optional[int] = None,
                            kv_mode: str = "reserve",
                            kv_block_size: int = 16,
                            preemption_mode: str = "swap",
                            workers: int = 1
                            ) -> List[Dict[str, object]]:
    """Serve one trace under exclusive and mixed prefill and tabulate the
    summaries side by side.

    This is the comparison mixed steps exist to win: with prompts streaming
    in alongside live decodes instead of stalling them, tail TTFT drops on
    bursty traffic without giving up generated-token throughput (the
    benchmark suite asserts it).  The KV options mirror :func:`run_policy`
    and apply to both rows.
    """
    configs = [(prefill_mode,
                dict(policy=policy, num_instances=num_instances,
                     num_nodes_per_instance=num_nodes_per_instance,
                     max_batch_size=max_batch_size,
                     kv_budget_bytes=kv_budget_bytes,
                     kv_mode=kv_mode, kv_block_size=kv_block_size,
                     preemption_mode=preemption_mode,
                     prefill_mode=prefill_mode,
                     mixed_step_token_budget=mixed_step_token_budget))
               for prefill_mode in PREFILL_MODES]
    rows = []
    for (prefill_mode, _), metrics in zip(
            configs, _sweep_metrics(trace, configs, workers)):
        row = metrics_row(prefill_mode, metrics)
        # "stall" = pure-prefill steps, where no decode advances: the cost
        # exclusive mode pays for every prompt and mixed mode only pays
        # when nothing is decoding.  Mixed steps are reported separately —
        # their duration is mostly decode work, so folding them into a
        # prefill share would make the rows incomparable.
        row["Prefill-stall share"] = metrics.prefill_time_share
        row["Mixed-step share"] = metrics.mixed_time_share
        row["Utilization"] = metrics.instance_utilization
        rows.append(row)
    return rows


def router_comparison(trace: RequestTrace, instances: Union[str, ClusterSpec],
                      routers: Sequence[str] = ROUTER_NAMES,
                      policy: str = "fifo",
                      max_batch_size: int = 8,
                      kv_budget_bytes: Optional[int] = None,
                      kv_mode: str = "reserve",
                      kv_block_size: int = 16,
                      preemption_mode: str = "swap",
                      prefill_mode: str = "exclusive",
                      swap_priority: bool = False,
                      kv_prefix_sharing: bool = False,
                      workers: int = 1
                      ) -> List[Dict[str, object]]:
    """Serve one trace on the same cluster under each router and tabulate
    the summaries side by side.

    This is the comparison the routing layer exists to win: on a
    heterogeneous pool, placement-aware routers (``kv_aware``,
    ``class_affinity``) should beat shape-blind rotation on tail TTFT.  On
    a single-class pool every row is identical by construction — a useful
    smoke check that routing never costs anything when there is nothing to
    decide.
    """
    configs = [(router,
                dict(policy=policy, instances=instances,
                     router=router, max_batch_size=max_batch_size,
                     kv_budget_bytes=kv_budget_bytes,
                     kv_mode=kv_mode, kv_block_size=kv_block_size,
                     preemption_mode=preemption_mode,
                     prefill_mode=prefill_mode,
                     swap_priority=swap_priority,
                     kv_prefix_sharing=kv_prefix_sharing))
               for router in routers]
    rows = []
    for (router, _), metrics in zip(
            configs, _sweep_metrics(trace, configs, workers)):
        row = metrics_row(router, metrics)
        row["P95 TTFT (s)"] = metrics.ttft_percentile_s(0.95)
        if kv_prefix_sharing:
            row["Prefix hits"] = metrics.prefix_hits
            row["Prefill tokens saved"] = metrics.prefill_tokens_saved
        rows.append(row)
    return rows


def strip_roles(spec: Union[str, ClusterSpec]) -> ClusterSpec:
    """The colocated twin of a (possibly role-tagged) cluster spec: the
    same instance classes on the same hardware, with every role reset to
    ``"both"`` so each instance serves requests end-to-end.  This is the
    node-equivalent baseline a disaggregated cluster must beat — identical
    silicon, only the prefill/decode split removed."""
    if isinstance(spec, str):
        spec = parse_cluster_spec(spec)
    return ClusterSpec(tuple(
        InstanceSpec(s.count, s.num_nodes, s.kv_budget_bytes)
        for s in spec.specs))


def disaggregation_comparison(trace: RequestTrace,
                              instances: Union[str, ClusterSpec],
                              policy: str = "fifo",
                              max_batch_size: int = 8,
                              kv_budget_bytes: Optional[int] = None,
                              kv_block_size: int = 16,
                              preemption_mode: str = "swap",
                              prefill_mode: str = "exclusive",
                              mixed_step_token_budget: Optional[int] = None,
                              router: str = "disaggregated",
                              colocated_router: str = "least_loaded",
                              workers: int = 1
                              ) -> List[Dict[str, object]]:
    """Serve one trace on a disaggregated cluster and on its colocated
    twin (same instances, roles stripped) and tabulate the summaries.

    This is the comparison disaggregation exists to win: with prefill
    quarantined on the prefill class, the decode instances' steps are never
    stalled by a prompt streaming in, so tail TPOT drops — at the price of
    one priced KV handoff per request.  Both rows run paged KV (the
    handoff *is* a block-table move) under the same budget and block size.

    ``instances`` must be a role-tagged spec (e.g.
    ``"1x4n:prefill,4x1n:decode"``); raises ``ValueError`` otherwise.
    """
    if isinstance(instances, str):
        instances = parse_cluster_spec(instances)
    if not instances.has_roles:
        raise ValueError(
            f"cluster {instances} has no prefill/decode roles; "
            "disaggregation_comparison compares a role-tagged cluster "
            "against its colocated twin")
    colocated = strip_roles(instances)
    pairs = [
        (f"disaggregated ({instances})", instances, router),
        (f"colocated ({colocated})", colocated, colocated_router),
    ]
    configs = [(label,
                dict(policy=policy, instances=spec,
                     router=spec_router,
                     max_batch_size=max_batch_size,
                     kv_budget_bytes=kv_budget_bytes,
                     kv_mode="paged",
                     kv_block_size=kv_block_size,
                     preemption_mode=preemption_mode,
                     prefill_mode=prefill_mode,
                     mixed_step_token_budget=mixed_step_token_budget))
               for label, spec, spec_router in pairs]
    rows = []
    for (label, _), metrics in zip(
            configs, _sweep_metrics(trace, configs, workers)):
        row = metrics_row(label, metrics)
        row["P95 TPOT (s)"] = metrics.tpot_percentile_s(0.95)
        row["P99 TPOT (s)"] = metrics.tpot_percentile_s(0.99)
        row["Handoffs"] = metrics.handoff_count
        row["Handoff time (s)"] = metrics.handoff_time_s
        rows.append(row)
    return rows


def class_breakdown(metrics: ServingMetrics) -> List[Dict[str, object]]:
    """Per-instance-class rows from a cluster run's metrics.

    One row per instance class (``metrics.per_class``), showing how the
    cluster's classes divided the work: request counts, utilization,
    sustained batch, TTFT and swap traffic.  Requests that never ran
    (``instance_id=None``) belong to no class and appear in no row.  On a
    disaggregated cluster every row also carries the class's serving role
    and its share of the KV-handoff traffic — a prefill class completing
    zero requests while exporting every prompt is working as intended, and
    the role column is what makes that legible.
    """
    disaggregated = any(cls.role != "both" for cls in metrics.per_class)
    sharing = getattr(metrics, "kv_prefix_sharing", False)
    rows = []
    for cls in metrics.per_class:
        row: Dict[str, object] = {
            "Class": cls.label,
            "Instances": cls.num_instances,
            "Nodes/inst": cls.num_nodes,
            "Requests": cls.requests,
            "Utilization": cls.utilization,
            "Mean batch": cls.mean_running_batch,
            "Mean TTFT (s)": cls.mean_ttft_s,
            "P95 TTFT (s)": cls.ttft_percentile_s(0.95),
        }
        if disaggregated:
            row["Role"] = cls.role
            row["Handoffs out"] = cls.handoffs_out
            row["Handoffs in"] = cls.handoffs_in
            row["Handoff time (s)"] = cls.handoff_time_s
        if cls.kv_total_blocks:
            row["KV occupancy"] = cls.mean_kv_occupancy
            row["Swaps"] = cls.swap_out_count
        if sharing:
            row["Prefix hits"] = cls.prefix_hits
            row["Prefill saved"] = cls.prefill_tokens_saved
        rows.append(row)
    return rows


def instance_breakdown(records: Sequence[ServedRequest]
                       ) -> List[Dict[str, object]]:
    """Per-instance latency/TTFT means from token-level request records.

    Requests with ``instance_id=None`` never ran on any instance; they are
    excluded from every per-instance row (attributing them to a fake
    instance would corrupt the aggregates) and surfaced in a trailing
    ``(never ran)`` row instead, so rejected work stays visible.
    """
    by_instance: Dict[int, list] = {}
    never_ran = 0
    for record in records:
        if record.instance_id is None:
            never_ran += 1
            continue
        by_instance.setdefault(record.instance_id, []).append(record)
    rows = []
    for instance_id in sorted(by_instance):
        group = by_instance[instance_id]
        ttfts = [r.ttft_s for r in group if r.ttft_s is not None]
        rows.append({
            "Instance": instance_id,
            "Requests": len(group),
            "Mean TTFT (s)": sum(ttfts) / len(ttfts) if ttfts else 0.0,
            "Mean latency (s)": sum(r.end_to_end_latency_s
                                    for r in group) / len(group),
            "Preemptions": sum(r.preemptions for r in group),
        })
    if never_ran:
        rows.append({
            "Instance": "(never ran)",
            "Requests": never_ran,
            "Mean TTFT (s)": 0.0,
            "Mean latency (s)": 0.0,
            "Preemptions": 0,
        })
    return rows


def tenant_breakdown(records: Sequence[ServedRequest],
                     tenants: Optional[Sequence[str]] = None
                     ) -> List[Dict[str, object]]:
    """Per-tenant latency/TTFT means from token-level request records.

    ``tenants`` optionally names the tenants expected in the workload (e.g.
    ``trace.tenants``): a tenant with no completed requests — or none that
    generated a token — still gets a row with zeroed means instead of being
    silently dropped, so starvation is visible rather than invisible.
    """
    by_tenant: Dict[str, list] = {name: [] for name in (tenants or ())}
    for record in records:
        by_tenant.setdefault(record.tenant, []).append(record)
    rows = []
    for tenant in sorted(by_tenant):
        group = by_tenant[tenant]
        ttfts = [r.ttft_s for r in group if r.ttft_s is not None]
        rows.append({
            "Tenant": tenant,
            "Requests": len(group),
            "Mean TTFT (s)": sum(ttfts) / len(ttfts) if ttfts else 0.0,
            "Mean latency (s)": (sum(r.end_to_end_latency_s for r in group)
                                 / len(group)) if group else 0.0,
            "Preemptions": sum(r.preemptions for r in group),
        })
    return rows
