"""Quantization-accuracy analysis for the W8A8 scheme.

The paper compares LoopLynx and the A100 "under the same quantization
strategy" (SmoothQuant W8A8) and treats accuracy as a solved problem.  This
module makes the accuracy side measurable inside the reproduction: it runs
the float and the W8A8 quantized forward passes of the in-repo GPT-2 over a
set of prompts and reports logit-error and prediction-agreement metrics, plus
an alpha sweep of the SmoothQuant migration strength.

These are extension experiments (not paper artifacts): they document that the
functional datapath's quantization behaves sensibly, and they give a
downstream user the tool to validate accuracy before trusting latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.model.config import ModelConfig
from repro.model.gpt2 import GPT2Model


@dataclass
class AccuracyReport:
    """Agreement between the float and quantized forward passes."""

    model_name: str
    alpha: float
    num_prompts: int
    num_positions: int
    relative_logit_error: float
    top1_agreement: float
    top5_overlap: float
    mean_logit_correlation: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "Model": self.model_name,
            "alpha": self.alpha,
            "Positions": self.num_positions,
            "Rel. logit error": self.relative_logit_error,
            "Top-1 agreement": self.top1_agreement,
            "Top-5 overlap": self.top5_overlap,
            "Logit correlation": self.mean_logit_correlation,
        }


def _default_prompts(config: ModelConfig, num_prompts: int, prompt_len: int,
                     seed: int) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, config.vocab_size, size=prompt_len)
            for _ in range(num_prompts)]


def evaluate_quantization(model: Optional[GPT2Model] = None,
                          config: Optional[ModelConfig] = None,
                          alpha: float = 0.5, num_prompts: int = 4,
                          prompt_len: int = 12, seed: int = 0) -> AccuracyReport:
    """Compare float vs W8A8 forward passes over random prompts.

    A fresh model is created from ``config`` (default: the tiny test
    configuration) unless an existing one is supplied; the model is
    (re)calibrated at the requested SmoothQuant ``alpha``.
    """
    if model is None:
        config = config or ModelConfig.tiny()
        model = GPT2Model(config, seed=seed)
    else:
        config = model.config
    model.calibrate_quantization(alpha=alpha)

    prompts = _default_prompts(config, num_prompts, prompt_len, seed + 1)
    relative_errors: List[float] = []
    correlations: List[float] = []
    top1_hits = 0
    top5_overlap_total = 0.0
    positions = 0

    for prompt in prompts:
        float_logits = model.forward(prompt)
        quant_logits = model.forward_quantized(prompt)
        diff = np.linalg.norm(float_logits - quant_logits)
        norm = np.linalg.norm(float_logits)
        relative_errors.append(diff / norm if norm > 0 else 0.0)
        for position in range(float_logits.shape[0]):
            positions += 1
            f_row = float_logits[position]
            q_row = quant_logits[position]
            correlations.append(float(np.corrcoef(f_row, q_row)[0, 1]))
            if int(np.argmax(f_row)) == int(np.argmax(q_row)):
                top1_hits += 1
            f_top5 = set(np.argsort(f_row)[-5:].tolist())
            q_top5 = set(np.argsort(q_row)[-5:].tolist())
            top5_overlap_total += len(f_top5 & q_top5) / 5.0

    return AccuracyReport(
        model_name=config.name,
        alpha=alpha,
        num_prompts=num_prompts,
        num_positions=positions,
        relative_logit_error=float(np.mean(relative_errors)),
        top1_agreement=top1_hits / positions if positions else 0.0,
        top5_overlap=top5_overlap_total / positions if positions else 0.0,
        mean_logit_correlation=float(np.mean(correlations)) if correlations else 0.0,
    )


def alpha_sweep(alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                config: Optional[ModelConfig] = None, seed: int = 0
                ) -> List[AccuracyReport]:
    """SmoothQuant migration-strength sweep on a fixed model."""
    config = config or ModelConfig.tiny()
    reports: List[AccuracyReport] = []
    for alpha in alphas:
        model = GPT2Model(config, seed=seed)
        reports.append(evaluate_quantization(model=model, alpha=alpha, seed=seed))
    return reports
