"""Fig. 5 — latency breakdown of 1-node GPT-2 and optimization improvements.

The paper reports, for the single-node design:

* the un-optimized breakdown: linear + MHA computation 81.5% of the latency,
  critical-path operators 18.5%;
* an ~11% end-to-end reduction from parallelizing the critical-path operators
  and overlapping layer normalization with the residual addition;
* a ~15% total reduction once the head-wise pipeline also hides the softmax.

``run()`` regenerates exactly that progression from the cycle model.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from repro.analysis.breakdown import BreakdownStep, optimization_walkthrough
from repro.analysis.report import format_table

#: values reported by the paper, for side-by-side comparison in the output
PAPER_REFERENCE = {
    "matrix_fraction_baseline": 0.815,
    "critical_path_fraction_baseline": 0.185,
    "improvement_critical_path": 0.11,
    "improvement_total": 0.15,
}


def run(num_nodes: int = 1, context_len: Optional[int] = None) -> Dict[str, object]:
    """Regenerate the Fig. 5 data.

    Returns a dict with the walkthrough steps, the baseline fractions and the
    improvements, alongside the paper's reference values.
    """
    steps: List[BreakdownStep] = optimization_walkthrough(num_nodes=num_nodes,
                                                          context_len=context_len)
    baseline, critical_path_step, full_step = steps
    measured = {
        "matrix_fraction_baseline": baseline.matrix_fraction,
        "critical_path_fraction_baseline": baseline.critical_path_fraction,
        "improvement_critical_path": critical_path_step.improvement_vs_baseline,
        "improvement_total": full_step.improvement_vs_baseline,
    }
    return {
        "steps": steps,
        "measured": measured,
        "paper": dict(PAPER_REFERENCE),
        "num_nodes": num_nodes,
    }


def rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten the walkthrough into printable rows."""
    out: List[Dict[str, object]] = []
    for step in result["steps"]:
        row: Dict[str, object] = {
            "Configuration": step.label,
            "Latency (ms)": step.latency_ms,
            "Improvement": f"{100 * step.improvement_vs_baseline:.1f}%",
            "Matrix %": f"{100 * step.matrix_fraction:.1f}%",
            "Critical path %": f"{100 * step.critical_path_fraction:.1f}%",
        }
        for category, value in sorted(step.breakdown_ms.items()):
            row[f"{category} (ms)"] = value
        out.append(row)
    return out


def main() -> str:
    result = run()
    table = format_table(rows(result),
                         title="Fig. 5 — Latency breakdown and optimization walkthrough (1 node)")
    comparison = [
        {"Quantity": key,
         "Paper": result["paper"][key],
         "Measured": result["measured"][key]}
        for key in result["paper"]
    ]
    comparison_table = format_table(comparison, title="Paper vs. measured")
    output = table + "\n\n" + comparison_table
    print(output)
    return output


if __name__ == "__main__":
    main()
