"""Table I — comparison of GPU and FPGA platforms.

A catalogue table (process node, frequency, computing units, memory
bandwidth, TDP) for the Nvidia A100, Xilinx Alveo U280 and Xilinx Alveo U50.
It contains no measurements, but the platform constants here are exactly the
ones the baseline and energy models consume, so regenerating it documents the
modelling inputs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.baselines.base import PLATFORM_CATALOGUE


def run() -> List[Dict[str, object]]:
    """Return the Table I rows."""
    return [spec.as_row() for spec in PLATFORM_CATALOGUE]


def main() -> str:
    table = format_table(run(), title="Table I — Comparison of GPU and FPGA platforms")
    print(table)
    return table


if __name__ == "__main__":
    main()
