"""Experiment harnesses: one module per table/figure of the evaluation.

Each module exposes ``run(...)`` returning a structured result and ``main()``
printing the same rows/series the paper reports.  :mod:`repro.experiments.registry`
maps experiment ids (``fig5``, ``fig7``, ``fig8``, ``table1``, ``table2``,
``table3``) to their run functions so the benchmark harness and the examples
can iterate over all of them.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.export import export_all, export_experiment

__all__ = ["EXPERIMENTS", "run_experiment", "export_all", "export_experiment"]
