"""Export experiment results to JSON files.

`python examples/reproduce_paper.py` prints the artifacts; this module saves
them as machine-readable JSON so downstream comparisons (e.g. against a real
hardware run, or across calibration changes) can diff results instead of
parsing tables.

Dataclasses and numpy scalars inside results are converted recursively; every
file is named ``<experiment_id>.json`` inside the chosen output directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.experiments.registry import EXPERIMENTS


def _to_jsonable(value: Any) -> Any:
    """Recursively convert results into JSON-serializable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_to_jsonable(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and not isinstance(value, str):
        try:
            return value.item()  # numpy scalars
        except (TypeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_experiment(experiment_id: str, output_dir: str, **kwargs) -> str:
    """Run one experiment and write its result to ``<output_dir>/<id>.json``.

    Returns the path of the written file.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}")
    os.makedirs(output_dir, exist_ok=True)
    result = EXPERIMENTS[experiment_id].run(**kwargs)
    payload = {
        "experiment": experiment_id,
        "description": EXPERIMENTS[experiment_id].description,
        "result": _to_jsonable(result),
    }
    path = os.path.join(output_dir, f"{experiment_id}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def export_all(output_dir: str,
               experiment_ids: Optional[Iterable[str]] = None) -> Dict[str, str]:
    """Export every (or the selected) experiment(s); returns id -> file path."""
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    return {experiment_id: export_experiment(experiment_id, output_dir)
            for experiment_id in ids}
