"""Table II — comparison of FPGA implementations.

LoopLynx with 1/2/4 accelerator nodes against the temporal-architecture
baseline (DFX, Alveo U280, FP16) and the spatial-architecture baseline
(Alveo U280, W8A8): average per-token latency plus resource utilization.

The paper's headline Table II claims:

* 2-node: 1.39x / 1.08x faster than DFX / spatial;
* 4-node: 2.11x / 1.64x faster than DFX / spatial;
* 1-node: slightly slower than both baselines, but far more
  resource-efficient.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.comparison import FpgaComparisonRow, fpga_comparison_table
from repro.analysis.report import format_table

#: token latencies reported by the paper (Table II)
PAPER_TOKEN_LATENCY_MS = {
    "LoopLynx 4 Nodes": 2.55,
    "LoopLynx 2 Nodes": 3.85,
    "LoopLynx 1 Node": 6.59,
    "Temporal Architecture (DFX)": 5.37,
    "Spatial Architecture": 4.17,
}


def run(context_len: int = 512,
        node_counts: Sequence[int] = (4, 2, 1)) -> Dict[str, object]:
    """Regenerate Table II and the headline speed-up ratios."""
    rows: List[FpgaComparisonRow] = fpga_comparison_table(context_len=context_len,
                                                          node_counts=node_counts)

    def label_of(row: FpgaComparisonRow) -> str:
        if row.architecture == "LoopLynx":
            return f"LoopLynx {row.nodes.split(' (')[0]}"
        return row.architecture

    latencies = {label_of(row): row.token_latency_ms for row in rows}

    dfx = next(row for row in rows if "DFX" in row.architecture)
    spatial = next(row for row in rows if row.architecture == "Spatial Architecture")
    speedups: Dict[str, Dict[str, float]] = {}
    for row in rows:
        if row.architecture != "LoopLynx":
            continue
        label = label_of(row)
        speedups[label] = {
            "vs_dfx": dfx.token_latency_ms / row.token_latency_ms,
            "vs_spatial": spatial.token_latency_ms / row.token_latency_ms,
        }
    return {
        "rows": rows,
        "token_latency_ms": latencies,
        "speedups": speedups,
        "paper_token_latency_ms": dict(PAPER_TOKEN_LATENCY_MS),
    }


def main() -> str:
    result = run()
    table_rows = [row.as_dict() for row in result["rows"]]
    table = format_table(table_rows, title="Table II — Comparison of FPGA implementations")
    speedup_rows = [
        {"Configuration": label,
         "Speed-up vs DFX": f"{values['vs_dfx']:.2f}x",
         "Speed-up vs Spatial": f"{values['vs_spatial']:.2f}x"}
        for label, values in result["speedups"].items()
    ]
    speedup_table = format_table(speedup_rows, title="Speed-ups over the FPGA baselines")
    output = table + "\n\n" + speedup_table
    print(output)
    return output


if __name__ == "__main__":
    main()
