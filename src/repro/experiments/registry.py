"""Registry mapping experiment ids to their run functions.

The ids follow the paper's artifact names (``fig5``, ``fig7``, ``fig8``,
``table1``, ``table2``, ``table3``).  ``run_experiment`` is the single entry
point used by the benchmark harness and the reproduction example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from repro.experiments import (
    fig5_breakdown,
    fig7_resources,
    fig8_gpu_comparison,
    table1_platforms,
    table2_fpga_comparison,
    table3_scalability,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artifact of the paper's evaluation."""

    experiment_id: str
    description: str
    run: Callable[..., object]
    main: Callable[[], str]


EXPERIMENTS: Mapping[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        "table1", "Platform comparison (A100 / U280 / U50)",
        table1_platforms.run, table1_platforms.main),
    "table2": ExperimentSpec(
        "table2", "FPGA implementation comparison (LoopLynx vs DFX vs spatial)",
        table2_fpga_comparison.run, table2_fpga_comparison.main),
    "table3": ExperimentSpec(
        "table3", "Throughput and scalability across node counts",
        table3_scalability.run, table3_scalability.main),
    "fig5": ExperimentSpec(
        "fig5", "Latency breakdown and optimization walkthrough (1 node)",
        fig5_breakdown.run, fig5_breakdown.main),
    "fig7": ExperimentSpec(
        "fig7", "Resource utilization of the dual-node Alveo U50 device",
        fig7_resources.run, fig7_resources.main),
    "fig8": ExperimentSpec(
        "fig8", "Latency and energy efficiency vs the Nvidia A100",
        fig8_gpu_comparison.run, fig8_gpu_comparison.main),
}


def run_experiment(experiment_id: str, **kwargs) -> object:
    """Run one experiment by id and return its structured result."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}") from exc
    return spec.run(**kwargs)
