"""Table III — throughput and scalability.

Decode throughput of the GPT-2 model on 1/2/4-node LoopLynx deployments and
the step speed-ups.  The paper reports 151.7 / 259.7 / 392.2 tokens/s with
speed-ups of 1.71x (2-node vs 1-node) and 1.51x (4-node vs 2-node), i.e.
sub-linear scaling caused by the non-distributable critical-path operators
and by exposed quantization/synchronization at higher node counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.analysis.scalability import ScalabilityRow, scaling_efficiency, throughput_table

#: Table III values reported by the paper
PAPER_THROUGHPUT = {1: 151.7, 2: 259.7, 4: 392.2}
PAPER_SPEEDUPS = {2: 1.71, 4: 1.51}


def run(node_counts: Sequence[int] = (1, 2, 4),
        context_len: Optional[int] = None) -> Dict[str, object]:
    """Regenerate Table III plus parallel-efficiency figures."""
    rows: List[ScalabilityRow] = throughput_table(node_counts, context_len)
    efficiency = scaling_efficiency(rows)
    return {
        "rows": rows,
        "efficiency": efficiency,
        "paper_throughput": dict(PAPER_THROUGHPUT),
        "paper_speedups": dict(PAPER_SPEEDUPS),
    }


def main() -> str:
    result = run()
    table_rows = [row.as_dict() for row in result["rows"]]
    table = format_table(table_rows, title="Table III — Throughput and scalability")
    comparison_rows = []
    for row in result["rows"]:
        paper_tps = result["paper_throughput"].get(row.num_nodes)
        comparison_rows.append({
            "# Nodes": f"{row.num_nodes}-node",
            "Paper (token/s)": paper_tps if paper_tps is not None else "-",
            "Measured (token/s)": row.tokens_per_second,
            "Parallel efficiency": f"{100 * result['efficiency'][row.num_nodes]:.0f}%",
        })
    comparison_table = format_table(comparison_rows, title="Paper vs. measured")
    output = table + "\n\n" + comparison_table
    print(output)
    return output


if __name__ == "__main__":
    main()
