"""Fig. 7 — FPGA resource utilization of the dual-node Alveo U50 device.

The paper's Fig. 7 lists per-component DSP/LUT/FF/BRAM utilization for the
dual-node implementation plus the accelerator and device totals, and shows
that one accelerator node fits within one SLR of the U50.  ``run()``
regenerates the component table from the resource model and additionally
checks device feasibility against the U50's capacity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.core.resources import (
    ALVEO_U50_CAPACITY,
    component_table,
    device_resources,
    node_resources,
)

#: device totals reported by the paper (Fig. 7, "Device Total" row)
PAPER_DEVICE_TOTAL = {"DSP": 1132, "LUT": 312_000, "FF": 478_000, "BRAM": 924.5}
#: accelerator totals reported by the paper ("Accelerator Total" row)
PAPER_ACCELERATOR_TOTAL = {"DSP": 1128, "LUT": 128_000, "FF": 185_000, "BRAM": 595}


def run(nodes_on_card: int = 2) -> Dict[str, object]:
    """Regenerate the Fig. 7 component table and feasibility check."""
    table = component_table(nodes_on_card=nodes_on_card)
    device = device_resources(nodes_on_card=nodes_on_card)
    per_node = node_resources()
    utilization = device.utilization_of(ALVEO_U50_CAPACITY)
    return {
        "component_table": table,
        "device_total": device.as_dict(),
        "per_node": per_node.as_dict(),
        "fits_on_u50": device.fits_within(ALVEO_U50_CAPACITY),
        "u50_utilization": utilization,
        "paper_device_total": dict(PAPER_DEVICE_TOTAL),
        "paper_accelerator_total": dict(PAPER_ACCELERATOR_TOTAL),
    }


def main() -> str:
    result = run()
    table = format_table(result["component_table"],
                         title="Fig. 7 — Resource utilization (dual-node device, Alveo U50)")
    util_rows: List[Dict[str, object]] = [
        {"Resource": name, "Used": used,
         "U50 utilization": f"{100 * result['u50_utilization'][name]:.1f}%"}
        for name, used in result["device_total"].items()
    ]
    util_table = format_table(util_rows, title="Device feasibility on the Alveo U50")
    output = table + "\n\n" + util_table
    output += f"\nFits on one Alveo U50: {result['fits_on_u50']}"
    print(output)
    return output


if __name__ == "__main__":
    main()
