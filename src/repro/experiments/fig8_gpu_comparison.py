"""Fig. 8 — normalized latency and energy efficiency vs. the Nvidia A100.

For every ``[prefill : decode]`` scenario the paper plots (a) the end-to-end
latency normalized to the 4-node LoopLynx configuration and (b) the energy
efficiency in tokens per joule normalized to the GPU.  Headline claims:

* 2-node: 1.67x average speed-up over the A100 at 37.3% of its energy;
* 4-node: 2.52x average speed-up at 48.1% of its energy;
* the A100 remains ahead on the prefill-heavy ``[128:32]`` setting;
* energy-efficiency ratios of roughly 2.3x / 2.7x / 2.1x for the
  1/2/4-node deployments, the 2-node point being the sweet spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.comparison import Fig8Row, gpu_comparison, summarize_gpu_comparison
from repro.analysis.report import format_table
from repro.workloads.scenarios import FIG8_SCENARIOS, Scenario

#: headline values reported by the paper
PAPER_SUMMARY = {
    "1-node": {"average_efficiency_ratio": 2.3},
    "2-node": {"average_speedup_vs_gpu": 1.67, "average_energy_fraction": 0.373,
               "average_efficiency_ratio": 2.7},
    "4-node": {"average_speedup_vs_gpu": 2.52, "average_energy_fraction": 0.481,
               "average_efficiency_ratio": 2.1},
}


def run(scenarios: Sequence[Scenario] = FIG8_SCENARIOS,
        node_counts: Sequence[int] = (1, 2, 4)) -> Dict[str, object]:
    """Regenerate the Fig. 8 series and the summary statistics."""
    rows: List[Fig8Row] = gpu_comparison(scenarios=scenarios, node_counts=node_counts)
    summary = summarize_gpu_comparison(rows, node_counts=node_counts)
    crossover = {row.scenario: row.speedup_vs_gpu for row in rows}
    return {
        "rows": rows,
        "summary": summary,
        "paper_summary": {k: dict(v) for k, v in PAPER_SUMMARY.items()},
        "speedup_by_scenario": crossover,
    }


def latency_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    for row in result["rows"]:
        entry: Dict[str, object] = {"Scenario": row.scenario}
        for platform in sorted(row.normalized_latency):
            entry[f"norm. latency {platform}"] = row.normalized_latency[platform]
        out.append(entry)
    return out


def efficiency_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    for row in result["rows"]:
        entry: Dict[str, object] = {"Scenario": row.scenario}
        for platform in sorted(row.normalized_efficiency):
            entry[f"norm. tokens/J {platform}"] = row.normalized_efficiency[platform]
        out.append(entry)
    return out


def main() -> str:
    result = run()
    latency_table = format_table(
        latency_rows(result),
        title="Fig. 8(a) — Latency normalized to the 4-node deployment (higher = slower)")
    efficiency_table = format_table(
        efficiency_rows(result),
        title="Fig. 8(b) — Energy efficiency normalized to the A100 (higher = better)")
    summary_rows = []
    for label, values in result["summary"].items():
        paper = result["paper_summary"].get(label, {})
        summary_rows.append({
            "Deployment": label,
            "Avg speed-up vs A100": values["average_speedup_vs_gpu"],
            "Paper speed-up": paper.get("average_speedup_vs_gpu", "-"),
            "Avg energy fraction": values["average_energy_fraction"],
            "Paper energy fraction": paper.get("average_energy_fraction", "-"),
            "Avg tokens/J ratio": values["average_efficiency_ratio"],
            "Paper tokens/J ratio": paper.get("average_efficiency_ratio", "-"),
        })
    summary_table = format_table(summary_rows, title="Headline summary (paper vs. measured)")
    output = "\n\n".join([latency_table, efficiency_table, summary_table])
    print(output)
    return output


if __name__ == "__main__":
    main()
