"""Shared plumbing for the project's static-analysis tools.

``tools/repro_lint.py`` (determinism lint) and ``tools/simcheck.py``
(dimensional analysis + lifecycle exhaustiveness) are separate analyzers
with separate rule catalogues, but they share one findings model: the
same ``# repro-lint: disable=<RULE>`` per-line suppression marker, the
same ``path:line:col: RULE [name] message`` text rendering, and the same
``--format github`` / ``--format json`` machine-readable output modes
the CI ``static-analysis`` job uses to annotate PR diffs.  This module
is that shared layer, so the two tools cannot drift apart on how a
finding looks or how a suppression is spelled.

The *vocabularies* the tools share (unit suffixes, timestamp words,
counter prefixes) live in :mod:`repro.units`.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass
from typing import IO, Dict, List, Mapping, Sequence, Set, Tuple

__all__ = ["Finding", "OUTPUT_FORMATS", "scan_suppressions",
           "filter_suppressed", "emit_findings"]

#: Output modes both lint CLIs accept via ``--format``.
OUTPUT_FORMATS: Tuple[str, ...] = ("text", "github", "json")


@dataclass(frozen=True)
class Finding:
    """One lint hit: where, which rule, and a human-readable message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command form: shown inline on the PR
        diff when a CI step prints it (title carries the rule ID, the
        properties must not contain newlines or commas-in-values)."""
        message = self.message.replace("%", "%25").replace("\r", "%0D")
        message = message.replace("\n", "%0A")
        return (f"::error file={self.path},line={self.line},"
                f"col={self.col},title={self.rule}::{message}")


_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs disabled on that line via the
    ``# repro-lint: disable=R001,U002`` comment marker (``all`` disables
    every rule on the line)."""
    disabled: Dict[int, Set[str]] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            disabled.setdefault(tok.start[0], set()).update(
                {"all"} if "all" in ids else ids
            )
    except tokenize.TokenError:
        pass
    return disabled


def filter_suppressed(findings: Sequence[Finding],
                      source: str) -> List[Finding]:
    """Drop findings whose line carries a matching suppression marker,
    and return the survivors sorted by position then rule ID."""
    disabled = scan_suppressions(source)
    kept = [f for f in findings
            if not ({f.rule, "all"} & disabled.get(f.line, set()))]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def emit_findings(findings: Sequence[Finding], *, fmt: str,
                  rules: Mapping[str, tuple], tool: str,
                  stream: IO[str]) -> None:
    """Print ``findings`` in one of :data:`OUTPUT_FORMATS`.

    ``rules`` is the emitting tool's catalogue (ID -> tuple whose first
    element is the rule name) so the JSON form can carry rule names;
    ``tool`` names the emitter in the JSON envelope and the trailing
    text summary.
    """
    if fmt == "github":
        for finding in findings:
            stream.write(finding.render_github() + "\n")
    elif fmt == "json":
        doc = {
            "tool": tool,
            "count": len(findings),
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "rule": f.rule,
                 "name": rules[f.rule][0] if f.rule in rules else "",
                 "message": f.message}
                for f in findings
            ],
        }
        stream.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    elif fmt == "text":
        for finding in findings:
            stream.write(finding.render() + "\n")
        if findings:
            stream.write(f"{tool}: {len(findings)} finding(s)\n")
    else:
        raise ValueError(f"unknown output format {fmt!r}; "
                         f"known: {', '.join(OUTPUT_FORMATS)}")
