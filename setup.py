"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (PEP
660 editable installs need it), e.g. ``python setup.py develop`` on an
offline machine.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LoopLynx reproduction: a scalable dataflow architecture simulator "
        "for efficient LLM inference (DATE 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
