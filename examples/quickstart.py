#!/usr/bin/env python3
"""Quickstart: model a LoopLynx deployment and ask it the paper's questions.

Builds the paper's GPT-2 345M deployment for 1, 2 and 4 accelerator nodes,
reports per-token decode latency, throughput and the latency breakdown, and
compares a long-generation request against the A100 baseline.

Run with::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import LoopLynxSystem, ModelConfig
from repro.analysis.breakdown import latency_breakdown
from repro.analysis.report import format_table
from repro.baselines import A100Model
from repro.energy.power import FpgaPowerModel, GpuPowerModel


def main() -> None:
    print("LoopLynx quickstart — GPT-2 345M, W8A8, Alveo U50 nodes at 285 MHz\n")

    # ------------------------------------------------------------------
    # 1. per-token decode latency and throughput for 1/2/4 nodes
    # ------------------------------------------------------------------
    rows = []
    for num_nodes in (1, 2, 4):
        system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
        rows.append({
            "# Nodes": num_nodes,
            "Token latency (ms)": system.average_token_latency_ms(),
            "Throughput (tok/s)": system.throughput_tokens_per_second(),
            "DSPs": system.resource_usage().dsp,
        })
    print(format_table(rows, title="Per-token decode latency (context = 512)"))
    print()

    # ------------------------------------------------------------------
    # 2. where do the cycles go on a single node?
    # ------------------------------------------------------------------
    single = LoopLynxSystem.paper_configuration(num_nodes=1)
    breakdown = latency_breakdown(single)
    print(format_table(
        [{"Category": name, "Latency (ms)": value,
          "Share (%)": 100 * value / sum(breakdown.values())}
         for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1])],
        title="Single-node latency breakdown"))
    print()

    # ------------------------------------------------------------------
    # 3. a chatbot-style request vs. the A100
    # ------------------------------------------------------------------
    prefill, decode = 64, 512
    gpu = A100Model(ModelConfig.gpt2_medium())
    gpu_ms = gpu.scenario_latency_ms(prefill, decode)
    gpu_energy = GpuPowerModel().report(gpu_ms, decode).energy_joules
    comparison = [{
        "Platform": "Nvidia A100",
        "Latency (s)": gpu_ms / 1e3,
        "Energy (J)": gpu_energy,
        "Speed-up": 1.0,
    }]
    fpga_power = FpgaPowerModel()
    for num_nodes in (2, 4):
        system = LoopLynxSystem.paper_configuration(num_nodes=num_nodes)
        report = system.run_scenario(prefill, decode)
        energy = fpga_power.report(num_nodes, report.total_ms, decode).energy_joules
        comparison.append({
            "Platform": f"LoopLynx {num_nodes}-node",
            "Latency (s)": report.total_ms / 1e3,
            "Energy (J)": energy,
            "Speed-up": gpu_ms / report.total_ms,
        })
    print(format_table(comparison,
                       title=f"Chatbot request [{prefill}:{decode}] — LoopLynx vs A100"))


if __name__ == "__main__":
    main()
