#!/usr/bin/env python3
"""Design-space exploration beyond the paper's single hardware point.

The paper fixes one hardware design point (8 HBM channels and 32-wide MAC
groups per node, 285 MHz).  This example uses the cycle model to explore the
neighbourhood of that point and two extensions:

* HBM channel count x MAC group size sweep (who is memory bound where);
* serving larger and smaller GPT-2 variants on the same hardware;
* the batched-prefill extension (weight reuse across prompt tokens), which is
  not claimed by the paper but falls out of the dataflow design.

Run with::

    python examples/design_space_exploration.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import LoopLynxSystem, ModelConfig
from repro.analysis.report import format_table
from repro.core.config import HardwareConfig, SystemConfig


def hardware_sweep() -> None:
    rows = []
    for channels in (4, 8, 16):
        for group in (16, 32, 64):
            hardware = HardwareConfig(mp_channels=channels, mac_group_size=group)
            system = LoopLynxSystem(SystemConfig(model=ModelConfig.gpt2_medium(),
                                                 num_nodes=2, hardware=hardware))
            report = system.decode_token_report()
            rows.append({
                "MP channels": channels,
                "MAC group": group,
                "Peak MAC/cycle": hardware.macs_per_cycle,
                "HBM B/cycle": round(hardware.mp_bytes_per_cycle, 1),
                "Token latency (ms)": report.latency_ms,
            })
    print(format_table(rows, title="Hardware sweep (2 nodes): channels x MAC group"))
    print("Note: decode stays memory bound, so widening MAC groups without "
          "adding channels barely helps — the paper's 32-per-channel choice is "
          "driven by DMA burst size, not compute.\n")


def model_sweep() -> None:
    rows = []
    for model in (ModelConfig.gpt2_small(), ModelConfig.gpt2_medium(),
                  ModelConfig.gpt2_large()):
        for nodes in (2, 4):
            system = LoopLynxSystem(SystemConfig(model=model, num_nodes=nodes))
            rows.append({
                "Model": model.name,
                "Params (M)": round(model.total_parameters() / 1e6),
                "# Nodes": nodes,
                "Token latency (ms)": system.average_token_latency_ms(),
                "Tokens/s": system.throughput_tokens_per_second(),
            })
    print(format_table(rows, title="Model sweep on the same hardware"))
    print()


def batched_prefill_extension() -> None:
    rows = []
    system = LoopLynxSystem.paper_configuration(num_nodes=2)
    for prompt in (32, 64, 128, 256):
        sequential = system.prefill_latency_ms(prompt, batched=False)
        batched = system.prefill_latency_ms(prompt, batched=True)
        rows.append({
            "Prompt length": prompt,
            "Token-serial prefill (ms)": sequential,
            "Batched prefill (ms)": batched,
            "Speed-up": sequential / batched,
        })
    print(format_table(rows, title="Extension — batched prefill (weight reuse across "
                                   "prompt tokens, not claimed by the paper)"))
    print("With batched prefill the [128:32] crossover against the A100 would "
          "disappear; the paper's accelerator streams prompts token-serially.")


def main() -> None:
    print("LoopLynx design-space exploration\n")
    hardware_sweep()
    model_sweep()
    batched_prefill_extension()


if __name__ == "__main__":
    main()
