#!/usr/bin/env python3
"""Serving study: chatbot and code-generation workloads on LoopLynx vs A100.

The paper motivates LoopLynx with long-text-generation applications (chatbots,
code generation).  This example evaluates themed scenario sets and a synthetic
request trace, reporting end-to-end latency, sustained throughput, energy and
tokens/J for the 1/2/4-node deployments and the A100 baseline.

Run with::

    python examples/chatbot_serving.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import LoopLynxSystem, ModelConfig
from repro.analysis.report import format_table
from repro.baselines import A100Model
from repro.energy.power import FpgaPowerModel, GpuPowerModel
from repro.workloads.scenarios import chatbot_scenarios, code_generation_scenarios
from repro.workloads.traces import synthetic_trace


def scenario_study(title, scenarios):
    gpu = A100Model(ModelConfig.gpt2_medium())
    gpu_power = GpuPowerModel()
    fpga_power = FpgaPowerModel()
    systems = {n: LoopLynxSystem.paper_configuration(num_nodes=n) for n in (1, 2, 4)}

    rows = []
    for scenario in scenarios:
        gpu_ms = gpu.scenario_latency_ms(scenario.prefill_len, scenario.decode_len)
        row = {"Scenario": f"{scenario.label} {scenario.name}".strip(),
               "A100 (s)": gpu_ms / 1e3}
        for num_nodes, system in systems.items():
            report = system.run_scenario(scenario.prefill_len, scenario.decode_len)
            row[f"{num_nodes}-node (s)"] = report.total_ms / 1e3
            row[f"{num_nodes}-node speed-up"] = gpu_ms / report.total_ms
        rows.append(row)
    print(format_table(rows, title=title))
    print()

    # energy summary over the whole scenario set
    energy_rows = []
    total_tokens = sum(s.decode_len for s in scenarios)
    gpu_total_ms = sum(gpu.scenario_latency_ms(s.prefill_len, s.decode_len)
                       for s in scenarios)
    gpu_report = gpu_power.report(gpu_total_ms, total_tokens)
    energy_rows.append({"Platform": "Nvidia A100",
                        "Energy (J)": gpu_report.energy_joules,
                        "Tokens/J": gpu_report.tokens_per_joule})
    for num_nodes, system in systems.items():
        total_ms = sum(system.run_scenario(s.prefill_len, s.decode_len).total_ms
                       for s in scenarios)
        report = fpga_power.report(num_nodes, total_ms, total_tokens)
        energy_rows.append({"Platform": f"LoopLynx {num_nodes}-node",
                            "Energy (J)": report.energy_joules,
                            "Tokens/J": report.tokens_per_joule})
    print(format_table(energy_rows, title=f"{title} — energy over the whole set"))
    print()


def trace_study():
    """Sustained serving of a synthetic request trace with a pool of
    LoopLynx instances (queueing simulation, see :mod:`repro.serving`)."""
    from repro.serving.simulator import ServingSimulator

    trace = synthetic_trace(num_requests=30, seed=7, mean_prefill=48,
                            mean_decode=192, arrival_rate_per_s=1.5)
    rows = []
    for instances in (1, 2, 4):
        simulator = ServingSimulator(num_instances=instances,
                                     num_nodes_per_instance=2)
        metrics, _ = simulator.run(trace)
        summary = metrics.summary()
        rows.append({
            "2-node instances": instances,
            "Throughput (tok/s)": summary["throughput_tok_s"],
            "Mean queue delay (s)": summary["mean_queue_delay_s"],
            "P50 latency (s)": summary["p50_latency_s"],
            "P99 latency (s)": summary["p99_latency_s"],
            "Utilization (%)": 100 * summary["instance_utilization"],
            "Tokens/J": metrics.tokens_per_joule(),
        })
    print(format_table(rows, title="Synthetic request trace served by a pool of "
                                   "2-node LoopLynx instances"))


def engine_study():
    """Token-level serving: continuous batching vs the exclusive FIFO queue
    on a bursty trace, plus a priority-scheduled multi-tenant trace."""
    from repro.analysis.serving import policy_comparison, run_policy, tenant_breakdown
    from repro.workloads.traces import bursty_trace, multi_tenant_trace

    trace = bursty_trace(num_requests=32, seed=11, mean_prefill=48,
                         mean_decode=160, burst_size=8)
    rows = policy_comparison(trace, policies=("fifo-exclusive", "fifo", "sjf"),
                             num_instances=1, max_batch_size=8)
    print(format_table(rows, title="Bursty trace: whole-request FIFO vs "
                                   "token-level continuous batching"))
    print()

    tenant_trace = multi_tenant_trace(num_requests=30, seed=13)
    _, records = run_policy(tenant_trace, "priority", num_instances=1,
                            max_batch_size=4)
    # pass the trace's tenant list so a tenant that completed nothing (or
    # generated no tokens) still shows up as a zeroed row instead of being
    # silently dropped from the table
    print(format_table(tenant_breakdown(records, tenants=tenant_trace.tenants),
                       title="Multi-tenant trace under the priority scheduler"))


def paged_kv_study():
    """Reservation vs paged KV admission under the same tight per-node HBM
    budget: on-demand block allocation packs a larger running batch (and
    swap-based preemption keeps throughput) where worst-case reservations
    leave the batch half empty."""
    from repro.analysis.serving import kv_mode_comparison
    from repro.memory.kv_cache import KVCacheLayout
    from repro.workloads.traces import bursty_trace

    system = LoopLynxSystem.paper_configuration(num_nodes=2)
    layout = KVCacheLayout.for_model(system.config.model, num_nodes=2)
    budget = 640 * layout.bytes_per_token_per_node()
    trace = bursty_trace(num_requests=32, seed=11, mean_prefill=48,
                         mean_decode=160, burst_size=8)
    rows = kv_mode_comparison(trace, budget, policy="fifo", num_instances=1,
                              max_batch_size=8)
    print(format_table(
        rows, title=f"Bursty trace under a {budget / (1 << 20):.0f} MiB/node "
                    "KV budget: reservation vs paged admission"))


def main() -> None:
    print("LoopLynx serving study — long-generation workloads\n")
    scenario_study("Chatbot scenarios", chatbot_scenarios())
    scenario_study("Code-generation scenarios", code_generation_scenarios())
    trace_study()
    print()
    engine_study()
    print()
    paged_kv_study()


if __name__ == "__main__":
    main()
