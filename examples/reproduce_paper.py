#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one run.

Iterates over the experiment registry (Table I/II/III, Fig. 5/7/8) and prints
each artifact's reproduction next to the paper's reported values.  This is the
script behind EXPERIMENTS.md.

Run with::

    python examples/reproduce_paper.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments import EXPERIMENTS


def main() -> None:
    print("=" * 78)
    print("LoopLynx (DATE 2025) — full evaluation reproduction")
    print("=" * 78)
    for experiment_id in ("table1", "fig5", "fig7", "table2", "table3", "fig8"):
        spec = EXPERIMENTS[experiment_id]
        print()
        print("#" * 78)
        print(f"# {experiment_id}: {spec.description}")
        print("#" * 78)
        spec.main()
    print()
    print("Done. See EXPERIMENTS.md for the paper-vs-measured record.")


if __name__ == "__main__":
    main()
