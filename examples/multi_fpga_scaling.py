#!/usr/bin/env python3
"""Multi-FPGA scaling study: how far does the ring-connected design scale?

The paper deploys up to 4 accelerator nodes (2 Alveo U50 cards).  This example
sweeps node counts beyond that, separates the scaling and non-scaling latency
components, quantifies the ring-synchronization exposure with and without
transmission hiding, and reports the resources and power of each deployment.

Run with::

    python examples/multi_fpga_scaling.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import LoopLynxSystem, OptimizationConfig
from repro.analysis.breakdown import latency_breakdown
from repro.analysis.report import format_table
from repro.core.config import paper_system
from repro.energy.power import FpgaPowerModel


def main() -> None:
    print("LoopLynx multi-FPGA scaling study\n")
    node_counts = (1, 2, 4, 8, 16)
    fpga_power = FpgaPowerModel()

    # ------------------------------------------------------------------
    # 1. throughput, efficiency, power, resources per node count
    # ------------------------------------------------------------------
    rows = []
    base_tps = None
    for nodes in node_counts:
        system = LoopLynxSystem(paper_system(num_nodes=nodes))
        tps = system.throughput_tokens_per_second()
        if base_tps is None:
            base_tps = tps
        resources = system.resource_usage()
        power = fpga_power.total_power_watts(nodes)
        rows.append({
            "# Nodes": nodes,
            "Cards": system.config.num_cards,
            "Latency (ms)": system.average_token_latency_ms(),
            "Tokens/s": tps,
            "Speed-up": tps / base_tps,
            "Efficiency (%)": 100 * tps / base_tps / nodes,
            "Power (W)": power,
            "Tokens/J": tps / power,
            "DSPs": resources.dsp,
        })
    print(format_table(rows, title="Node-count sweep (GPT-2 345M, context = 512)"))
    print()

    # ------------------------------------------------------------------
    # 2. why scaling saturates: scaling vs non-scaling latency components
    # ------------------------------------------------------------------
    component_rows = []
    for nodes in node_counts:
        system = LoopLynxSystem(paper_system(num_nodes=nodes))
        breakdown = latency_breakdown(system)
        component_rows.append({
            "# Nodes": nodes,
            "Linear (ms)": breakdown.get("linear_layers", 0.0),
            "Attention (ms)": breakdown.get("multi_head_attention", 0.0),
            "Critical path (ms)": breakdown.get("critical_path", 0.0),
            "Sync exposed (ms)": breakdown.get("synchronization", 0.0),
        })
    print(format_table(component_rows,
                       title="Latency components vs node count "
                             "(only linear + attention distribute)"))
    print()

    # ------------------------------------------------------------------
    # 3. the cost of not hiding the ring transfers
    # ------------------------------------------------------------------
    hiding_rows = []
    for nodes in (2, 4, 8):
        system = LoopLynxSystem(paper_system(num_nodes=nodes))
        hidden = system.average_token_latency_ms()
        exposed = system.average_token_latency_ms(optimizations=OptimizationConfig(
            critical_path_fusion=True, headwise_pipelining=True,
            transmission_hiding=False))
        hiding_rows.append({"# Nodes": nodes, "Hidden (ms)": hidden,
                            "Exposed (ms)": exposed,
                            "Penalty (%)": 100 * (exposed / hidden - 1)})
    print(format_table(hiding_rows, title="Transmission-latency hiding matters more "
                                          "as nodes are added"))


if __name__ == "__main__":
    main()
