"""Tests for the token-level serving engine, scheduler policies and the
KV-capacity admission controller."""

import pytest

from repro.core.multi_node import LoopLynxSystem
from repro.memory.kv_cache import KVCacheLayout
from repro.serving.engine import ServedRequest, TokenServingEngine
from repro.serving.schedulers import (
    FifoScheduler,
    KVAdmissionController,
    PriorityScheduler,
    ShortestJobFirstScheduler,
    make_scheduler,
)
from repro.serving.simulator import FIFO_EXCLUSIVE, ServingSimulator
from repro.workloads.scenarios import Scenario
from repro.workloads.traces import (
    Request,
    RequestTrace,
    bursty_trace,
    multi_tenant_trace,
    synthetic_trace,
)


def _trace(shapes, gap_s=0.0, priorities=None):
    """Build a trace of (prefill, decode) shapes arriving ``gap_s`` apart."""
    requests = []
    for i, (prefill, decode) in enumerate(shapes):
        requests.append(Request(
            request_id=i, arrival_s=0.001 + i * gap_s,
            scenario=Scenario(prefill, decode),
            priority=0 if priorities is None else priorities[i]))
    return RequestTrace(requests=requests)


class _Entry:
    """Minimal stand-in for the engine's request state in policy unit tests."""

    def __init__(self, request, last_admitted_s=0.0):
        self.request = request
        self.last_admitted_s = last_admitted_s


def _entry(request_id, arrival_s, prefill=8, decode=8, priority=0):
    return _Entry(Request(request_id=request_id, arrival_s=arrival_s,
                          scenario=Scenario(prefill, decode),
                          priority=priority))


class TestSchedulerPolicies:
    def test_fifo_orders_by_arrival(self):
        scheduler = FifoScheduler()
        for entry in (_entry(2, 3.0), _entry(0, 1.0), _entry(1, 2.0)):
            scheduler.push(entry)
        popped = [scheduler.pop().request.request_id for _ in range(3)]
        assert popped == [0, 1, 2]

    def test_sjf_orders_by_total_tokens(self):
        scheduler = ShortestJobFirstScheduler()
        scheduler.push(_entry(0, 1.0, prefill=64, decode=512))
        scheduler.push(_entry(1, 2.0, prefill=16, decode=32))
        scheduler.push(_entry(2, 3.0, prefill=32, decode=32))
        popped = [scheduler.pop().request.request_id for _ in range(3)]
        assert popped == [1, 2, 0]

    def test_sjf_breaks_ties_by_arrival(self):
        scheduler = ShortestJobFirstScheduler()
        scheduler.push(_entry(1, 2.0, prefill=16, decode=16))
        scheduler.push(_entry(0, 1.0, prefill=16, decode=16))
        assert scheduler.pop().request.request_id == 0

    def test_priority_orders_by_priority_then_arrival(self):
        scheduler = PriorityScheduler()
        scheduler.push(_entry(0, 1.0, priority=0))
        scheduler.push(_entry(1, 2.0, priority=5))
        scheduler.push(_entry(2, 3.0, priority=5))
        popped = [scheduler.pop().request.request_id for _ in range(3)]
        assert popped == [1, 2, 0]

    def test_priority_victim_is_strictly_lower_class(self):
        scheduler = PriorityScheduler()
        head = _entry(9, 0.0, priority=3)
        running = [_Entry(Request(0, 0.0, Scenario(8, 8), priority=3)),
                   _Entry(Request(1, 0.0, Scenario(8, 8), priority=1),
                          last_admitted_s=1.0),
                   _Entry(Request(2, 0.0, Scenario(8, 8), priority=1),
                          last_admitted_s=2.0)]
        victim = scheduler.preemption_victim(running, head)
        # lowest class, most recently admitted (least progress wasted)
        assert victim.request.request_id == 2
        # equal-priority running work is never preempted
        assert scheduler.preemption_victim(running[:1], head) is None

    def test_fifo_and_sjf_never_preempt(self):
        head = _entry(9, 0.0, priority=3)
        running = [_entry(0, 0.0, priority=0)]
        assert FifoScheduler().preemption_victim(running, head) is None
        assert ShortestJobFirstScheduler().preemption_victim(running, head) is None

    def test_make_scheduler(self):
        assert make_scheduler("fifo").name == "fifo"
        assert make_scheduler("sjf").name == "sjf"
        assert make_scheduler("priority").name == "priority"
        with pytest.raises(ValueError):
            make_scheduler("round-robin")


class TestKVAdmission:
    def _layout(self):
        return KVCacheLayout(num_layers=2, num_heads=4, head_dim=8,
                             max_seq_len=256, num_nodes=2)

    def test_capacity_from_budget(self):
        layout = self._layout()
        per_token = layout.bytes_per_token_per_node()
        controller = KVAdmissionController(layout, budget_bytes=10 * per_token)
        assert controller.capacity_tokens == 10

    def test_fits_accounts_reservations(self):
        layout = self._layout()
        controller = KVAdmissionController(
            layout, budget_bytes=100 * layout.bytes_per_token_per_node())
        request = Request(0, 0.0, Scenario(30, 30))
        assert controller.reservation_tokens(request) == 60
        assert controller.fits(request, used_tokens=0)
        assert controller.fits(request, used_tokens=40)
        assert not controller.fits(request, used_tokens=41)

    def test_validate_rejects_impossible_requests(self):
        layout = self._layout()
        controller = KVAdmissionController(
            layout, budget_bytes=16 * layout.bytes_per_token_per_node())
        with pytest.raises(ValueError):
            controller.validate([Request(0, 0.0, Scenario(20, 20))])

    def test_for_system_defaults(self):
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        controller = KVAdmissionController.for_system(system)
        # the U50 share net of weights holds far more than one max context
        assert controller.capacity_tokens > system.config.model.max_seq_len

    def test_priority_preempts_on_kv_exhaustion_with_free_slots(self):
        """A KV-blocked high-priority head evicts low-priority work even when
        batch slots are free (no priority inversion through the cache)."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        layout = KVCacheLayout(
            num_layers=system.config.model.num_layers,
            num_heads=system.config.model.num_heads,
            head_dim=system.config.model.head_dim,
            max_seq_len=system.config.model.max_seq_len,
            num_nodes=2)
        # room for one 64-token reservation plus a little, not two
        controller = KVAdmissionController(
            layout, budget_bytes=80 * layout.bytes_per_token_per_node())
        trace = _trace([(16, 48), (16, 48)], gap_s=0.05, priorities=[0, 5])
        engine = TokenServingEngine(num_instances=1, system=system,
                                    policy="priority", max_batch_size=4,
                                    kv_controller=controller)
        metrics, records = engine.run(trace)
        low, high = records
        assert low.preemptions >= 1
        assert high.finish_s < low.finish_s

    def test_no_futile_eviction_when_head_still_would_not_fit(self):
        """When evicting one victim cannot free enough KV for the head, the
        victim keeps its progress (no work thrown away for nothing)."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        layout = KVCacheLayout(
            num_layers=system.config.model.num_layers,
            num_heads=system.config.model.num_heads,
            head_dim=system.config.model.head_dim,
            max_seq_len=system.config.model.max_seq_len,
            num_nodes=2)
        # resident lows: 68 + 20 of 150 tokens; the preemption victim is the
        # most recently admitted (the 20-token one), and evicting it cannot
        # fit the 96-token head (150 - 88 + 20 = 82 < 96), so it must be
        # spared and allowed to finish its own decode
        controller = KVAdmissionController(
            layout, budget_bytes=150 * layout.bytes_per_token_per_node())
        # gaps wide enough that both lows are resident before the high
        # arrives (admission happens at step boundaries)
        trace = _trace([(8, 60), (8, 12), (16, 80)], gap_s=0.05,
                       priorities=[0, 0, 5])
        engine = TokenServingEngine(num_instances=1, system=system,
                                    policy="priority", max_batch_size=4,
                                    kv_controller=controller)
        metrics, records = engine.run(trace)
        assert metrics.num_requests == 3
        low_long, low_short, high = records
        # the futile victim kept its progress and finished unpreempted
        assert low_short.preemptions == 0
        assert low_short.finish_s <= high.admitted_s
        # once the short low released its KV, evicting the long low DID free
        # enough for the head — a beneficial preemption the policy allows
        assert low_long.preemptions == 1
        assert high.finish_s < low_long.finish_s

    def test_admission_blocks_when_cache_full(self):
        """With room for only one max-context request, the second queues for
        the whole duration of the first even though batch slots are free."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        layout = KVCacheLayout(
            num_layers=system.config.model.num_layers,
            num_heads=system.config.model.num_heads,
            head_dim=system.config.model.head_dim,
            max_seq_len=system.config.model.max_seq_len,
            num_nodes=2)
        trace = _trace([(16, 48), (16, 48)])
        controller = KVAdmissionController(
            layout, budget_bytes=64 * layout.bytes_per_token_per_node())
        blocked = TokenServingEngine(num_instances=1, system=system,
                                     policy="fifo", max_batch_size=4,
                                     kv_controller=controller)
        metrics, records = blocked.run(trace)
        assert metrics.num_requests == 2
        # second request admitted only once the first released its KV
        assert records[1].admitted_s == pytest.approx(records[0].finish_s)

        roomy = TokenServingEngine(num_instances=1, system=system,
                                   policy="fifo", max_batch_size=4)
        _, free_records = roomy.run(trace)
        assert free_records[1].admitted_s < records[1].admitted_s


class TestTokenServingEngine:
    def test_every_request_served_once(self):
        trace = synthetic_trace(10, seed=3, mean_prefill=32, mean_decode=48)
        engine = TokenServingEngine(num_instances=2, policy="fifo")
        metrics, records = engine.run(trace)
        assert metrics.num_requests == 10
        assert [r.request_id for r in records] == list(range(10))
        assert metrics.generated_tokens == trace.total_decode_tokens

    def test_token_timeline_invariants(self):
        trace = synthetic_trace(8, seed=9, mean_prefill=24, mean_decode=40)
        _, records = TokenServingEngine(num_instances=1).run(trace)
        for record in records:
            assert record.admitted_s >= record.arrival_s
            assert record.first_token_s is not None
            assert record.first_token_s > record.admitted_s
            assert record.finish_s >= record.first_token_s
            assert record.ttft_s > 0
            if record.decode_len > 1:
                assert record.tpot_s > 0
            else:
                assert record.tpot_s is None

    def test_ttft_less_than_latency(self):
        trace = synthetic_trace(6, seed=2, mean_decode=64)
        metrics, records = TokenServingEngine(num_instances=1).run(trace)
        for record in records:
            if record.decode_len > 1:
                assert record.ttft_s < record.end_to_end_latency_s
        assert len(metrics.ttfts_s) == len(records)
        assert len(metrics.tpots_s) == len(records)

    def test_batched_decode_step_is_sublinear(self):
        """The core batching primitive: stepping 8 requests costs less than 8
        single steps (weight streaming amortizes across the batch)."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        single = system.decode_step_latency_s(256, batch_size=1)
        batched = system.decode_step_latency_s(256, batch_size=8)
        assert batched < 8 * single * 0.8
        assert batched > single

    def test_decode_step_matches_token_report_at_batch_one(self):
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        report = system.decode_token_report(context_len=256)
        assert system.decode_step_latency_ms(256, 1) == pytest.approx(
            report.latency_ms)
        assert system.prefill_latency_s(32) == pytest.approx(
            system.prefill_latency_ms(32) / 1e3)

    def test_continuous_batching_beats_exclusive_on_bursty_trace(self):
        """The PR's acceptance criterion: strictly higher throughput and
        strictly lower mean queueing delay on a bursty trace."""
        trace = bursty_trace(24, seed=3, mean_prefill=48, mean_decode=128,
                             burst_size=8)
        exclusive, _ = ServingSimulator(num_instances=1).run(trace)
        batched, _ = TokenServingEngine(num_instances=1, policy="fifo",
                                        max_batch_size=8).run(trace)
        assert (batched.throughput_tokens_per_second
                > exclusive.throughput_tokens_per_second)
        assert batched.mean_queueing_delay_s < exclusive.mean_queueing_delay_s

    def test_compatibility_mode_reproduces_simulator_exactly(self):
        """Property test: batching disabled (batch=1, whole-prompt prefill,
        exact context timing) reproduces the whole-request FIFO simulator."""
        for seed, instances in ((4, 1), (5, 2)):
            trace = synthetic_trace(10, seed=seed, mean_prefill=24,
                                    mean_decode=48)
            old_metrics, old_records = ServingSimulator(
                num_instances=instances).run(trace)
            engine = TokenServingEngine(num_instances=instances, policy="fifo",
                                        max_batch_size=1,
                                        prefill_chunk_tokens=None,
                                        context_bucket=1)
            new_metrics, new_records = engine.run(trace)
            old_records = sorted(old_records, key=lambda r: r.request_id)
            for old, new in zip(old_records, new_records):
                assert new.admitted_s == pytest.approx(old.start_s, rel=1e-9)
                assert new.finish_s == pytest.approx(old.finish_s, rel=1e-9)
            assert new_metrics.makespan_s == pytest.approx(
                old_metrics.makespan_s, rel=1e-9)
            assert new_metrics.mean_queueing_delay_s == pytest.approx(
                old_metrics.mean_queueing_delay_s, rel=1e-9, abs=1e-12)

    def test_join_and_leave_at_step_boundaries(self):
        """A request arriving mid-flight joins the running batch instead of
        waiting for the first request to finish."""
        trace = _trace([(16, 200), (16, 40)], gap_s=0.2)
        _, records = TokenServingEngine(num_instances=1, policy="fifo",
                                        max_batch_size=4).run(trace)
        first, second = records
        # the long request is still running when the short one starts and ends
        assert second.admitted_s < first.finish_s
        assert second.finish_s < first.finish_s

    def test_no_priority_inversion(self):
        """With the priority policy, a high-priority arrival overtakes every
        queued low-priority request (no inversion through the queue)."""
        shapes = [(16, 64)] * 6
        priorities = [0, 0, 0, 0, 0, 5]
        trace = _trace(shapes, gap_s=0.01, priorities=priorities)
        _, records = TokenServingEngine(num_instances=1, policy="priority",
                                        max_batch_size=1).run(trace)
        urgent = records[5]
        queued_lows = [r for r in records[1:5]]
        assert all(urgent.first_token_s < low.first_token_s
                   for low in queued_lows)

    def test_priority_preemption_restarts_victim(self):
        trace = _trace([(16, 300), (16, 32)], gap_s=0.1,
                       priorities=[0, 5])
        metrics, records = TokenServingEngine(
            num_instances=1, policy="priority", max_batch_size=1).run(trace)
        low, high = records
        assert metrics.preemptions >= 1
        assert low.preemptions >= 1
        # the preempted request finishes after the high-priority one
        assert high.finish_s < low.finish_s

    def test_sjf_reorders_queued_requests(self):
        """A short job queued behind a long one finishes first under SJF."""
        shapes = [(16, 400), (16, 400), (16, 16)]
        trace = _trace(shapes, gap_s=0.01)
        _, fifo_records = TokenServingEngine(
            num_instances=1, policy="fifo", max_batch_size=1).run(trace)
        _, sjf_records = TokenServingEngine(
            num_instances=1, policy="sjf", max_batch_size=1).run(trace)
        assert sjf_records[2].first_token_s < fifo_records[2].first_token_s
        # under SJF the short job overtakes the second long job
        assert sjf_records[2].finish_s < sjf_records[1].first_token_s

    def test_multi_tenant_priority_orders_ttft(self):
        trace = multi_tenant_trace(24, seed=2)
        _, records = TokenServingEngine(num_instances=1, policy="priority",
                                        max_batch_size=2).run(trace)
        mean_ttft = {}
        for record in records:
            mean_ttft.setdefault(record.tenant, []).append(record.ttft_s)
        mean_ttft = {t: sum(v) / len(v) for t, v in mean_ttft.items()}
        assert mean_ttft["interactive"] < mean_ttft["batch"]
        assert mean_ttft["interactive"] < mean_ttft["background"]

    def test_simulator_policy_delegation(self):
        trace = synthetic_trace(6, seed=1, mean_decode=48)
        simulator = ServingSimulator(num_instances=1, policy="sjf",
                                     max_batch_size=4)
        metrics, records = simulator.run(trace)
        assert metrics.policy == "sjf"
        assert isinstance(records[0], ServedRequest)
        assert metrics.ttfts_s

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenServingEngine(num_instances=0)
        with pytest.raises(ValueError):
            TokenServingEngine(max_batch_size=0)
        with pytest.raises(ValueError):
            TokenServingEngine(prefill_chunk_tokens=0)
        with pytest.raises(ValueError):
            TokenServingEngine(context_bucket=0)
        with pytest.raises(ValueError):
            TokenServingEngine(policy="lifo")
        with pytest.raises(ValueError):
            TokenServingEngine().run(RequestTrace())
        with pytest.raises(ValueError):
            ServingSimulator(policy=FIFO_EXCLUSIVE, max_batch_size=4)

    def test_run_policy_rejects_kv_budget_for_exclusive(self):
        from repro.analysis.serving import policy_comparison, run_policy

        trace = synthetic_trace(4, seed=1, mean_decode=32)
        with pytest.raises(ValueError):
            run_policy(trace, FIFO_EXCLUSIVE, kv_budget_bytes=1 << 30)
        # comparison drops the exclusive row instead of mixing regimes
        rows = policy_comparison(trace, policies=(FIFO_EXCLUSIVE, "fifo"),
                                 kv_budget_bytes=1 << 30)
        assert [row["Policy"] for row in rows] == ["fifo"]

    def test_metrics_slo_goodput(self):
        trace = synthetic_trace(8, seed=6, mean_decode=48)
        metrics, _ = TokenServingEngine(num_instances=2).run(trace)
        generous = metrics.slo_goodput_rps(1e9, 1e9)
        assert generous == pytest.approx(metrics.requests_per_second)
        assert metrics.slo_goodput_rps(0.0, 0.0) == 0.0
        assert 0.0 <= metrics.slo_attainment(1.0, 0.05) <= 1.0

    def test_single_token_requests_do_not_bias_tpot(self):
        """Single-token requests have no inter-token gap: their TPOT entry
        is None, the TPOT percentiles skip them instead of absorbing a 0.0,
        and they pass the TPOT SLO vacuously (only via slo_attainment)."""
        trace = _trace([(16, 1), (16, 1), (16, 1), (16, 40)], gap_s=0.05)
        metrics, records = TokenServingEngine(num_instances=1, policy="fifo",
                                              max_batch_size=4).run(trace)
        assert [r.tpot_s is None for r in records] == [True, True, True, False]
        assert len(metrics.tpots_s) == len(metrics.ttfts_s) == 4
        assert metrics.tpots_s.count(None) == 3
        # the percentile distribution holds exactly one real sample, so
        # every fraction returns it — not a zero-diluted mixture
        real_tpot = records[3].tpot_s
        assert metrics.tpot_percentile_s(0.0) == pytest.approx(real_tpot)
        assert metrics.tpot_percentile_s(0.5) == pytest.approx(real_tpot)
        # an impossible TPOT SLO fails only the request that has a TPOT
        assert metrics.slo_attainment(1e9, 1e-12) == pytest.approx(3 / 4)
        assert metrics.slo_attainment(1e9, 1e9) == pytest.approx(1.0)

    def test_slo_attainment_rejects_mismatched_lists(self):
        """Hand-built metrics with misaligned per-request lists raise
        instead of silently zip-truncating (which overstated attainment)."""
        from repro.serving.metrics import ServingMetrics

        metrics = ServingMetrics(
            num_requests=3, num_instances=1, num_nodes_per_instance=2,
            makespan_s=1.0, generated_tokens=30,
            ttfts_s=[0.1, 0.2, 9.9], tpots_s=[0.01, 0.02])
        with pytest.raises(ValueError):
            metrics.slo_attainment(1.0, 0.05)
        # empty tpots_s stays valid: TPOT is vacuously met for every request
        metrics.tpots_s = []
        assert metrics.slo_attainment(1.0, 0.05) == pytest.approx(2 / 3)
