"""Tests for the macro dataflow kernel cycle and functional models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import HardwareConfig
from repro.core.kernels.attention import FusedMultiHeadAttentionKernel
from repro.core.kernels.base import KernelTiming
from repro.core.kernels.dma import DmaEngine
from repro.core.kernels.layernorm_residual import FusedLayerNormResidualKernel
from repro.core.kernels.matrix_processing import FusedMatrixProcessingKernel
from repro.core.kernels.quantization_unit import QuantizationUnit
from repro.core.kernels.router import RouterKernel
from repro.model.config import LinearLayerSpec, ModelConfig, layer_linear_specs
from repro.model.layers import causal_attention, split_heads
from repro.quant.int8 import quantize_per_channel, quantize_per_tensor


@pytest.fixture
def hardware():
    return HardwareConfig()


class TestKernelTiming:
    def test_components_and_merge(self):
        a = KernelTiming(total=10)
        a.add_component("x", 4)
        b = KernelTiming(total=5)
        b.add_component("x", 1)
        b.add_component("y", 2)
        a.merge(b)
        assert a.total == 15
        assert a.component("x") == 5
        assert a.component("y") == 2
        assert a.component("missing") == 0


class TestDmaEngine:
    def test_stream_cycles_close_to_bandwidth_limit(self, hardware):
        dma = DmaEngine(hardware)
        num_bytes = 1 << 22
        timing = dma.stream_cycles(num_bytes, row_bytes=1024)
        ideal = num_bytes / (hardware.mp_channels * hardware.hbm.bytes_per_cycle)
        assert timing.total >= ideal
        assert timing.total <= 1.35 * ideal  # efficiency + request overhead bounded

    def test_zero_transfer(self, hardware):
        assert DmaEngine(hardware).stream_cycles(0).total == 0.0

    def test_negative_rejected(self, hardware):
        with pytest.raises(ValueError):
            DmaEngine(hardware).stream_cycles(-1)

    def test_burst_beats(self, hardware):
        dma = DmaEngine(hardware)
        assert dma.burst_beats(1024) == 1024 // hardware.mac_group_size
        with pytest.raises(ValueError):
            dma.burst_beats(0)

    def test_invocation_statistics(self, hardware):
        dma = DmaEngine(hardware)
        dma.stream_cycles(1024)
        dma.stream_cycles(1024)
        assert dma.invocations == 2
        assert dma.total_cycles > 0
        dma.reset_stats()
        assert dma.invocations == 0


class TestQuantizationUnit:
    def test_throughput_and_drain(self, hardware):
        unit = QuantizationUnit(hardware)
        assert unit.throughput_cycles(hardware.mp_channels) == 1
        assert unit.throughput_cycles(0) == 0
        timing = unit.drain_cycles(256)
        assert timing.total == unit.throughput_cycles(256)

    def test_negative_rejected(self, hardware):
        with pytest.raises(ValueError):
            QuantizationUnit(hardware).throughput_cycles(-1)

    def test_functional_requantize_matches_reference(self, hardware):
        unit = QuantizationUnit(hardware)
        accumulator = np.array([500, -700, 90], dtype=np.int64)
        out = unit.requantize(accumulator, 0.02, 0.05, 0.1, bias=np.zeros(3))
        expected = np.clip(np.rint(accumulator * 0.001 / 0.1), -128, 127)
        assert np.array_equal(out, expected.astype(np.int8))

    def test_dequantize_accumulator(self, hardware):
        unit = QuantizationUnit(hardware)
        accumulator = np.array([100, 200], dtype=np.int64)
        out = unit.dequantize_accumulator(accumulator, 0.1, np.array([1.0, 2.0]),
                                          bias=np.array([0.5, 0.5]))
        assert np.allclose(out, [10.5, 40.5])


class TestFusedMatrixProcessingKernel:
    def test_decode_linear_is_memory_bound(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("fc", 1024, 4096)
        timing = kernel.linear_op_cycles(spec, num_nodes=1, batch_tokens=1)
        assert timing.is_memory_bound
        assert timing.memory_cycles > timing.compute_cycles

    def test_batched_prefill_becomes_compute_bound(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("fc", 1024, 4096)
        timing = kernel.linear_op_cycles(spec, num_nodes=1, batch_tokens=128)
        assert not timing.is_memory_bound

    def test_cycles_halve_with_two_nodes(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("fc", 1024, 4096)
        one = kernel.linear_op_cycles(spec, num_nodes=1)
        two = kernel.linear_op_cycles(spec, num_nodes=2)
        assert two.steady_state_cycles == pytest.approx(one.steady_state_cycles / 2,
                                                        rel=0.01)
        # fixed overheads do not shrink
        assert two.fill_overhead_cycles == one.fill_overhead_cycles

    def test_weight_bytes_per_token(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        config = ModelConfig.gpt2_medium()
        specs = layer_linear_specs(config)
        full = kernel.weight_bytes_per_token(specs, num_nodes=1)
        half = kernel.weight_bytes_per_token(specs, num_nodes=2)
        assert full == config.linear_weight_bytes_per_layer()
        assert half == pytest.approx(full / 2, rel=0.01)

    def test_block_count(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("qkv", 1024, 3072)
        rows_per_block = hardware.mp_channels * hardware.mac_group_size
        assert kernel.num_output_blocks(spec, 1) == -(-3072 // rows_per_block)
        assert kernel.num_output_blocks(spec, 4) >= 1

    def test_invalid_arguments(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("fc", 8, 8)
        with pytest.raises(ValueError):
            kernel.linear_op_cycles(spec, num_nodes=0)
        with pytest.raises(ValueError):
            kernel.linear_op_cycles(spec, batch_tokens=0)

    def test_functional_linear_matches_numpy_gemv(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(48, 32))
        x = rng.normal(size=32)
        weight_q = quantize_per_channel(weight, axis=0)
        x_q = quantize_per_tensor(x)
        out = kernel.functional_linear(weight_q.data, x_q.data,
                                       float(x_q.scale[0]), weight_q.scale,
                                       bias=np.zeros(48))
        reference = weight @ x
        rel = np.linalg.norm(out - reference) / np.linalg.norm(reference)
        assert rel < 0.05

    def test_functional_linear_requantized_output(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        rng = np.random.default_rng(1)
        weight_q = quantize_per_channel(rng.normal(size=(16, 8)), axis=0)
        x_q = quantize_per_tensor(rng.normal(size=8))
        out = kernel.functional_linear(weight_q.data, x_q.data, float(x_q.scale[0]),
                                       weight_q.scale, output_scale=0.05)
        assert out.dtype == np.int8

    def test_functional_linear_type_check(self, hardware):
        kernel = FusedMatrixProcessingKernel(hardware)
        with pytest.raises(TypeError):
            kernel.functional_linear(np.zeros((2, 2)), np.zeros(2, dtype=np.int8),
                                     1.0, np.ones(2))

    @given(num_nodes=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_more_nodes_never_slower(self, num_nodes):
        hardware = HardwareConfig()
        kernel = FusedMatrixProcessingKernel(hardware)
        spec = LinearLayerSpec("fc", 1024, 4096)
        base = kernel.linear_op_cycles(spec, num_nodes=1).steady_state_cycles
        scaled = kernel.linear_op_cycles(spec, num_nodes=num_nodes).steady_state_cycles
        assert scaled <= base + 1e-9


class TestFusedMultiHeadAttentionKernel:
    def test_cycles_grow_with_context(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        short = kernel.decode_layer_cycles(64, 16, 64)
        long = kernel.decode_layer_cycles(512, 16, 64)
        assert long.total > short.total

    def test_cycles_shrink_with_fewer_heads_per_node(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        full = kernel.decode_layer_cycles(512, 16, 64)
        half = kernel.decode_layer_cycles(512, 8, 64)
        assert half.total < full.total

    def test_headwise_pipelining_hides_softmax(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        pipelined = kernel.decode_layer_cycles(512, 16, 64, headwise_pipelining=True)
        serialized = kernel.decode_layer_cycles(512, 16, 64, headwise_pipelining=False)
        assert pipelined.total < serialized.total
        assert pipelined.exposed_softmax_cycles < serialized.exposed_softmax_cycles
        assert serialized.exposed_softmax_cycles == pytest.approx(
            16 * serialized.softmax_cycles_per_head)

    def test_zero_context_clamped(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        timing = kernel.decode_layer_cycles(0, 4, 64)
        assert timing.total > 0

    def test_invalid_arguments(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        with pytest.raises(ValueError):
            kernel.decode_layer_cycles(-1, 4, 64)
        with pytest.raises(ValueError):
            kernel.decode_layer_cycles(10, 0, 64)
        with pytest.raises(ValueError):
            kernel.prefill_layer_cycles(0, 4, 64)

    def test_prefill_scales_with_prompt(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        small = kernel.prefill_layer_cycles(16, 16, 64)
        large = kernel.prefill_layer_cycles(64, 16, 64)
        assert large.total > small.total

    def test_softmax_cycles(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        assert kernel.softmax_cycles(0) == 0.0
        assert kernel.softmax_cycles(512) > kernel.softmax_cycles(64)

    def test_functional_attention_matches_reference(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        rng = np.random.default_rng(2)
        num_heads, head_dim, seq = 4, 16, 9
        d_model = num_heads * head_dim
        query = rng.normal(size=(1, d_model))
        keys = rng.normal(size=(seq, d_model))
        values = rng.normal(size=(seq, d_model))
        reference = causal_attention(query, keys, values, num_heads)[0]
        out = kernel.functional_decode_attention(
            split_heads(query, num_heads)[:, 0, :],
            split_heads(keys, num_heads),
            split_heads(values, num_heads))
        assert np.allclose(out.reshape(-1), reference, atol=1e-9)

    def test_functional_mask_and_softmax(self, hardware):
        kernel = FusedMultiHeadAttentionKernel(hardware)
        scores = np.ones(6)
        masked = kernel.functional_masked_scores(scores, valid_len=3)
        weights = kernel.functional_softmax(masked)
        assert np.allclose(weights[3:], 0.0, atol=1e-10)
        assert np.allclose(weights[:3], 1.0 / 3.0)
        with pytest.raises(ValueError):
            kernel.functional_masked_scores(scores, valid_len=10)


class TestFusedLayerNormResidualKernel:
    def test_optimized_is_faster(self, hardware):
        kernel = FusedLayerNormResidualKernel(hardware)
        assert (kernel.layer_norm_cycles(1024, optimized=True)
                < kernel.layer_norm_cycles(1024, optimized=False))
        assert kernel.residual_cycles(1024, optimized=True) == 0.0
        assert kernel.residual_cycles(1024, optimized=False) == 1024.0

    def test_elementwise_parallelism(self, hardware):
        kernel = FusedLayerNormResidualKernel(hardware)
        serial = kernel.elementwise_cycles(4096, optimized=False)
        parallel = kernel.elementwise_cycles(4096, optimized=True)
        assert serial == 4096
        assert parallel == pytest.approx(4096 / hardware.critical_path_parallelism)

    def test_fused_block_timing_components(self, hardware):
        kernel = FusedLayerNormResidualKernel(hardware)
        timing = kernel.fused_block_cycles(1024, optimized=False)
        assert timing.component("layer_norm") > 0
        assert timing.component("residual") == 1024
        assert timing.total == timing.component("layer_norm") + 1024

    def test_validation(self, hardware):
        kernel = FusedLayerNormResidualKernel(hardware)
        with pytest.raises(ValueError):
            kernel.layer_norm_cycles(0)
        with pytest.raises(ValueError):
            kernel.elementwise_cycles(-1)

    def test_functional_paths(self, hardware):
        kernel = FusedLayerNormResidualKernel(hardware)
        x = np.random.default_rng(3).normal(size=(2, 8))
        normed = kernel.functional_layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(normed.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(kernel.functional_residual(x, x), 2 * x)
        assert kernel.functional_gelu(np.array([0.0]))[0] == pytest.approx(0.0)


class TestRouterKernel:
    def test_single_node_router_has_no_sync_cost(self, hardware):
        router = RouterKernel(hardware, num_nodes=1)
        result = router.synchronize(1024, compute_cycles=1000)
        assert result.exposed_cycles == 0.0

    def test_hiding_toggle(self, hardware):
        hidden = RouterKernel(hardware, num_nodes=4).synchronize(
            2048, compute_cycles=100_000, blocks=12, hide_transfers=True)
        exposed = RouterKernel(hardware, num_nodes=4).synchronize(
            2048, compute_cycles=100_000, blocks=12, hide_transfers=False)
        assert hidden.exposed_cycles < exposed.exposed_cycles

    def test_inter_card_hop_latency_applies_when_crossing_cards(self, hardware):
        on_card = RouterKernel(hardware, num_nodes=2, nodes_per_card=2)
        across = RouterKernel(hardware, num_nodes=4, nodes_per_card=2)
        assert (across.ring.config.hop_latency_cycles
                > on_card.ring.config.hop_latency_cycles)

    def test_functional_allgather(self, hardware):
        router = RouterKernel(hardware, num_nodes=3)
        subvectors = [np.full(8, i, dtype=np.int8) for i in range(3)]
        gathered = router.functional_allgather(subvectors)
        expected = np.concatenate(subvectors)
        assert all(np.array_equal(g, expected) for g in gathered)
        with pytest.raises(ValueError):
            router.functional_allgather(subvectors[:2])

    def test_resource_usage_reported(self, hardware):
        for kernel in (FusedMatrixProcessingKernel(hardware),
                       FusedMultiHeadAttentionKernel(hardware),
                       FusedLayerNormResidualKernel(hardware),
                       DmaEngine(hardware),
                       QuantizationUnit(hardware),
                       RouterKernel(hardware, num_nodes=2)):
            usage = kernel.resource_usage()
            assert usage.lut > 0
