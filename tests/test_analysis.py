"""Tests for the analysis utilities (breakdowns, scalability, comparisons,
report rendering)."""

import pytest

from repro.analysis.breakdown import (
    aggregate_breakdown_ms,
    latency_breakdown,
    optimization_walkthrough,
)
from repro.analysis.comparison import (
    fpga_comparison_table,
    gpu_comparison,
    summarize_gpu_comparison,
)
from repro.analysis.report import format_table, render_markdown_table
from repro.analysis.scalability import scaling_efficiency, throughput_table
from repro.core.multi_node import LoopLynxSystem
from repro.workloads.scenarios import Scenario


class TestBreakdown:
    def test_aggregation_maps_components_to_categories(self):
        cycles = {"linear": 1000.0, "attention": 500.0, "layer_norm": 100.0,
                  "ring_sync_exposed": 50.0, "unknown_component": 10.0}
        out = aggregate_breakdown_ms(cycles, clock_hz=1e6)
        assert out["linear_layers"] == pytest.approx(1.0)
        assert out["multi_head_attention"] == pytest.approx(0.5)
        assert out["synchronization"] == pytest.approx(0.05)
        # unknown components fold into the critical path bucket
        assert out["critical_path"] == pytest.approx(0.11)

    def test_latency_breakdown_sums_to_report(self):
        system = LoopLynxSystem.paper_configuration(num_nodes=1)
        breakdown = latency_breakdown(system)
        report = system.decode_token_report()
        assert sum(breakdown.values()) == pytest.approx(report.latency_ms, rel=1e-6)

    def test_walkthrough_progression(self):
        steps = optimization_walkthrough(num_nodes=1)
        assert [s.label for s in steps] == ["baseline", "+ critical-path fusion",
                                            "+ head-wise pipelining"]
        assert steps[0].improvement_vs_baseline == 0.0
        assert steps[1].improvement_vs_baseline > 0.05
        assert steps[2].improvement_vs_baseline > steps[1].improvement_vs_baseline
        assert steps[0].latency_ms > steps[1].latency_ms > steps[2].latency_ms

    def test_baseline_fractions_match_paper_shape(self):
        steps = optimization_walkthrough(num_nodes=1)
        baseline = steps[0]
        assert baseline.matrix_fraction == pytest.approx(0.815, abs=0.06)
        assert baseline.critical_path_fraction == pytest.approx(0.185, abs=0.06)


class TestScalability:
    def test_table_rows_and_speedups(self):
        rows = throughput_table((1, 2, 4))
        assert [row.num_nodes for row in rows] == [1, 2, 4]
        assert rows[0].speedup_vs_previous is None
        assert rows[1].speedup_vs_previous == pytest.approx(
            rows[1].tokens_per_second / rows[0].tokens_per_second)
        assert rows[2].speedup_vs_single == pytest.approx(
            rows[2].tokens_per_second / rows[0].tokens_per_second)
        assert 1.3 < rows[1].speedup_vs_previous < 2.0
        assert 1.2 < rows[2].speedup_vs_previous < 2.0

    def test_throughputs_near_paper_table3(self):
        rows = {row.num_nodes: row for row in throughput_table((1, 2, 4))}
        paper = {1: 151.7, 2: 259.7, 4: 392.2}
        for nodes, expected in paper.items():
            assert rows[nodes].tokens_per_second == pytest.approx(expected, rel=0.15)

    def test_efficiency_decreases_with_scale(self):
        rows = throughput_table((1, 2, 4))
        efficiency = scaling_efficiency(rows)
        assert efficiency[1] == pytest.approx(1.0)
        assert efficiency[1] > efficiency[2] > efficiency[4]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            throughput_table(())
        assert scaling_efficiency([]) == {}

    def test_row_as_dict(self):
        row = throughput_table((1,))[0]
        as_dict = row.as_dict()
        assert as_dict["# Nodes"] == "1-node"
        assert "Tokens Per Second" in as_dict


class TestComparisons:
    def test_table2_rows_and_winners(self):
        rows = fpga_comparison_table(node_counts=(4, 2, 1))
        architectures = [row.architecture for row in rows]
        assert architectures.count("LoopLynx") == 3
        latencies = {row.nodes: row.token_latency_ms for row in rows
                     if row.architecture == "LoopLynx"}
        dfx = next(row for row in rows if "DFX" in row.architecture)
        spatial = next(row for row in rows if row.architecture == "Spatial Architecture")
        # the paper's ordering: 4-node < 2-node < spatial < DFX < 1-node is
        # nearly preserved; the critical claims are the 2/4-node wins and the
        # 1-node being slower than both baselines
        four = latencies["4 Nodes (U50 x2)"]
        two = latencies["2 Nodes (U50 x1)"]
        one = latencies["1 Node (U50 x1)"]
        assert four < two < dfx.token_latency_ms
        assert four < spatial.token_latency_ms
        assert two < spatial.token_latency_ms * 1.05
        assert one > spatial.token_latency_ms

    def test_table2_loops_use_fewer_dsps_than_dfx(self):
        rows = fpga_comparison_table(node_counts=(2,))
        looplynx = next(row for row in rows if row.architecture == "LoopLynx")
        dfx = next(row for row in rows if "DFX" in row.architecture)
        assert looplynx.dsp < dfx.dsp

    def test_gpu_comparison_rows(self):
        scenarios = (Scenario(128, 32), Scenario(32, 128))
        rows = gpu_comparison(scenarios=scenarios, node_counts=(2, 4))
        assert len(rows) == 2
        for row in rows:
            assert set(row.latency_ms) == {"A100", "2-node", "4-node"}
            assert row.normalized_latency["4-node"] == pytest.approx(1.0)
            assert row.normalized_efficiency["A100"] == pytest.approx(1.0)

    def test_gpu_wins_prefill_heavy_scenario(self):
        rows = gpu_comparison(scenarios=(Scenario(128, 32),), node_counts=(2,))
        assert rows[0].speedup_vs_gpu["2-node"] < 1.0

    def test_looplynx_wins_long_generation(self):
        rows = gpu_comparison(scenarios=(Scenario(32, 512),), node_counts=(2, 4))
        assert rows[0].speedup_vs_gpu["2-node"] > 1.0
        assert rows[0].speedup_vs_gpu["4-node"] > rows[0].speedup_vs_gpu["2-node"]

    def test_summary_structure(self):
        rows = gpu_comparison(scenarios=(Scenario(32, 128), Scenario(64, 512)),
                              node_counts=(2,))
        summary = summarize_gpu_comparison(rows, node_counts=(2,))
        entry = summary["2-node"]
        assert set(entry) == {"average_speedup_vs_gpu", "average_efficiency_ratio",
                              "average_energy_fraction"}
        assert entry["average_energy_fraction"] < 1.0


class TestReportRendering:
    ROWS = [{"name": "a", "value": 1.2345}, {"name": "b", "value": 10}]

    def test_format_table_alignment_and_title(self):
        text = format_table(self.ROWS, title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + len(self.ROWS)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_table_column_selection(self):
        text = format_table(self.ROWS, columns=["value"])
        assert "name" not in text

    def test_markdown_table(self):
        md = render_markdown_table(self.ROWS)
        assert md.splitlines()[0].startswith("| name")
        assert "| a" in md
        assert render_markdown_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_table(self.ROWS, float_digits=1)
        assert "1.2" in text and "1.23" not in text
