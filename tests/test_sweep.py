"""Parallel sweep engine: expansion determinism, pool/serial identity,
crash isolation, and shard merging.

The sweep module's contract has four legs, each pinned here:

1. ``expand_sweep`` is a pure function of the spec — cartesian order,
   labels and seeds are deterministic, and malformed specs raise rather
   than half-expand.
2. A process pool is an execution detail: ``workers=N`` must reproduce
   the ``workers=1`` summaries byte for byte, in job order.
3. One poisoned config comes back as a structured failure; its siblings
   complete untouched.
4. Streaming shards of the *same* configuration merge into one
   aggregate whose counters are exact sums.
"""

import pytest

from repro.serving.sweep import (
    SweepJob,
    TraceSpec,
    expand_sweep,
    run_jobs,
    run_sweep,
)
from repro.workloads.traces import RequestTrace, bursty_trace

_TRACE = {"name": "bursty", "num_requests": 120, "seed": 2,
          "mean_prefill": 40, "mean_decode": 64}
_BASE = {"policy": "fifo", "max_batch_size": 4}


class TestExpansion:
    def test_grid_cartesian_order_last_axis_fastest(self):
        jobs = expand_sweep({
            "trace": _TRACE,
            "base": _BASE,
            "grid": {"num_instances": [1, 2], "router": ["round_robin",
                                                         "least_loaded"]},
        })
        assert [j.label for j in jobs] == [
            "num_instances=1,router=round_robin",
            "num_instances=1,router=least_loaded",
            "num_instances=2,router=round_robin",
            "num_instances=2,router=least_loaded",
        ]
        assert [j.index for j in jobs] == [0, 1, 2, 3]
        assert all(j.params["policy"] == "fifo" for j in jobs)
        assert all(j.seed == 2 for j in jobs)  # trace seed travels openly

    def test_explicit_configs_with_labels(self):
        jobs = expand_sweep({
            "trace": _TRACE,
            "base": _BASE,
            "configs": [{"label": "baseline"},
                        {"policy": "sjf", "label": "shortest-first"},
                        {"num_instances": 2}],
        })
        assert [j.label for j in jobs] == ["baseline", "shortest-first",
                                          "config[2]"]
        assert jobs[1].params["policy"] == "sjf"
        assert jobs[0].params["policy"] == "fifo"

    def test_trace_seed_axis_sweeps_the_generator(self):
        jobs = expand_sweep({
            "trace": _TRACE,
            "base": _BASE,
            "grid": {"trace_seed": [7, 8, 9]},
        })
        assert [j.seed for j in jobs] == [7, 8, 9]
        assert all(isinstance(j.trace, TraceSpec) for j in jobs)
        assert [j.trace.params["seed"] for j in jobs] == [7, 8, 9]
        # the axis is consumed by expansion, not passed to run_policy
        assert all("trace_seed" not in j.params for j in jobs)

    def test_trace_seed_axis_requires_a_recipe(self):
        trace = RequestTrace(requests=list(bursty_trace(10, seed=0)))
        with pytest.raises(ValueError, match="trace_seed"):
            expand_sweep({"trace": trace, "base": _BASE,
                          "grid": {"trace_seed": [1, 2]}})

    @pytest.mark.parametrize("spec, match", [
        ({"trace": _TRACE}, "exactly one of"),
        ({"trace": _TRACE, "grid": {"a": [1]}, "configs": [{}]},
         "exactly one of"),
        ({"grid": {"a": [1]}}, "needs a 'trace'"),
        ({"trace": _TRACE, "grid": {}}, "non-empty"),
        ({"trace": _TRACE, "grid": {"router": []}}, "no values"),
        ({"trace": _TRACE, "configs": []}, "non-empty"),
        ({"trace": _TRACE, "grid": {"a": [1]}, "bogus": 1},
         "unknown sweep spec keys"),
        ({"trace": {"num_requests": 10}, "grid": {"a": [1]}},
         "needs a 'name' key"),
    ])
    def test_malformed_specs_raise(self, spec, match):
        with pytest.raises(ValueError, match=match):
            expand_sweep(spec)

    def test_unknown_trace_generator_raises(self):
        with pytest.raises(ValueError, match="unknown trace generator"):
            TraceSpec("no_such_trace")


class TestPoolIdentity:
    SPEC = {
        "trace": _TRACE,
        "base": _BASE,
        "grid": {"policy": ["fifo", "sjf"],
                 "num_instances": [1, 2]},
    }

    def test_workers_4_byte_identical_to_serial(self):
        serial = run_sweep(self.SPEC, workers=1)
        pooled = run_sweep(self.SPEC, workers=4)
        assert serial.workers == 1 and pooled.workers == 4
        assert [r.label for r in pooled.results] == \
            [r.label for r in serial.results]
        assert [r.summary_key() for r in pooled.results] == \
            [r.summary_key() for r in serial.results]

    def test_workers_capped_at_job_count(self):
        outcome = run_sweep({"trace": _TRACE, "base": _BASE,
                             "grid": {"policy": ["fifo", "sjf"]}}, workers=16)
        assert outcome.workers == 2


class TestCrashIsolation:
    def test_poisoned_config_fails_structured_siblings_complete(self):
        outcome = run_sweep({
            "trace": _TRACE,
            "base": _BASE,
            "configs": [
                {"label": "good-one"},
                {"label": "poisoned", "policy": "no_such_policy"},
                {"label": "good-two", "num_instances": 2},
            ],
        }, workers=2)
        by_label = {r.label: r for r in outcome.results}
        assert by_label["good-one"].ok and by_label["good-two"].ok
        bad = by_label["poisoned"]
        assert not bad.ok
        assert bad.summary is None
        assert bad.failure.error_type == "ValueError"
        assert "no_such_policy" in bad.failure.message
        assert "run_policy" in bad.failure.traceback
        assert outcome.failures == [bad]
        with pytest.raises(RuntimeError, match="poisoned"):
            outcome.raise_failures()

    def test_failure_is_identical_serial_and_pooled(self):
        spec = {"trace": _TRACE, "base": _BASE,
                "configs": [{"label": "bad", "policy": "no_such_policy"}]}
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep({**spec, "configs": spec["configs"] * 2},
                           workers=2)
        assert serial.results[0].failure.error_type == \
            pooled.results[0].failure.error_type


class TestComparisonsThroughTheSweep:
    """The analysis comparison helpers route through run_jobs; parallel
    workers must not change a single row."""

    @pytest.mark.parametrize("helper_kwargs", [
        ("policy_comparison", dict(policies=("fifo", "sjf"))),
        ("router_comparison", dict(instances="1x2n,1x4n",
                                   routers=("round_robin", "least_loaded"))),
        ("prefill_mode_comparison", dict(num_instances=2)),
    ], ids=["policy", "router", "prefill"])
    def test_rows_identical_at_workers_2(self, helper_kwargs):
        from repro.analysis import serving as analysis
        name, kwargs = helper_kwargs
        helper = getattr(analysis, name)
        trace = RequestTrace(requests=list(bursty_trace(
            150, seed=4, mean_prefill=40, mean_decode=64)))
        rows_serial = helper(trace, max_batch_size=4, workers=1, **kwargs)
        rows_pooled = helper(trace, max_batch_size=4, workers=2, **kwargs)
        assert rows_pooled == rows_serial


class TestShardMerging:
    def test_merged_counters_are_exact_sums(self):
        outcome = run_sweep({
            "trace": dict(_TRACE, num_requests=150),
            "base": dict(_BASE, metrics_mode="streaming",
                         num_instances=2),
            "grid": {"trace_seed": [11, 12, 13]},
        }, workers=2, keep_metrics=True)
        outcome.raise_failures()
        parts = [r.metrics for r in outcome.results]
        merged = outcome.merged_metrics()
        assert merged.num_requests == \
            sum(p.num_requests for p in parts) == 450
        assert merged.generated_tokens == \
            sum(p.generated_tokens for p in parts)
        assert merged.preemptions == sum(p.preemptions for p in parts)
        assert merged.makespan_s == max(p.makespan_s for p in parts)
        assert merged.metrics_mode == "streaming"

    def test_merged_metrics_requires_kept_metrics(self):
        outcome = run_sweep({
            "trace": _TRACE,
            "base": dict(_BASE, metrics_mode="streaming"),
            "grid": {"trace_seed": [1, 2]},
        }, workers=1, keep_metrics=False)
        with pytest.raises(ValueError, match="keep_metrics"):
            outcome.merged_metrics()


class TestJobPlumbing:
    def test_prebuilt_trace_jobs_run(self):
        trace = RequestTrace(requests=list(bursty_trace(
            60, seed=1, mean_prefill=32, mean_decode=48)))
        outcome = run_jobs([
            SweepJob(index=0, label="only", trace=trace,
                     params={"policy": "fifo", "max_batch_size": 4}),
        ], workers=4)  # single job: runs serial regardless
        assert outcome.workers == 1
        assert outcome.results[0].ok
        assert outcome.results[0].summary["requests"] == 60

    def test_empty_job_list_raises(self):
        with pytest.raises(ValueError, match="no jobs"):
            run_jobs([])
