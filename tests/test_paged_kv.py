"""Tests for the paged KV-cache block manager and the engine's paged
admission / swap-preemption modes, including the KV accounting invariants:
allocated blocks never exceed capacity, blocks are fully freed on
finish/preempt, and reservation mode is unchanged (PR 1 regression guard)."""

import pytest

from repro.core.multi_node import LoopLynxSystem
from repro.memory.kv_cache import KVCacheLayout
from repro.memory.paged_kv import DEFAULT_HOST_LINK, PagedKVManager
from repro.serving.engine import TokenServingEngine
from repro.serving.schedulers import KVAdmissionController
from repro.workloads.scenarios import Scenario
from repro.workloads.traces import Request, RequestTrace, bursty_trace


def _layout(max_seq_len=256, num_nodes=2):
    return KVCacheLayout(num_layers=2, num_heads=4, head_dim=8,
                         max_seq_len=max_seq_len, num_nodes=num_nodes)


def _manager(blocks=10, block_size=16, **kwargs):
    layout = _layout()
    budget = blocks * block_size * layout.bytes_per_token_per_node()
    return PagedKVManager(layout, block_size_tokens=block_size,
                          budget_bytes=budget, **kwargs)


def _trace(shapes, gap_s=0.0, priorities=None):
    requests = []
    for i, (prefill, decode) in enumerate(shapes):
        requests.append(Request(
            request_id=i, arrival_s=0.001 + i * gap_s,
            scenario=Scenario(prefill, decode),
            priority=0 if priorities is None else priorities[i]))
    return RequestTrace(requests=requests)


def _system_layout(system):
    return KVCacheLayout.for_model(system.config.model,
                                   num_nodes=system.num_nodes)


class TestPagedKVManager:
    def test_pool_sizing_from_budget(self):
        manager = _manager(blocks=10, block_size=16)
        assert manager.total_blocks == 10
        assert manager.free_blocks == 10
        assert manager.used_blocks == 0
        assert manager.bytes_per_block_per_node == \
            16 * _layout().bytes_per_token_per_node()

    def test_blocks_needed_rounds_up(self):
        manager = _manager(block_size=16)
        assert manager.blocks_needed(0) == 0
        assert manager.blocks_needed(1) == 1
        assert manager.blocks_needed(16) == 1
        assert manager.blocks_needed(17) == 2
        with pytest.raises(ValueError):
            manager.blocks_needed(-1)

    def test_allocate_grows_and_is_idempotent(self):
        manager = _manager(blocks=10, block_size=16)
        assert manager.allocate(0, 20)       # 2 blocks
        assert manager.used_blocks == 2
        assert manager.allocate(0, 30)       # still 2 blocks
        assert manager.used_blocks == 2
        assert manager.allocate(0, 33)       # grow to 3
        assert manager.used_blocks == 3
        assert manager.table(0).cached_tokens == 33

    def test_allocate_is_all_or_nothing(self):
        manager = _manager(blocks=4, block_size=16)
        assert manager.allocate(0, 48)       # 3 of 4 blocks
        free_before = manager.free_blocks
        assert not manager.allocate(1, 40)   # needs 3, only 1 free
        assert manager.free_blocks == free_before
        assert not manager.holds(1) or \
            not manager.table(1).device_blocks

    def test_free_returns_all_blocks(self):
        manager = _manager(blocks=6, block_size=16)
        manager.allocate(0, 40)
        manager.allocate(1, 16)
        assert manager.free(0) == 3
        assert manager.free_blocks == 5
        assert not manager.holds(0)
        assert manager.free(0) == 0          # double-free is a no-op

    def test_occupancy_and_fragmentation(self):
        manager = _manager(blocks=10, block_size=16)
        assert manager.occupancy_fraction == 0.0
        assert manager.internal_fragmentation_fraction == 0.0
        manager.allocate(0, 24)              # 2 blocks for 24 of 32 positions
        assert manager.occupancy_fraction == pytest.approx(0.2)
        assert manager.internal_fragmentation_fraction == pytest.approx(8 / 32)

    def test_swap_round_trip(self):
        manager = _manager(blocks=6, block_size=16)
        manager.allocate(0, 40)              # 3 blocks
        blocks, swapped = manager.swap_out(0)
        assert blocks == 3
        assert swapped == 3 * manager.bytes_per_block_per_node * 2  # 2 nodes
        assert manager.free_blocks == 6
        assert manager.table(0).is_swapped
        assert manager.table(0).cached_tokens == 40
        with pytest.raises(RuntimeError):
            manager.allocate(0, 41)          # must swap_in first
        assert manager.can_swap_in(0)
        blocks_in, _ = manager.swap_in(0)
        assert blocks_in == 3
        assert manager.used_blocks == 3
        assert not manager.table(0).is_swapped
        assert manager.swap_out_count == 1
        assert manager.swap_in_count == 1
        assert manager.swapped_bytes_total == 2 * swapped

    def test_swap_in_requires_free_blocks(self):
        manager = _manager(blocks=4, block_size=16)
        manager.allocate(0, 48)
        manager.swap_out(0)
        manager.allocate(1, 48)              # steal 3 of 4 blocks
        assert not manager.can_swap_in(0)
        with pytest.raises(RuntimeError):
            manager.swap_in(0)

    def test_swap_transfer_time_scales_with_blocks(self):
        manager = _manager(blocks=8, block_size=16)
        assert manager.swap_transfer_s(0) == 0.0
        one = manager.swap_transfer_s(1)
        four = manager.swap_transfer_s(4)
        assert one > 0
        assert four > one
        # fixed hop latency means the cost is affine, not linear
        assert four < 4 * one

    def test_swap_uses_pcie_not_hbm_speeds(self):
        manager = _manager(blocks=8)
        # a block transfer should take at least bytes/bandwidth seconds
        per_card_bytes = manager.bytes_per_block_per_node * 2  # both nodes, 1 card
        floor_s = per_card_bytes / DEFAULT_HOST_LINK.bandwidth_bytes_per_s
        assert manager.swap_transfer_s(1) >= floor_s * 0.99

    def test_validate_rejects_oversized_request(self):
        manager = _manager(blocks=2, block_size=16)  # 32 positions
        manager.validate([Request(0, 0.0, Scenario(16, 16))])
        with pytest.raises(ValueError):
            manager.validate([Request(0, 0.0, Scenario(20, 20))])

    def test_clone_empty_shares_nothing(self):
        manager = _manager(blocks=5)
        manager.allocate(0, 16)
        clone = manager.clone_empty()
        assert clone.total_blocks == manager.total_blocks
        assert clone.used_blocks == 0
        assert not clone.holds(0)

    def test_for_system_defaults(self):
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        manager = PagedKVManager.for_system(system)
        # the U50 share net of weights holds far more than one max context
        assert manager.total_blocks * manager.block_size_tokens > \
            system.config.model.max_seq_len

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PagedKVManager(_layout(), block_size_tokens=0)
        with pytest.raises(ValueError):
            PagedKVManager(_layout(), budget_bytes=-1)
        with pytest.raises(ValueError):
            PagedKVManager(_layout(), nodes_per_card=0)


def _tight_manager(system, tokens):
    layout = _system_layout(system)
    return PagedKVManager(layout, block_size_tokens=16,
                          budget_bytes=tokens * layout.bytes_per_token_per_node())


class TestEnginePagedMode:
    def _run(self, trace, tokens=256, policy="fifo", preemption_mode="swap",
             max_batch_size=4):
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        engine = TokenServingEngine(
            num_instances=1, system=system, policy=policy,
            max_batch_size=max_batch_size,
            kv_block_manager=_tight_manager(system, tokens),
            preemption_mode=preemption_mode)
        metrics, records = engine.run(trace)
        return engine, metrics, records

    def test_accounting_invariants_under_pressure(self):
        """Allocated blocks never exceed capacity and every block is freed
        by the end of the run, even with heavy swapping."""
        trace = _trace([(24, 60)] * 6, gap_s=0.01)
        engine, metrics, records = self._run(trace, tokens=192)
        assert metrics.num_requests == 6
        for manager in engine.last_kv_managers:
            assert 0 < manager.peak_used_blocks <= manager.total_blocks
            assert manager.used_blocks == 0
            assert manager.free_blocks == manager.total_blocks
            assert manager.swap_out_count == manager.swap_in_count

    def test_swap_preemption_resumes_without_recompute(self):
        """Capacity pressure forces swaps, yet swapped requests finish and
        the engine records swap (not recompute) preemptions."""
        trace = _trace([(24, 80)] * 5, gap_s=0.01)
        _, metrics, records = self._run(trace, tokens=176)
        assert metrics.kv_mode == "paged"
        assert metrics.swap_out_count > 0
        assert metrics.swap_in_count == metrics.swap_out_count
        assert metrics.swapped_bytes > 0
        assert metrics.swap_time_s > 0
        assert sum(r.swap_outs for r in records) == metrics.swap_out_count
        assert metrics.preemptions == metrics.swap_out_count

    def test_recompute_preemption_discards_blocks(self):
        trace = _trace([(24, 80)] * 5, gap_s=0.01)
        _, metrics, records = self._run(trace, tokens=176,
                                        preemption_mode="recompute")
        assert metrics.preemptions > 0
        assert metrics.swap_out_count == 0
        assert metrics.swapped_bytes == 0
        assert all(r.swap_outs == 0 for r in records)

    def test_swap_finishes_no_later_than_recompute(self):
        """Resuming from swapped blocks skips the recomputed prefills, so
        under identical pressure the swap run's makespan can't be worse by
        more than the PCIe transfer overhead."""
        trace = _trace([(32, 64)] * 5, gap_s=0.01)
        _, swap_metrics, _ = self._run(trace, tokens=176)
        _, rec_metrics, _ = self._run(trace, tokens=176,
                                      preemption_mode="recompute")
        assert swap_metrics.makespan_s <= rec_metrics.makespan_s * 1.02

    def test_paged_admits_more_than_reservation(self):
        """The tentpole property: with identical capacity, on-demand block
        allocation runs a bigger batch than worst-case reservations."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        trace = _trace([(16, 96)] * 6, gap_s=0.01)
        tokens = 288
        layout = _system_layout(system)
        paged = TokenServingEngine(
            num_instances=1, system=system, policy="fifo", max_batch_size=8,
            kv_block_manager=_tight_manager(system, tokens))
        reserve = TokenServingEngine(
            num_instances=1, system=system, policy="fifo", max_batch_size=8,
            kv_controller=KVAdmissionController(
                layout, budget_bytes=tokens * layout.bytes_per_token_per_node()))
        paged_metrics, _ = paged.run(trace)
        reserve_metrics, _ = reserve.run(trace)
        assert paged_metrics.mean_running_batch > \
            reserve_metrics.mean_running_batch

    def test_block_growth_never_evicts_higher_priority(self):
        """Capacity-driven eviction respects priority: when the pool runs
        dry mid-decode, the low-priority co-residents are evicted and the
        high-priority request rides through untouched (no priority
        inversion through block growth)."""
        trace = _trace([(16, 120), (16, 120), (16, 120)], gap_s=0.01,
                       priorities=[0, 0, 5])
        _, metrics, records = self._run(trace, tokens=176, policy="priority")
        high = records[2]
        assert metrics.preemptions > 0       # the pool really was contended
        assert high.preemptions == 0
        assert high.swap_outs == 0
        assert all(r.preemptions > 0 for r in records[:2])

    def test_swapped_requests_have_instance_affinity(self):
        """A request swapped out on one instance may only resume there —
        its KV cannot teleport to another instance's pool for free.  Every
        swap-out is therefore matched by a swap-in even with multiple
        instances competing for the queue."""
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        trace = bursty_trace(24, seed=3, mean_prefill=48, mean_decode=128,
                             burst_size=8)
        engine = TokenServingEngine(
            num_instances=2, system=system, policy="fifo", max_batch_size=8,
            kv_block_manager=_tight_manager(system, 320),
            preemption_mode="swap")
        metrics, records = engine.run(trace)
        assert metrics.num_requests == len(trace)
        assert metrics.swap_out_count > 0
        assert metrics.swap_in_count == metrics.swap_out_count
        for manager in engine.last_kv_managers:
            assert manager.used_blocks == 0
            assert manager.swap_out_count == manager.swap_in_count

    def test_priority_preemption_swaps_victim(self):
        """A high-priority arrival evicts a low-priority running request;
        in swap mode the victim resumes without losing progress."""
        trace = _trace([(16, 300), (16, 32)], gap_s=0.1, priorities=[0, 5])
        _, metrics, records = self._run(trace, tokens=512, policy="priority",
                                        max_batch_size=1)
        low, high = records
        assert low.preemptions >= 1
        assert low.swap_outs >= 1
        assert high.finish_s < low.finish_s

    def test_occupancy_metrics_populated(self):
        trace = _trace([(24, 48)] * 4, gap_s=0.01)
        _, metrics, _ = self._run(trace, tokens=256)
        assert metrics.kv_total_blocks == 16
        assert metrics.kv_block_size == 16
        assert 0 < metrics.mean_kv_occupancy <= 1.0
        assert metrics.mean_kv_occupancy <= metrics.peak_kv_occupancy <= 1.0
        assert 0 <= metrics.mean_kv_fragmentation < 1.0
        assert metrics.mean_running_batch > 1.0
        summary = metrics.summary()
        assert summary["mean_kv_occupancy"] == metrics.mean_kv_occupancy
        assert summary["swap_outs"] == float(metrics.swap_out_count)

    def test_validate_rejects_impossible_trace(self):
        trace = _trace([(200, 200)])
        with pytest.raises(ValueError):
            self._run(trace, tokens=128)

    def test_mutually_exclusive_kv_modes(self):
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        layout = _system_layout(system)
        with pytest.raises(ValueError):
            TokenServingEngine(
                kv_controller=KVAdmissionController(layout),
                kv_block_manager=_tight_manager(system, 256))
        with pytest.raises(ValueError):
            TokenServingEngine(preemption_mode="discard")


class TestReservationRegression:
    """Reservation mode must reproduce PR 1 behaviour exactly — the paged
    subsystem is additive."""

    def test_run_policy_reserve_matches_direct_controller(self):
        from repro.analysis.serving import run_policy

        trace = bursty_trace(16, seed=7, mean_prefill=48, mean_decode=128,
                             burst_size=8)
        system = LoopLynxSystem.paper_configuration(num_nodes=2)
        layout = _system_layout(system)
        budget = 640 * layout.bytes_per_token_per_node()
        via_helper, helper_records = run_policy(
            trace, "fifo", kv_budget_bytes=budget, kv_mode="reserve")
        controller = KVAdmissionController.for_system(system,
                                                      budget_bytes=budget)
        engine = TokenServingEngine(num_instances=1, system=system,
                                    policy="fifo", max_batch_size=8,
                                    kv_controller=controller)
        direct, direct_records = engine.run(trace)
        assert via_helper.makespan_s == direct.makespan_s
        assert via_helper.kv_mode == direct.kv_mode == "reserve"
        for a, b in zip(helper_records, direct_records):
            assert a.admitted_s == b.admitted_s
            assert a.first_token_s == b.first_token_s
            assert a.finish_s == b.finish_s
            assert a.swap_outs == b.swap_outs == 0

    def test_no_kv_engine_reports_mode_none(self):
        trace = _trace([(16, 32)] * 3, gap_s=0.01)
        metrics, _ = TokenServingEngine(num_instances=1).run(trace)
        assert metrics.kv_mode == "none"
        assert metrics.swap_out_count == 0
        assert metrics.swapped_bytes == 0
        assert metrics.kv_total_blocks == 0
        assert metrics.mean_running_batch > 0
