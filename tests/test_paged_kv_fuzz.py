"""Randomized property tests for :class:`PagedKVManager`.

Each test case drives one seeded random sequence of operations —
allocate / allocate_prefix / grow / free / register_prefix / swap_out /
swap_in / export_handoff→import_handoff — against a pair of pools (so
handoffs cross pools, as on a disaggregated cluster) and a lightweight
reference model, and checks the block-accounting invariants after *every*
operation:

* no block is simultaneously free and in a table (and never in two tiers
  at once: free list, reclaimable cache, live tables are disjoint);
* ``used_blocks + free_blocks == total_blocks`` and the three tiers
  partition the physical pool exactly;
* with sharing on, every block's refcount equals the number of block
  tables referencing it (and ``shared_blocks`` counts the ≥2 ones);
* freeing or handing off a request never releases a block another
  request still holds.

The whole battery runs with prefix sharing both off (the historical
private-blocks manager) and on (hash-indexed reuse + copy-on-write), 100
seeds each — ≥200 distinct op sequences per CI run.
"""

import random

import pytest

from repro.memory.kv_cache import KVCacheLayout
from repro.memory.paged_kv import PagedKVManager
from repro.sanitize import check_kv_invariants

BLOCK_SIZE = 4
POOL_BLOCKS = 24
MAX_SEQ = 256
OPS_PER_SEQUENCE = 60
SEEDS = range(100)

#: Shared prompt vocabularies: prompts drawn from the same family share a
#: prefix, which is what exercises matching, refcounts and COW.
FAMILIES = 4


def _manager(prefix_sharing):
    layout = KVCacheLayout(num_layers=2, num_heads=4, head_dim=8,
                           max_seq_len=MAX_SEQ, num_nodes=2)
    budget = POOL_BLOCKS * BLOCK_SIZE * layout.bytes_per_token_per_node()
    return PagedKVManager(layout, block_size_tokens=BLOCK_SIZE,
                          budget_bytes=budget,
                          prefix_sharing=prefix_sharing)


def check_invariants(manager):
    """The four pinned invariants (plus index consistency), white-box.

    PR 8 promoted the checker itself into the library —
    :func:`repro.sanitize.check_kv_invariants` — so sanitized engine runs
    apply exactly what this battery pins; the fuzz harness now drives the
    promoted checker (a violation surfaces as ``SanitizerError``)."""
    check_kv_invariants(manager)


def _blocks_held_by_others(manager, request_id):
    """Device blocks any *other* request's table references."""
    held = set()
    for rid, table in manager._tables.items():
        if rid != request_id:
            held.update(table.device_blocks)
    return held


def _prompt_ids(rng):
    """A prompt from one of a few shared families: a common family prefix
    (drives matches and refcounts) plus an optional divergent tail (drives
    partial matches and copy-on-write)."""
    family = rng.randrange(FAMILIES)
    prefix_len = rng.randint(1, 10 * BLOCK_SIZE)
    ids = [family * 100_000 + i for i in range(prefix_len)]
    if rng.random() < 0.5:
        tail = rng.randint(1, 3 * BLOCK_SIZE)
        ids += [900_000 + rng.randrange(1_000_000) for _ in range(tail)]
    return tuple(ids)


class Reference:
    """Minimal mirror of the documented per-request contract: which pool
    holds each request, whether it is swapped, and its cached-token floor
    (sharing can only raise ``cached_tokens``, never lower it)."""

    def __init__(self):
        self.state = {}  # rid -> [pool_index, swapped, cached_floor]

    def check(self, managers):
        for rid, (pool, swapped, floor) in self.state.items():
            manager = managers[pool]
            assert manager.holds(rid)
            table = manager.table(rid)
            assert table.is_swapped == swapped
            assert table.cached_tokens >= floor
            if not swapped:
                assert len(table.device_blocks) * manager.block_size_tokens \
                    >= table.cached_tokens
        for pool, manager in enumerate(managers):
            for rid in manager._tables:
                assert rid in self.state and self.state[rid][0] == pool


@pytest.mark.parametrize("prefix_sharing", [False, True],
                         ids=["sharing-off", "sharing-on"])
@pytest.mark.parametrize("seed", SEEDS)
def test_random_op_sequences(seed, prefix_sharing):
    rng = random.Random(seed * 2 + int(prefix_sharing))
    managers = [_manager(prefix_sharing), _manager(prefix_sharing)]
    reference = Reference()
    prompts = {}  # rid -> token ids
    next_rid = 0

    def live(predicate):
        matches = [rid for rid, s in reference.state.items() if predicate(s)]
        return rng.choice(matches) if matches else None

    for _ in range(OPS_PER_SEQUENCE):
        op = rng.choice(("new", "new", "new", "grow", "grow", "free", "free",
                         "register", "swap_out", "swap_in", "handoff"))
        if op == "new":
            pool = rng.randrange(2)
            manager = managers[pool]
            rid = next_rid
            ids = _prompt_ids(rng)
            target = len(ids)
            before_free = manager.free_blocks
            if prefix_sharing:
                matched = manager.allocate_prefix(rid, target, ids)
                ok = matched is not None
            else:
                ok = manager.allocate(rid, target)
                matched = 0 if ok else None
            if ok:
                next_rid += 1
                prompts[rid] = ids
                reference.state[rid] = [pool, False, target]
                assert (matched or 0) <= max(0, len(ids) - 1)
            else:
                # all-or-nothing: a refused allocation has no side effects
                assert not manager.holds(rid)
                assert manager.free_blocks == before_free
        elif op == "grow":
            rid = live(lambda s: not s[1])
            if rid is None:
                continue
            pool, _, floor = reference.state[rid]
            manager = managers[pool]
            target = min(manager.table(rid).cached_tokens
                         + rng.randint(1, 2 * BLOCK_SIZE), MAX_SEQ)
            if manager.allocate(rid, target):
                reference.state[rid][2] = max(floor, target)
        elif op == "free":
            rid = live(lambda s: True)
            if rid is None:
                continue
            pool = reference.state[rid][0]
            manager = managers[pool]
            others = _blocks_held_by_others(manager, rid)
            released = manager.free(rid)
            assert released >= 0
            # invariant 4: nothing another request holds was released
            assert not others & set(manager._free)
            assert not others & set(manager._reclaimable)
            for table in manager._tables.values():
                assert others >= others & set(table.device_blocks)
            del reference.state[rid]
        elif op == "register":
            rid = live(lambda s: not s[1])
            if rid is None:
                continue
            pool = reference.state[rid][0]
            managers[pool].register_prefix(rid, prompts[rid])
        elif op == "swap_out":
            rid = live(lambda s: not s[1])
            if rid is None:
                continue
            pool = reference.state[rid][0]
            manager = managers[pool]
            if not manager.table(rid).device_blocks:
                continue
            others = _blocks_held_by_others(manager, rid)
            manager.swap_out(rid)
            assert not others & set(manager._free)
            reference.state[rid][1] = True
        elif op == "swap_in":
            rid = live(lambda s: s[1])
            if rid is None:
                continue
            pool = reference.state[rid][0]
            manager = managers[pool]
            if manager.can_swap_in(rid):
                manager.swap_in(rid)
                reference.state[rid][1] = False
            else:
                with pytest.raises(RuntimeError):
                    manager.swap_in(rid)
        elif op == "handoff":
            rid = live(lambda s: not s[1])
            if rid is None:
                continue
            pool = reference.state[rid][0]
            source = managers[pool]
            if not source.table(rid).device_blocks:
                continue
            others = _blocks_held_by_others(source, rid)
            _, cached_tokens, _ = source.export_handoff(rid)
            assert not others & set(source._free)
            assert not others & set(source._reclaimable) or prefix_sharing
            assert not source.holds(rid)
            target = managers[1 - pool]
            target.import_handoff(rid, cached_tokens)
            reference.state[rid] = [1 - pool, True, 0]
        for manager in managers:
            check_invariants(manager)
        reference.check(managers)

    # drain: freeing everything returns the pool to a clean state
    for rid in list(reference.state):
        pool = reference.state[rid][0]
        managers[pool].free(rid)
        del reference.state[rid]
        for manager in managers:
            check_invariants(manager)
    for manager in managers:
        assert manager.used_blocks == 0
        assert manager.free_blocks == manager.total_blocks
        if not prefix_sharing:
            assert len(manager._free) == manager.total_blocks


def test_sequence_count_meets_ci_floor():
    """The parametrization above is the CI contract: ≥200 randomized op
    sequences per run, split evenly across sharing off/on."""
    assert len(SEEDS) * 2 >= 200
