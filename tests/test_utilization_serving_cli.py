"""Tests for the utilization analysis, the serving simulator and the CLI."""

import pytest

from repro.analysis.utilization import (
    architecture_comparison,
    attention_gantt,
    linear_layer_gantt,
    looplynx_active_area_fraction,
    looplynx_kernel_busy_fractions,
    render_gantt,
    spatial_active_area_fraction,
    temporal_active_area_fraction,
)
from repro.cli import build_parser, main
from repro.serving.metrics import ServingMetrics, percentile
from repro.serving.simulator import ServingSimulator
from repro.workloads.traces import synthetic_trace


class TestUtilizationAnalysis:
    def test_kernel_busy_fractions_sum_below_one(self):
        fractions = looplynx_kernel_busy_fractions(num_nodes=2)
        assert set(fractions) == {"fused_mp", "fused_mha", "fused_ln_res"}
        assert all(0.0 <= value <= 1.0 for value in fractions.values())
        assert sum(fractions.values()) <= 1.0
        assert fractions["fused_mp"] > fractions["fused_mha"] > fractions["fused_ln_res"]

    def test_hybrid_has_highest_active_area_share(self):
        """The paper's Fig. 3 argument: the hybrid design keeps a larger share
        of its instantiated compute area busy during decode than either the
        temporal overlay or the spatial design."""
        hybrid = looplynx_active_area_fraction(num_nodes=2)
        temporal = temporal_active_area_fraction()
        spatial = spatial_active_area_fraction()
        assert hybrid > temporal
        assert hybrid > spatial

    def test_architecture_comparison_rows(self):
        rows = architecture_comparison()
        assert len(rows) == 3
        names = [row.name for row in rows]
        assert any("Temporal" in name for name in names)
        assert any("Spatial" in name for name in names)
        assert any("LoopLynx" in name for name in names)
        looplynx = next(row for row in rows if "LoopLynx" in row.name)
        assert looplynx.token_latency_ms == min(row.token_latency_ms for row in rows)
        as_dict = looplynx.as_dict()
        assert "Active compute-area share (%)" in as_dict

    def test_gantt_rows_and_rendering(self):
        rows = linear_layer_gantt()
        units = {row[0] for row in rows}
        assert units == {"dma", "mpu", "quant", "router"}
        text = render_gantt(rows, width=40)
        assert "dma" in text and "#" in text
        assert render_gantt([]) == "(no activity)"

    def test_attention_gantt_modes(self):
        pipelined = attention_gantt(headwise_pipelining=True)
        serialized = attention_gantt(headwise_pipelining=False)
        assert {row[0] for row in pipelined} == {"score_mac", "softmax", "mix_mac"}
        assert {row[0] for row in serialized} == {"score_mac", "softmax", "mix_mac"}
        span = max(stop for _, _, stop in serialized)
        assert span > max(stop for _, _, stop in pipelined)


class TestServingMetrics:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.9) == 7.0
        with pytest.raises(ValueError):
            percentile(values, 1.5)

    def test_metrics_derivations(self):
        metrics = ServingMetrics(
            num_requests=2, num_instances=1, num_nodes_per_instance=2,
            makespan_s=10.0, generated_tokens=200,
            queueing_delays_s=[0.0, 1.0],
            end_to_end_latencies_s=[4.0, 6.0],
            service_times_s=[4.0, 5.0],
        )
        assert metrics.throughput_tokens_per_second == pytest.approx(20.0)
        assert metrics.requests_per_second == pytest.approx(0.2)
        assert metrics.mean_queueing_delay_s == pytest.approx(0.5)
        assert metrics.instance_utilization == pytest.approx(0.9)
        assert metrics.latency_percentile_s(0.5) == pytest.approx(5.0)
        assert metrics.energy_joules() > 0
        assert metrics.tokens_per_joule() > 0
        summary = metrics.summary()
        assert summary["p99_latency_s"] >= summary["p50_latency_s"]


class TestServingSimulator:
    def test_serves_every_request_once(self):
        trace = synthetic_trace(12, seed=4, mean_prefill=32, mean_decode=64)
        simulator = ServingSimulator(num_instances=2, num_nodes_per_instance=2)
        metrics, completed = simulator.run(trace)
        assert metrics.num_requests == 12
        assert len(completed) == 12
        assert {record.request_id for record in completed} == {r.request_id for r in trace}
        assert metrics.generated_tokens == trace.total_decode_tokens

    def test_requests_never_start_before_arrival(self):
        trace = synthetic_trace(10, seed=5, mean_decode=64)
        _, completed = ServingSimulator(num_instances=1).run(trace)
        assert all(record.start_s >= record.arrival_s for record in completed)
        assert all(record.finish_s > record.start_s for record in completed)

    def test_instance_never_overlaps_requests(self):
        trace = synthetic_trace(15, seed=6, mean_decode=64)
        _, completed = ServingSimulator(num_instances=2).run(trace)
        by_instance = {}
        for record in completed:
            by_instance.setdefault(record.instance_id, []).append(record)
        for records in by_instance.values():
            records.sort(key=lambda r: r.start_s)
            for earlier, later in zip(records, records[1:]):
                assert later.start_s >= earlier.finish_s - 1e-9

    def test_more_instances_reduce_queueing(self):
        trace = synthetic_trace(20, seed=7, mean_decode=128, arrival_rate_per_s=2.0)
        single, _ = ServingSimulator(num_instances=1).run(trace)
        quad, _ = ServingSimulator(num_instances=4).run(trace)
        assert quad.mean_queueing_delay_s <= single.mean_queueing_delay_s
        assert quad.latency_percentile_s(0.95) <= single.latency_percentile_s(0.95)

    def test_faster_instances_increase_capacity(self):
        two = ServingSimulator(num_instances=1, num_nodes_per_instance=2)
        four = ServingSimulator(num_instances=1, num_nodes_per_instance=4)
        assert (four.capacity_requests_per_second(64, 256)
                > two.capacity_requests_per_second(64, 256))

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingSimulator(num_instances=0)
        simulator = ServingSimulator(num_instances=1)
        from repro.workloads.traces import RequestTrace
        with pytest.raises(ValueError):
            simulator.run(RequestTrace())


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table2" in out

    def test_latency_command(self, capsys):
        assert main(["latency", "--nodes", "2", "--context", "256"]) == 0
        out = capsys.readouterr().out
        assert "Token latency" in out and "Breakdown" in out

    def test_scenario_command(self, capsys):
        assert main(["scenario", "--nodes", "4", "--prefill", "32", "--decode", "64"]) == 0
        out = capsys.readouterr().out
        assert "Speed-up vs A100" in out

    def test_scaling_and_utilization_commands(self, capsys):
        assert main(["scaling", "--max-nodes", "4"]) == 0
        assert main(["utilization"]) == 0
        out = capsys.readouterr().out
        assert "4-node" in out
        assert "LoopLynx hybrid" in out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Nvidia A100" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_serve_command_reports_ttft_tpot(self, capsys):
        assert main(["serve", "--trace", "bursty", "--requests", "16",
                     "--policy", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "p99_ttft_s" in out
        assert "p50_tpot_s" in out
        assert "SLO goodput" in out

    def test_serve_command_compare_mode(self, capsys):
        assert main(["serve", "--trace", "steady", "--requests", "10",
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "fifo-exclusive" in out
        assert "sjf" in out
        assert "P99 TTFT" in out

    def test_serve_command_multitenant_breakdown(self, capsys):
        assert main(["serve", "--trace", "multitenant", "--requests", "12",
                     "--policy", "priority", "--max-batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "Per-tenant breakdown" in out
        assert "interactive" in out

    def test_serve_command_clean_errors(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert "num_requests" in capsys.readouterr().err
        assert main(["serve", "--kv-budget-mib", "1", "--requests", "4"]) == 2
        assert "KV budget" in capsys.readouterr().err

    def test_serve_command_kv_budget(self, capsys):
        assert main(["serve", "--trace", "steady", "--requests", "8",
                     "--policy", "fifo", "--kv-budget-mib", "64"]) == 0
        out = capsys.readouterr().out
        assert "mean_queue_delay_s" in out

    def test_serve_command_mixed_prefill(self, capsys):
        assert main(["serve", "--trace", "bursty", "--requests", "10",
                     "--prefill-mode", "mixed",
                     "--mixed-step-token-budget", "128"]) == 0
        out = capsys.readouterr().out
        assert "prefill mixed" in out
        assert "prefill_tokens" in out
        assert "decode_time_share" in out

    def test_serve_command_compare_prefill(self, capsys):
        assert main(["serve", "--trace", "bursty", "--requests", "10",
                     "--compare-prefill"]) == 0
        out = capsys.readouterr().out
        assert "exclusive vs mixed prefill" in out
        assert "P95 TTFT" in out

    def test_serve_command_compare_prefill_rejects_exclusive_policy(self, capsys):
        assert main(["serve", "--trace", "bursty", "--requests", "6",
                     "--policy", "fifo-exclusive", "--compare-prefill"]) == 2
        assert "token-level policy" in capsys.readouterr().err

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["latency", "--nodes", "4"])
        assert args.nodes == 4
        args = parser.parse_args(["serve", "--policy", "sjf",
                                  "--kv-budget-mib", "256"])
        assert args.policy == "sjf" and args.kv_budget_mib == 256

    def test_export_command(self, capsys, tmp_path):
        assert main(["export", "table1", "table3",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "table3" in out
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table3.json").exists()
