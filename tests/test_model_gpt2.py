"""Tests for the NumPy GPT-2 model, generation loop and tokenizer."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.generation import GenerationResult, generate, prefill_then_decode
from repro.model.gpt2 import GPT2Model, GPT2Weights
from repro.model.tokenizer import ByteTokenizer


@pytest.fixture(scope="module")
def tiny_model():
    return GPT2Model(ModelConfig.tiny(), seed=42)


@pytest.fixture(scope="module")
def calibrated_tiny_model():
    model = GPT2Model(ModelConfig.tiny(), seed=42)
    model.calibrate_quantization()
    return model


class TestWeights:
    def test_seeded_weights_are_reproducible(self):
        a = GPT2Weights.random(ModelConfig.tiny(), seed=7)
        b = GPT2Weights.random(ModelConfig.tiny(), seed=7)
        assert np.array_equal(a.blocks[0].qkv_weight, b.blocks[0].qkv_weight)
        c = GPT2Weights.random(ModelConfig.tiny(), seed=8)
        assert not np.array_equal(a.blocks[0].qkv_weight, c.blocks[0].qkv_weight)

    def test_parameter_count_close_to_config_estimate(self):
        config = ModelConfig.mini()
        weights = GPT2Weights.random(config, seed=0)
        assert weights.parameter_count() == pytest.approx(config.total_parameters(),
                                                          rel=0.01)

    def test_wrong_config_rejected(self):
        weights = GPT2Weights.random(ModelConfig.tiny(), seed=0)
        with pytest.raises(ValueError):
            GPT2Model(ModelConfig.mini(), weights=weights)


class TestForward:
    def test_logit_shape(self, tiny_model):
        logits = tiny_model.forward(np.array([1, 2, 3]))
        assert logits.shape == (3, tiny_model.config.vocab_size)

    def test_token_id_validation(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.array([tiny_model.config.vocab_size]))
        with pytest.raises(ValueError):
            tiny_model.forward(np.array([-1]))

    def test_sequence_length_limit(self, tiny_model):
        too_long = np.zeros(tiny_model.config.max_seq_len + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_model.forward(too_long)

    def test_cached_decode_matches_full_forward(self, tiny_model):
        """Prefill + cached single-token decode must equal running the whole
        sequence through the model at once (the KV-cache correctness property
        the paper's Fig. 1 relies on)."""
        tokens = np.array([3, 1, 4, 1, 5, 9])
        full_logits = tiny_model.forward(tokens)

        cache = tiny_model.new_cache()
        prefix = tokens[:4]
        tiny_model.forward(prefix, cache=cache, position_offset=0)
        cache.advance(len(prefix))
        logits_4 = tiny_model.forward(tokens[4:5], cache=cache, position_offset=4)
        cache.advance(1)
        logits_5 = tiny_model.forward(tokens[5:6], cache=cache, position_offset=5)
        cache.advance(1)

        assert np.allclose(logits_4[0], full_logits[4], atol=1e-9)
        assert np.allclose(logits_5[0], full_logits[5], atol=1e-9)

    def test_deterministic_given_seed(self):
        a = GPT2Model(ModelConfig.tiny(), seed=11).forward(np.array([1, 2]))
        b = GPT2Model(ModelConfig.tiny(), seed=11).forward(np.array([1, 2]))
        assert np.array_equal(a, b)


class TestQuantizedForward:
    def test_requires_calibration(self, tiny_model):
        model = GPT2Model(ModelConfig.tiny(), seed=1)
        with pytest.raises(RuntimeError):
            model.forward_quantized(np.array([1]))
        with pytest.raises(RuntimeError):
            model.quantized_linear(0, "qkv", np.zeros(model.config.d_model))

    def test_quantized_close_to_float(self, calibrated_tiny_model):
        model = calibrated_tiny_model
        tokens = np.array([10, 20, 30, 40])
        float_logits = model.forward(tokens)
        quant_logits = model.forward_quantized(tokens)
        # W8A8 keeps the outputs close; exact thresholds depend on the random
        # weights, so compare correlation and relative error loosely
        rel = np.linalg.norm(float_logits - quant_logits) / np.linalg.norm(float_logits)
        assert rel < 0.15
        # top-1 prediction of the last position should usually agree
        corr = np.corrcoef(float_logits[-1], quant_logits[-1])[0, 1]
        assert corr > 0.98

    def test_quantized_linear_matches_per_layer_reference(self, calibrated_tiny_model):
        model = calibrated_tiny_model
        rng = np.random.default_rng(0)
        x = rng.normal(size=model.config.d_model)
        block = model.weights.blocks[0]
        reference = block.qkv_weight @ x + block.qkv_bias
        quantized = model.quantized_linear(0, "qkv", x)
        rel = np.linalg.norm(reference - quantized) / np.linalg.norm(reference)
        assert rel < 0.05

    def test_is_calibrated_flag(self, calibrated_tiny_model):
        assert calibrated_tiny_model.is_calibrated
        assert not GPT2Model(ModelConfig.tiny(), seed=5).is_calibrated


class TestGeneration:
    def test_greedy_generation_is_deterministic(self, tiny_model):
        first = generate(tiny_model, [1, 2, 3], max_new_tokens=6)
        second = generate(tiny_model, [1, 2, 3], max_new_tokens=6)
        assert first == second
        assert len(first) == 6

    def test_result_bookkeeping(self, tiny_model):
        result = prefill_then_decode(tiny_model, [1, 2, 3], max_new_tokens=4)
        assert isinstance(result, GenerationResult)
        assert result.prefill_steps == 3
        assert result.decode_steps == 4
        assert result.all_tokens[:3] == [1, 2, 3]
        assert result.num_generated == 4

    def test_eos_stops_generation(self, tiny_model):
        # find which token greedy decoding produces first and use it as EOS
        first = generate(tiny_model, [5, 6], max_new_tokens=1)[0]
        result = prefill_then_decode(tiny_model, [5, 6], max_new_tokens=10,
                                     eos_token=first)
        assert result.stopped_on_eos
        assert result.decode_steps == 1

    def test_sampling_is_seeded(self, tiny_model):
        a = generate(tiny_model, [1], max_new_tokens=5, greedy=False, seed=3)
        b = generate(tiny_model, [1], max_new_tokens=5, greedy=False, seed=3)
        c = generate(tiny_model, [1], max_new_tokens=5, greedy=False, seed=4)
        assert a == b
        assert len(c) == 5

    def test_length_validation(self, tiny_model):
        with pytest.raises(ValueError):
            prefill_then_decode(tiny_model, [], max_new_tokens=1)
        with pytest.raises(ValueError):
            prefill_then_decode(tiny_model, [1], max_new_tokens=-1)
        with pytest.raises(ValueError):
            prefill_then_decode(tiny_model, [1] * 60, max_new_tokens=10)

    def test_step_callback_sees_both_stages(self, tiny_model):
        stages = []
        prefill_then_decode(tiny_model, [1, 2], max_new_tokens=3,
                            step_callback=lambda stage, step: stages.append(stage))
        assert stages[0] == "prefill"
        assert stages.count("decode") == 3

    def test_quantized_generation_runs(self, calibrated_tiny_model):
        result = prefill_then_decode(calibrated_tiny_model, [1, 2, 3],
                                     max_new_tokens=3, quantized=True)
        assert result.decode_steps == 3


class TestTokenizer:
    def test_roundtrip(self):
        tokenizer = ByteTokenizer()
        text = "LoopLynx: scalable dataflow 🚀"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_eos_token(self):
        tokenizer = ByteTokenizer(vocab_size=300)
        ids = tokenizer.encode("hi", add_eos=True)
        assert ids[-1] == tokenizer.eos_token
        assert tokenizer.decode(ids) == "hi"

    def test_small_vocab_has_no_eos(self):
        tokenizer = ByteTokenizer(vocab_size=256)
        assert tokenizer.eos_token is None
        with pytest.raises(ValueError):
            tokenizer.encode("x", add_eos=True)

    def test_vocab_lower_bound(self):
        with pytest.raises(ValueError):
            ByteTokenizer(vocab_size=100)
