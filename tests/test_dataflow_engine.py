"""Tests for the discrete-event simulation engine."""

import pytest

from repro.dataflow.engine import SimulationEngine, SimulationError


def make_waiter(delays):
    def process():
        for delay in delays:
            yield ("wait", delay)
        return sum(delays)
    return process()


class TestBasicScheduling:
    def test_single_process_advances_clock(self):
        engine = SimulationEngine()
        pid = engine.add_process(make_waiter([5, 7]), name="waiter")
        total = engine.run()
        assert total == 12
        assert engine.result_of(pid) == 12
        assert engine.finish_time_of(pid) == 12

    def test_zero_wait_completes_at_time_zero(self):
        engine = SimulationEngine()
        pid = engine.add_process(make_waiter([0, 0]), name="zero")
        assert engine.run() == 0
        assert engine.finish_time_of(pid) == 0

    def test_two_processes_run_concurrently(self):
        engine = SimulationEngine()
        engine.add_process(make_waiter([10]), name="slow")
        engine.add_process(make_waiter([3]), name="fast")
        assert engine.run() == 10

    def test_done_command_records_result(self):
        def proc():
            yield ("wait", 4)
            yield ("done", "finished")
        engine = SimulationEngine()
        pid = engine.add_process(proc(), name="doner")
        engine.run()
        assert engine.result_of(pid) == "finished"

    def test_run_all_convenience(self):
        engine = SimulationEngine()
        total = engine.run_all([("a", make_waiter([2])), ("b", make_waiter([9]))])
        assert total == 9

    def test_active_processes_counts_unfinished(self):
        engine = SimulationEngine()
        engine.add_process(make_waiter([1]), name="a")
        assert engine.active_processes == 1
        engine.run()
        assert engine.active_processes == 0


class TestWaitUntil:
    def test_wait_until_releases_when_condition_true(self):
        flag = {"ready": False}

        def setter():
            yield ("wait", 20)
            flag["ready"] = True

        def waiter():
            yield ("wait_until", lambda: flag["ready"])
            return "released"

        engine = SimulationEngine()
        engine.add_process(setter(), name="setter")
        pid = engine.add_process(waiter(), name="waiter")
        total = engine.run()
        assert total == 20
        assert engine.result_of(pid) == "released"

    def test_wait_until_already_true_resumes_same_cycle(self):
        def waiter():
            yield ("wait_until", lambda: True)
            return "immediate"
        engine = SimulationEngine()
        pid = engine.add_process(waiter(), name="waiter")
        assert engine.run() == 0
        assert engine.result_of(pid) == "immediate"


class TestErrorHandling:
    def test_deadlock_detected(self):
        def stuck():
            yield ("wait_until", lambda: False)
        engine = SimulationEngine()
        engine.add_process(stuck(), name="stuck")
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run()

    def test_unknown_command_rejected(self):
        def bad():
            yield ("explode", 1)
        engine = SimulationEngine()
        engine.add_process(bad(), name="bad")
        with pytest.raises(SimulationError, match="unknown command"):
            engine.run()

    def test_negative_wait_rejected(self):
        def bad():
            yield ("wait", -1)
        engine = SimulationEngine()
        engine.add_process(bad(), name="bad")
        with pytest.raises(SimulationError, match="negative wait"):
            engine.run()

    def test_malformed_command_rejected(self):
        def bad():
            yield "not-a-tuple"
        engine = SimulationEngine()
        engine.add_process(bad(), name="bad")
        with pytest.raises(SimulationError, match="malformed"):
            engine.run()

    def test_max_cycles_guard(self):
        def forever():
            while True:
                yield ("wait", 1000)
        engine = SimulationEngine(max_cycles=5000)
        engine.add_process(forever(), name="forever")
        with pytest.raises(SimulationError, match="max_cycles"):
            engine.run()

    def test_result_of_unfinished_process_raises(self):
        engine = SimulationEngine()
        pid = engine.add_process(make_waiter([1]), name="w")
        with pytest.raises(SimulationError):
            engine.result_of(pid)
