"""The strict typing ladder, pinned without needing mypy installed.

CI's ``static-analysis`` job runs ``mypy --strict`` over the four strict
packages (see ``pyproject.toml``); this test pins the property mypy's
``disallow_untyped_defs`` / ``disallow_incomplete_defs`` would enforce —
every function in a strict package is fully annotated — via the AST, so
the ladder cannot rot on machines (or CI paths) where mypy is absent.

Also pins the config itself: the strict override list in
``pyproject.toml`` and the documented ladder in ``docs/development.md``
must name the same packages as this test, so the three cannot drift
apart silently.
"""

import ast
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Packages (and single modules) on the strict rung of the ladder.
STRICT_PACKAGES = ("serving", "memory", "workloads", "analysis")
STRICT_MODULES = ("sanitize.py", "errors.py")


def strict_files():
    files = []
    for package in STRICT_PACKAGES:
        files.extend(sorted((SRC / package).rglob("*.py")))
    files.extend(SRC / name for name in STRICT_MODULES)
    return files


def unannotated_defs(path):
    """(line, name, problem) for every def missing annotations."""
    problems = []
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        every_arg = args.posonlyargs + args.args + args.kwonlyargs
        for arg in every_arg:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                problems.append((node.lineno, node.name,
                                 f"argument {arg.arg!r} unannotated"))
        for extra in (args.vararg, args.kwarg):
            if extra is not None and extra.annotation is None:
                problems.append((node.lineno, node.name,
                                 f"argument *{extra.arg} unannotated"))
        if node.returns is None:
            problems.append((node.lineno, node.name, "return unannotated"))
    return problems


def test_strict_file_set_is_nonempty():
    files = strict_files()
    assert len(files) >= 15  # the four packages plus the two modules
    for path in files:
        assert path.is_file(), path


@pytest.mark.parametrize("path", strict_files(),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_strict_packages_are_fully_annotated(path):
    problems = unannotated_defs(path)
    assert problems == [], "\n".join(
        f"{path}:{line} {name}: {problem}"
        for line, name, problem in problems)


def test_pyproject_declares_the_strict_ladder():
    """The mypy strict overrides in pyproject.toml cover exactly the
    packages this test enforces (plus the sanitizer modules)."""
    pyproject = (ROOT / "pyproject.toml").read_text()
    assert "[tool.mypy]" in pyproject
    assert "strict = true" in pyproject
    for package in STRICT_PACKAGES:
        assert f'"repro.{package}.*"' in pyproject, package
    for module in STRICT_MODULES:
        assert f'"repro.{module.removesuffix(".py")}"' in pyproject, module


def test_development_guide_documents_the_ladder():
    guide = (ROOT / "docs" / "development.md").read_text()
    for package in STRICT_PACKAGES:
        assert f"repro.{package}" in guide, package
    assert "strict" in guide and "typing" in guide.lower()


def test_ci_runs_the_static_analysis_gates():
    workflow = (ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "static-analysis" in workflow
    assert "repro_lint" in workflow
    assert "simcheck" in workflow
    assert "mypy" in workflow
    assert "ruff" in workflow
    # both project linters annotate the PR diff inline
    assert workflow.count("--format github") >= 2
