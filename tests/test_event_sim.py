"""Validation tests: event-driven kernel schedules vs the analytical model."""

import pytest

from repro.core.config import HardwareConfig
from repro.core.event_sim import (
    EventDrivenAttentionKernel,
    EventDrivenMatrixKernel,
    cross_check_attention,
    cross_check_linear,
)
from repro.model.config import LinearLayerSpec, ModelConfig, layer_linear_specs


@pytest.fixture(scope="module")
def hardware():
    return HardwareConfig()


class TestEventDrivenMatrixKernel:
    @pytest.mark.parametrize("spec_index", range(4))
    @pytest.mark.parametrize("num_nodes", [1, 2, 4])
    def test_matches_analytical_model(self, hardware, spec_index, num_nodes):
        """The event-driven schedule of every linear layer of the GPT-2 block
        must agree with the closed-form cycle model within 10%."""
        spec = layer_linear_specs(ModelConfig.gpt2_medium())[spec_index]
        result = cross_check_linear(hardware, spec, num_nodes=num_nodes)
        assert result["relative_difference"] < 0.10, result

    def test_all_units_overlap(self, hardware):
        """DMA, MPU, quantization and router must be active concurrently —
        the intra-kernel pipeline that defines the dataflow design."""
        kernel = EventDrivenMatrixKernel(hardware)
        spec = LinearLayerSpec("qkv", 1024, 3072)
        result = kernel.simulate_linear(spec)
        trace = result.trace
        assert trace.overlap_fraction("dma", "mpu") > 0.9
        assert trace.overlap_fraction("mpu", "quant") > 0.9
        assert trace.overlap_fraction("quant", "router") > 0.9

    def test_memory_bound_decode_keeps_dma_saturated(self, hardware):
        kernel = EventDrivenMatrixKernel(hardware)
        spec = LinearLayerSpec("mlp_fc", 1024, 4096)
        result = kernel.simulate_linear(spec)
        utilization = result.utilization()
        assert utilization["dma"] > 0.9

    def test_scaling_with_nodes(self, hardware):
        kernel = EventDrivenMatrixKernel(hardware)
        spec = LinearLayerSpec("mlp_proj", 4096, 1024)
        one = kernel.simulate_linear(spec, num_nodes=1).total_cycles
        two = kernel.simulate_linear(spec, num_nodes=2).total_cycles
        assert two < one
        assert two > one / 2 * 0.9  # fixed overheads keep it above perfect halving

    def test_batched_prefill_increases_mpu_share(self, hardware):
        kernel = EventDrivenMatrixKernel(hardware)
        spec = LinearLayerSpec("qkv", 1024, 3072)
        decode = kernel.simulate_linear(spec, batch_tokens=1)
        prefill = kernel.simulate_linear(spec, batch_tokens=64)
        assert prefill.total_cycles > decode.total_cycles
        # with 64 tokens per weight block the MPU becomes the bottleneck
        assert prefill.utilization()["mpu"] >= decode.utilization()["mpu"]


class TestEventDrivenAttentionKernel:
    def test_pipelined_matches_analytical(self, hardware):
        result = cross_check_attention(hardware, seq_len=512, heads_per_node=16,
                                       head_dim=64, headwise_pipelining=True)
        assert result["relative_difference"] < 0.05

    def test_serialized_matches_analytical(self, hardware):
        result = cross_check_attention(hardware, seq_len=512, heads_per_node=16,
                                       head_dim=64, headwise_pipelining=False)
        assert result["relative_difference"] < 0.05

    def test_pipelining_speeds_up_the_event_schedule(self, hardware):
        kernel = EventDrivenAttentionKernel(hardware)
        pipelined = kernel.simulate_decode_layer(512, 16, 64, headwise_pipelining=True)
        serialized = kernel.simulate_decode_layer(512, 16, 64, headwise_pipelining=False)
        assert pipelined.total_cycles < serialized.total_cycles

    def test_score_and_mix_overlap_in_pipelined_mode(self, hardware):
        kernel = EventDrivenAttentionKernel(hardware)
        result = kernel.simulate_decode_layer(512, 16, 64, headwise_pipelining=True)
        assert result.trace.overlap_fraction("score_mac", "mix_mac") > 0.8

    def test_fewer_heads_run_faster(self, hardware):
        kernel = EventDrivenAttentionKernel(hardware)
        full = kernel.simulate_decode_layer(512, 16, 64).total_cycles
        quarter = kernel.simulate_decode_layer(512, 4, 64).total_cycles
        assert quarter < full

    def test_items_reported(self, hardware):
        kernel = EventDrivenAttentionKernel(hardware)
        result = kernel.simulate_decode_layer(128, 8, 64)
        assert result.items == 8
        assert result.unit_busy_cycles("mix_mac") > 0
